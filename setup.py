"""Setup shim: lets ``pip install -e . --no-build-isolation`` work in
offline environments whose setuptools/pip lack the ``wheel`` package
required by PEP 660 editable builds."""

from setuptools import setup

setup()
