"""RFC 1035 wire-format encoding and decoding.

The simulator routes :class:`~repro.dns.message.DnsMessage` objects in
memory, but the wire codec is load-bearing in three places: computing
truncation against EDNS payload sizes, measuring message sizes for the
latency model, and property-testing that the message model round-trips
through the real on-the-wire representation (including name compression).
"""

from __future__ import annotations

import struct
from typing import Optional

from .errors import WireFormatError
from .message import DnsMessage, Question
from .name import DnsName
from .record import (
    AaaaRdata,
    ARdata,
    CnameRdata,
    MxRdata,
    NsRdata,
    OpaqueRdata,
    PtrRdata,
    Rdata,
    ResourceRecord,
    SoaRdata,
    SrvRdata,
    TxtRdata,
)
from .rrtype import Opcode, RCode, RRClass, RRType

_MAX_UDP_PAYLOAD = 512
_POINTER_MASK = 0xC0

# Record types whose rdata embeds a domain name eligible for compression.
_NAME_RDATA_TYPES = {RRType.NS, RRType.CNAME, RRType.PTR}


class _NameWire:
    """Precomputed per-name encoding state shared across messages.

    ``raw`` is the full uncompressed wire form (length-prefixed labels plus
    the terminal zero octet); ``suffixes[i]`` is the case-folded suffix
    tuple starting at label ``i`` (the compressor's map key) and
    ``starts[i]`` is that label's byte offset inside ``raw``.
    """

    __slots__ = ("raw", "suffixes", "starts")

    def __init__(self, name: DnsName) -> None:
        labels = name.labels
        folded = name.folded
        raw = bytearray()
        suffixes = []
        starts = []
        for index, label in enumerate(labels):
            suffixes.append(folded[index:])
            starts.append(len(raw))
            encoded = label.encode("ascii")
            raw.append(len(encoded))
            raw += encoded
        raw.append(0)
        self.raw = bytes(raw)
        self.suffixes = tuple(suffixes)
        self.starts = tuple(starts)


#: Per-name encode cache, keyed by the exact (case-preserving) label tuple
#: so distinct spellings of equal names never share raw bytes.  Bounded the
#: same way as the ``DnsName`` intern table: cleared, not evicted, when full
#: (the hot set — zone origins, infrastructure names — repopulates at once).
_NAME_WIRE_CACHE_MAX = 8192
_name_wire_cache: dict[tuple[str, ...], _NameWire] = {}

#: Wire-codec fast-path counters, sampled by the perf layer
#: (:func:`wire_cache_counters`).  Module-global so every encode in the
#: process is counted, including ones inside worker shards.
_wire_cache_hits = 0
_wire_cache_misses = 0


def wire_cache_counters() -> tuple[int, int]:
    """Current (hits, misses) of the per-name encode cache."""
    return (_wire_cache_hits, _wire_cache_misses)


def _name_wire(name: DnsName) -> _NameWire:
    global _wire_cache_hits, _wire_cache_misses
    key = name.labels
    entry = _name_wire_cache.get(key)
    if entry is not None:
        _wire_cache_hits += 1
        return entry
    _wire_cache_misses += 1
    entry = _NameWire(name)
    if len(_name_wire_cache) >= _NAME_WIRE_CACHE_MAX:
        _name_wire_cache.clear()
    _name_wire_cache[key] = entry
    return entry


class _Compressor:
    """Tracks name→offset mappings while encoding."""

    def __init__(self) -> None:
        self._offsets: dict[tuple[str, ...], int] = {}

    def encode_name(self, name: DnsName, buffer: bytearray) -> None:
        # Fast path over the per-name cache: identical byte output to the
        # label-at-a-time loop, but the suffix tuples and label bytes are
        # computed once per distinct name instead of once per occurrence.
        wire = _name_wire(name)
        offsets = self._offsets
        base = len(buffer)
        for index, suffix in enumerate(wire.suffixes):
            known = offsets.get(suffix)
            if known is not None and known < 0x3FFF:
                buffer += wire.raw[:wire.starts[index]]
                buffer += struct.pack("!H", 0xC000 | known)
                return
            position = base + wire.starts[index]
            if position < 0x3FFF:
                offsets[suffix] = position
        buffer += wire.raw


def _encode_ipv4(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise WireFormatError(f"bad IPv4 address {address!r}")
    try:
        octets = bytes(int(part) for part in parts)
    except ValueError:
        raise WireFormatError(f"bad IPv4 address {address!r}") from None
    if len(octets) != 4:
        raise WireFormatError(f"bad IPv4 address {address!r}")
    return octets


def _decode_ipv4(data: bytes) -> str:
    if len(data) != 4:
        raise WireFormatError("A rdata must be 4 bytes")
    return ".".join(str(b) for b in data)


def _encode_ipv6(address: str) -> bytes:
    # Minimal IPv6 text parsing: groups with one optional "::" elision.
    if "::" in address:
        head, _, tail = address.partition("::")
        head_groups = [g for g in head.split(":") if g]
        tail_groups = [g for g in tail.split(":") if g]
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 0:
            raise WireFormatError(f"bad IPv6 address {address!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = address.split(":")
    if len(groups) != 8:
        raise WireFormatError(f"bad IPv6 address {address!r}")
    try:
        return b"".join(struct.pack("!H", int(group, 16)) for group in groups)
    except ValueError:
        raise WireFormatError(f"bad IPv6 address {address!r}") from None


def _decode_ipv6(data: bytes) -> str:
    if len(data) != 16:
        raise WireFormatError("AAAA rdata must be 16 bytes")
    groups = [f"{struct.unpack('!H', data[i:i + 2])[0]:x}" for i in range(0, 16, 2)]
    return ":".join(groups)


def _encode_rdata(record: ResourceRecord, buffer: bytearray,
                  compressor: _Compressor) -> None:
    """Append the rdata with its 16-bit length prefix."""
    length_at = len(buffer)
    buffer += b"\x00\x00"  # placeholder
    rdata = record.rdata
    if isinstance(rdata, ARdata):
        buffer += _encode_ipv4(rdata.address)
    elif isinstance(rdata, AaaaRdata):
        buffer += _encode_ipv6(rdata.address)
    elif isinstance(rdata, NsRdata):
        compressor.encode_name(rdata.nsdname, buffer)
    elif isinstance(rdata, CnameRdata):
        compressor.encode_name(rdata.target, buffer)
    elif isinstance(rdata, PtrRdata):
        compressor.encode_name(rdata.target, buffer)
    elif isinstance(rdata, MxRdata):
        buffer += struct.pack("!H", rdata.preference)
        compressor.encode_name(rdata.exchange, buffer)
    elif isinstance(rdata, TxtRdata):
        for string in rdata.strings:
            encoded = string.encode("utf-8")
            if len(encoded) > 255:
                raise WireFormatError("TXT string longer than 255 bytes")
            buffer.append(len(encoded))
            buffer += encoded
    elif isinstance(rdata, SoaRdata):
        # SOA names are compressible but we emit them uncompressed through the
        # compressor anyway (it handles both).
        compressor.encode_name(rdata.mname, buffer)
        compressor.encode_name(rdata.rname, buffer)
        buffer += struct.pack(
            "!IIIII", rdata.serial, rdata.refresh, rdata.retry,
            rdata.expire, rdata.minimum,
        )
    elif isinstance(rdata, SrvRdata):
        buffer += struct.pack("!HHH", rdata.priority, rdata.weight, rdata.port)
        # RFC 2782: SRV target must not be compressed.
        _Compressor().encode_name(rdata.target, buffer)
    elif isinstance(rdata, OpaqueRdata):
        buffer += rdata.text.encode("utf-8")
    else:
        raise WireFormatError(f"cannot encode rdata {rdata!r}")
    rdlength = len(buffer) - length_at - 2
    struct.pack_into("!H", buffer, length_at, rdlength)


def _encode_record(record: ResourceRecord, buffer: bytearray,
                   compressor: _Compressor) -> None:
    compressor.encode_name(record.name, buffer)
    buffer += struct.pack("!HHI", int(record.rtype), int(record.rclass), record.ttl)
    _encode_rdata(record, buffer, compressor)


def _encode_opt(payload_size: int, buffer: bytearray) -> None:
    buffer.append(0)  # root owner
    buffer += struct.pack("!HHIH", int(RRType.OPT), payload_size, 0, 0)


#: Reusable encode buffer.  Encoding is synchronous and single-threaded in
#: the simulator, but a reentrancy guard keeps nested encodes (e.g. from a
#: debugger or a future re-entrant caller) correct by falling back to a
#: fresh allocation.
_scratch_buffer = bytearray()
_scratch_in_use = False


def encode_message(message: DnsMessage) -> bytes:
    """Encode to wire bytes."""
    global _scratch_in_use
    if _scratch_in_use:
        buffer = bytearray()
        _encode_into(message, buffer)
        return bytes(buffer)
    _scratch_in_use = True
    try:
        buffer = _scratch_buffer
        del buffer[:]
        _encode_into(message, buffer)
        return bytes(buffer)
    finally:
        _scratch_in_use = False


def _encode_into(message: DnsMessage, buffer: bytearray) -> None:
    flags = 0
    if message.is_response:
        flags |= 0x8000
    flags |= (int(message.opcode) & 0xF) << 11
    if message.authoritative:
        flags |= 0x0400
    if message.truncated:
        flags |= 0x0200
    if message.recursion_desired:
        flags |= 0x0100
    if message.recursion_available:
        flags |= 0x0080
    flags |= int(message.rcode) & 0xF
    additional_count = len(message.additional)
    if message.edns_payload_size is not None:
        additional_count += 1
    buffer += struct.pack(
        "!HHHHHH",
        message.msg_id,
        flags,
        1 if message.question else 0,
        len(message.answers),
        len(message.authority),
        additional_count,
    )
    compressor = _Compressor()
    if message.question:
        compressor.encode_name(message.question.qname, buffer)
        buffer += struct.pack(
            "!HH", int(message.question.qtype), int(message.question.qclass)
        )
    for record in message.answers:
        _encode_record(record, buffer, compressor)
    for record in message.authority:
        _encode_record(record, buffer, compressor)
    for record in message.additional:
        _encode_record(record, buffer, compressor)
    if message.edns_payload_size is not None:
        _encode_opt(message.edns_payload_size, buffer)


def message_wire_size(message: DnsMessage) -> int:
    """Size in bytes of the encoded message (used by the latency model)."""
    global _scratch_in_use
    if _scratch_in_use:
        return len(encode_message(message))
    _scratch_in_use = True
    try:
        buffer = _scratch_buffer
        del buffer[:]
        _encode_into(message, buffer)
        return len(buffer)
    finally:
        _scratch_in_use = False


def _name_size_bound(name: DnsName) -> int:
    """Uncompressed wire size of a name: labels with length prefixes + 0."""
    labels = name.labels
    return sum(len(label) for label in labels) + len(labels) + 1


def _rdata_size_bound(rdata: Rdata) -> int:
    if isinstance(rdata, ARdata):
        return 4
    if isinstance(rdata, AaaaRdata):
        return 16
    if isinstance(rdata, NsRdata):
        return _name_size_bound(rdata.nsdname)
    if isinstance(rdata, (CnameRdata, PtrRdata)):
        return _name_size_bound(rdata.target)
    if isinstance(rdata, MxRdata):
        return 2 + _name_size_bound(rdata.exchange)
    if isinstance(rdata, TxtRdata):
        # UTF-8 expands at most 4x over the character count.
        return sum(4 * len(string) + 1 for string in rdata.strings)
    if isinstance(rdata, SoaRdata):
        return (_name_size_bound(rdata.mname) + _name_size_bound(rdata.rname)
                + 20)
    if isinstance(rdata, SrvRdata):
        return 6 + _name_size_bound(rdata.target)
    if isinstance(rdata, OpaqueRdata):
        return 4 * len(rdata.text)
    raise WireFormatError(f"cannot size rdata {rdata!r}")


def message_size_upper_bound(message: DnsMessage) -> int:
    """A cheap upper bound on :func:`message_wire_size`.

    Sums uncompressed worst-case sizes without touching the encoder, so
    callers that only need "does it fit?" (truncation checks) can skip the
    full encode whenever the bound already fits.  Never smaller than the
    encoded size: compression only shrinks names, and every per-rdata bound
    is conservative.
    """
    size = 12  # header
    if message.question is not None:
        size += _name_size_bound(message.question.qname) + 4
    for section in (message.answers, message.authority, message.additional):
        for record in section:
            size += _name_size_bound(record.name) + 10
            size += _rdata_size_bound(record.rdata)
    if message.edns_payload_size is not None:
        size += 11  # root owner + OPT fixed fields
    return size


def exceeds_payload(message: DnsMessage) -> bool:
    """Whether the encoded response overflows the negotiated UDP payload."""
    limit = message.edns_payload_size or _MAX_UDP_PAYLOAD
    return message_wire_size(message) > limit


# --------------------------------------------------------------------------
# decoding
# --------------------------------------------------------------------------


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def read(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise WireFormatError("truncated message")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def read_u8(self) -> int:
        return self.read(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self) -> DnsName:
        labels: list[str] = []
        jumps = 0
        pos = self.pos
        end: Optional[int] = None
        while True:
            if pos >= len(self.data):
                raise WireFormatError("name runs past end of message")
            length = self.data[pos]
            if length & _POINTER_MASK == _POINTER_MASK:
                if pos + 1 >= len(self.data):
                    raise WireFormatError("dangling compression pointer")
                target = ((length & 0x3F) << 8) | self.data[pos + 1]
                if end is None:
                    end = pos + 2
                jumps += 1
                if jumps > 128:
                    raise WireFormatError("compression pointer loop")
                if target >= pos:
                    raise WireFormatError("forward compression pointer")
                pos = target
                continue
            if length & _POINTER_MASK:
                raise WireFormatError("reserved label type")
            if length == 0:
                if end is None:
                    end = pos + 1
                break
            label_bytes = self.data[pos + 1:pos + 1 + length]
            if len(label_bytes) != length:
                raise WireFormatError("label runs past end of message")
            labels.append(label_bytes.decode("ascii"))
            pos += 1 + length
        self.pos = end
        return DnsName(labels)


def _decode_rdata(rtype: RRType, rdlength: int, reader: _Reader) -> Rdata:
    end = reader.pos + rdlength
    if rtype == RRType.A:
        rdata: Rdata = ARdata(_decode_ipv4(reader.read(4)))
    elif rtype == RRType.AAAA:
        rdata = AaaaRdata(_decode_ipv6(reader.read(16)))
    elif rtype == RRType.NS:
        rdata = NsRdata(reader.read_name())
    elif rtype == RRType.CNAME:
        rdata = CnameRdata(reader.read_name())
    elif rtype == RRType.PTR:
        rdata = PtrRdata(reader.read_name())
    elif rtype == RRType.MX:
        preference = reader.read_u16()
        rdata = MxRdata(preference, reader.read_name())
    elif rtype in (RRType.TXT, RRType.SPF):
        strings: list[str] = []
        while reader.pos < end:
            length = reader.read_u8()
            strings.append(reader.read(length).decode("utf-8"))
        rdata = TxtRdata(tuple(strings))
    elif rtype == RRType.SOA:
        mname = reader.read_name()
        rname = reader.read_name()
        serial = reader.read_u32()
        refresh = reader.read_u32()
        retry = reader.read_u32()
        expire = reader.read_u32()
        minimum = reader.read_u32()
        rdata = SoaRdata(mname, rname, serial, refresh, retry, expire, minimum)
    elif rtype == RRType.SRV:
        priority = reader.read_u16()
        weight = reader.read_u16()
        port = reader.read_u16()
        rdata = SrvRdata(priority, weight, port, reader.read_name())
    else:
        rdata = OpaqueRdata(reader.read(rdlength).decode("utf-8", "replace"))
    if reader.pos != end:
        raise WireFormatError(f"rdata length mismatch for {rtype}")
    return rdata


def decode_message(data: bytes) -> DnsMessage:
    """Decode wire bytes to a :class:`DnsMessage`.

    Malformed input of any kind raises :class:`WireFormatError`; no other
    exception type escapes (the decoder is fuzz-safe).
    """
    try:
        return _decode_message(data)
    except WireFormatError:
        raise
    except (ValueError, UnicodeDecodeError, KeyError) as error:
        # Unknown enum values, non-ASCII labels, malformed integers...
        raise WireFormatError(f"malformed message: {error}") from error


def _decode_message(data: bytes) -> DnsMessage:
    reader = _Reader(data)
    msg_id = reader.read_u16()
    flags = reader.read_u16()
    qdcount = reader.read_u16()
    ancount = reader.read_u16()
    nscount = reader.read_u16()
    arcount = reader.read_u16()
    message = DnsMessage(
        msg_id=msg_id,
        is_response=bool(flags & 0x8000),
        opcode=Opcode((flags >> 11) & 0xF),
        authoritative=bool(flags & 0x0400),
        truncated=bool(flags & 0x0200),
        recursion_desired=bool(flags & 0x0100),
        recursion_available=bool(flags & 0x0080),
        rcode=RCode(flags & 0xF),
    )
    if qdcount > 1:
        raise WireFormatError("multiple questions not supported")
    if qdcount:
        qname = reader.read_name()
        qtype = RRType(reader.read_u16())
        qclass = RRClass(reader.read_u16())
        message.question = Question(qname, qtype, qclass)
    for section, count in (
        (message.answers, ancount),
        (message.authority, nscount),
        (message.additional, arcount),
    ):
        for _ in range(count):
            owner = reader.read_name()
            rtype_raw = reader.read_u16()
            rclass_raw = reader.read_u16()
            ttl = reader.read_u32()
            rdlength = reader.read_u16()
            try:
                rtype = RRType(rtype_raw)
            except ValueError:
                reader.read(rdlength)
                continue
            if rtype == RRType.OPT:
                message.edns_payload_size = rclass_raw
                reader.read(rdlength)
                continue
            rdata = _decode_rdata(rtype, rdlength, reader)
            section.append(
                ResourceRecord(owner, rtype, ttl, rdata, RRClass(rclass_raw))
            )
    return message
