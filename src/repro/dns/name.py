"""Domain names.

:class:`DnsName` models an absolute DNS domain name as a tuple of labels,
ordered left to right exactly as written (``www.example.com`` has labels
``("www", "example", "com")``).  Comparison and hashing are case-insensitive
per RFC 1035 §2.3.3; the original spelling is preserved for display.

The class supports the small algebra the rest of the library needs:
parent/ancestor walks, subdomain tests, relativisation and concatenation.

Names are constructed on every probe, every log entry and every zone
lookup, so construction and comparison are hot paths for population-scale
measurement runs.  Three mechanisms keep them off the profile:

* case folding is **lazy** — a name folds its labels only when first
  hashed or compared, so display-only names never pay for it;
* derived names (``parent``, ``prepend``, ``concatenate``) take a private
  **trusted-constructor** path that skips re-validating labels that were
  already validated when the source name was built;
* :meth:`from_text` **interns** parses through a bounded cache, so the
  high-frequency names (zone origins, infrastructure names) are parsed and
  folded exactly once per process.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Optional

from .errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253  # presentation form, excluding the trailing dot

#: Bound on the :meth:`DnsName.from_text` interning cache.  Measurement
#: runs create unbounded fresh probe names; the cache is cleared rather
#: than evicted when full (cheap, and the steady-state hot set — origins,
#: nameserver names — repopulates immediately).
_INTERN_CACHE_MAX = 8192
_intern_cache: dict[str, "DnsName"] = {}


def _validate_label(label: str) -> None:
    if not label:
        raise NameError_("empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label too long ({len(label)} > {MAX_LABEL_LENGTH}): {label!r}")
    if "." in label:
        raise NameError_(f"label contains a dot: {label!r}")


@total_ordering
class DnsName:
    """An absolute domain name.

    Instances are immutable and usable as dictionary keys.  Build one from
    text with :meth:`from_text` (or the module-level :func:`name` helper),
    or from labels with the constructor.
    """

    __slots__ = ("_labels", "_folded", "_hash")

    def __init__(self, labels: Iterable[str]):
        labels = tuple(labels)
        for label in labels:
            _validate_label(label)
        text_len = sum(len(lab) for lab in labels) + max(len(labels) - 1, 0)
        if text_len > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({text_len} > {MAX_NAME_LENGTH})")
        self._labels = labels
        self._folded: Optional[tuple[str, ...]] = None
        self._hash: Optional[int] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def _trusted(cls, labels: tuple[str, ...],
                 folded: Optional[tuple[str, ...]] = None) -> "DnsName":
        """Build from labels known to be valid (derived from an existing
        name), skipping validation.  ``folded`` may carry the already-folded
        labels when the source name had folded."""
        self = object.__new__(cls)
        self._labels = labels
        self._folded = folded
        self._hash = None
        return self

    @classmethod
    def from_text(cls, text: str) -> "DnsName":
        """Parse presentation format.  A trailing dot is accepted; ``.`` and
        the empty string denote the root name."""
        cached = _intern_cache.get(text)
        if cached is not None:
            return cached
        key = text
        stripped = text.strip()
        if stripped in (".", ""):
            result: DnsName = ROOT
        else:
            if stripped.endswith("."):
                stripped = stripped[:-1]
            result = cls(stripped.split("."))
        if len(_intern_cache) >= _INTERN_CACHE_MAX:
            _intern_cache.clear()
        _intern_cache[key] = result
        return result

    @classmethod
    def root(cls) -> "DnsName":
        return ROOT

    # -- basic protocol ----------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    @property
    def folded(self) -> tuple[str, ...]:
        """Case-folded labels (computed lazily, once)."""
        folded = self._folded
        if folded is None:
            folded = tuple(lab.lower() for lab in self._labels)
            self._folded = folded
        return folded

    def __str__(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels)

    def __repr__(self) -> str:
        return f"DnsName({str(self)!r})"

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash(self.folded)
            self._hash = value
        return value

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, str):
            other = DnsName.from_text(other)
        if not isinstance(other, DnsName):
            return NotImplemented
        return self.folded == other.folded

    def __lt__(self, other: "DnsName") -> bool:
        if not isinstance(other, DnsName):
            return NotImplemented
        # Canonical DNS ordering compares names right to left (by zone depth).
        return tuple(reversed(self.folded)) < tuple(reversed(other.folded))

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __getstate__(self) -> tuple[str, ...]:
        return self._labels

    def __setstate__(self, labels: tuple[str, ...]) -> None:
        self._labels = labels
        self._folded = None
        self._hash = None

    # -- algebra ------------------------------------------------------------

    def is_root(self) -> bool:
        return not self._labels

    @property
    def parent(self) -> "DnsName":
        """The name with the leftmost label removed; the root's parent is
        the root itself."""
        if not self._labels:
            return self
        folded = self._folded
        return DnsName._trusted(self._labels[1:],
                                folded[1:] if folded is not None else None)

    def ancestors(self, include_self: bool = False) -> Iterator["DnsName"]:
        """Yield ancestors from closest to the root (the root included)."""
        current = self if include_self else self.parent
        while True:
            yield current
            if current.is_root():
                return
            current = current.parent

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """True when ``self`` equals ``other`` or sits below it."""
        own, theirs = self.folded, other.folded
        if len(theirs) > len(own):
            return False
        if not theirs:
            return True
        return own[-len(theirs):] == theirs

    def is_strict_subdomain_of(self, other: "DnsName") -> bool:
        return self != other and self.is_subdomain_of(other)

    def relativize(self, origin: "DnsName") -> tuple[str, ...]:
        """Labels of ``self`` below ``origin``.

        Raises :class:`NameError_` when ``self`` is not under ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        if origin.is_root():
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    def prepend(self, *labels: str) -> "DnsName":
        """Return a new name with ``labels`` added on the left."""
        for label in labels:
            _validate_label(label)
        combined = tuple(labels) + self._labels
        text_len = sum(len(lab) for lab in combined) + max(len(combined) - 1, 0)
        if text_len > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({text_len} > {MAX_NAME_LENGTH})")
        return DnsName._trusted(combined)

    def concatenate(self, suffix: "DnsName") -> "DnsName":
        combined = self._labels + suffix._labels
        text_len = sum(len(lab) for lab in combined) + max(len(combined) - 1, 0)
        if text_len > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({text_len} > {MAX_NAME_LENGTH})")
        own, theirs = self._folded, suffix._folded
        folded = (own + theirs
                  if own is not None and theirs is not None else None)
        return DnsName._trusted(combined, folded)

    def depth_below(self, origin: "DnsName") -> int:
        """Number of labels of ``self`` below ``origin``."""
        return len(self.relativize(origin))

    def split_child_of(self, origin: "DnsName") -> "DnsName":
        """The direct child of ``origin`` on the path towards ``self``.

        ``a.b.sub.example`` split at ``example`` gives ``sub.example``.
        """
        rel = self.relativize(origin)
        if not rel:
            raise NameError_(f"{self} equals {origin}; no child to split")
        return origin.prepend(rel[-1])


ROOT = DnsName(())


def name(text: str) -> DnsName:
    """Shorthand for :meth:`DnsName.from_text`."""
    return DnsName.from_text(text)
