"""Domain names.

:class:`DnsName` models an absolute DNS domain name as a tuple of labels,
ordered left to right exactly as written (``www.example.com`` has labels
``("www", "example", "com")``).  Comparison and hashing are case-insensitive
per RFC 1035 §2.3.3; the original spelling is preserved for display.

The class supports the small algebra the rest of the library needs:
parent/ancestor walks, subdomain tests, relativisation and concatenation.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator

from .errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253  # presentation form, excluding the trailing dot


def _validate_label(label: str) -> None:
    if not label:
        raise NameError_("empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label too long ({len(label)} > {MAX_LABEL_LENGTH}): {label!r}")
    if "." in label:
        raise NameError_(f"label contains a dot: {label!r}")


@total_ordering
class DnsName:
    """An absolute domain name.

    Instances are immutable and usable as dictionary keys.  Build one from
    text with :meth:`from_text` (or the module-level :func:`name` helper),
    or from labels with the constructor.
    """

    __slots__ = ("_labels", "_folded")

    def __init__(self, labels: Iterable[str]):
        labels = tuple(labels)
        for label in labels:
            _validate_label(label)
        text_len = sum(len(lab) for lab in labels) + max(len(labels) - 1, 0)
        if text_len > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({text_len} > {MAX_NAME_LENGTH})")
        self._labels = labels
        self._folded = tuple(lab.lower() for lab in labels)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "DnsName":
        """Parse presentation format.  A trailing dot is accepted; ``.`` and
        the empty string denote the root name."""
        text = text.strip()
        if text in (".", ""):
            return ROOT
        if text.endswith("."):
            text = text[:-1]
        return cls(text.split("."))

    @classmethod
    def root(cls) -> "DnsName":
        return ROOT

    # -- basic protocol ----------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        return self._labels

    def __str__(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels)

    def __repr__(self) -> str:
        return f"DnsName({str(self)!r})"

    def __hash__(self) -> int:
        return hash(self._folded)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            other = DnsName.from_text(other)
        if not isinstance(other, DnsName):
            return NotImplemented
        return self._folded == other._folded

    def __lt__(self, other: "DnsName") -> bool:
        if not isinstance(other, DnsName):
            return NotImplemented
        # Canonical DNS ordering compares names right to left (by zone depth).
        return tuple(reversed(self._folded)) < tuple(reversed(other._folded))

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    # -- algebra ------------------------------------------------------------

    def is_root(self) -> bool:
        return not self._labels

    @property
    def parent(self) -> "DnsName":
        """The name with the leftmost label removed; the root's parent is
        the root itself."""
        if not self._labels:
            return self
        return DnsName(self._labels[1:])

    def ancestors(self, include_self: bool = False) -> Iterator["DnsName"]:
        """Yield ancestors from closest to the root (the root included)."""
        current = self if include_self else self.parent
        while True:
            yield current
            if current.is_root():
                return
            current = current.parent

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """True when ``self`` equals ``other`` or sits below it."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded):] == other._folded

    def is_strict_subdomain_of(self, other: "DnsName") -> bool:
        return self != other and self.is_subdomain_of(other)

    def relativize(self, origin: "DnsName") -> tuple[str, ...]:
        """Labels of ``self`` below ``origin``.

        Raises :class:`NameError_` when ``self`` is not under ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        if origin.is_root():
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    def prepend(self, *labels: str) -> "DnsName":
        """Return a new name with ``labels`` added on the left."""
        return DnsName(tuple(labels) + self._labels)

    def concatenate(self, suffix: "DnsName") -> "DnsName":
        return DnsName(self._labels + suffix._labels)

    def depth_below(self, origin: "DnsName") -> int:
        """Number of labels of ``self`` below ``origin``."""
        return len(self.relativize(origin))

    def split_child_of(self, origin: "DnsName") -> "DnsName":
        """The direct child of ``origin`` on the path towards ``self``.

        ``a.b.sub.example`` split at ``example`` gives ``sub.example``.
        """
        rel = self.relativize(origin)
        if not rel:
            raise NameError_(f"{self} equals {origin}; no child to split")
        return origin.prepend(rel[-1])


ROOT = DnsName(())


def name(text: str) -> DnsName:
    """Shorthand for :meth:`DnsName.from_text`."""
    return DnsName.from_text(text)
