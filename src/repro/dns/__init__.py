"""DNS protocol substrate: names, records, messages, zones, wire format."""

from .errors import (
    CnameLoopError,
    DnsError,
    NetworkUnreachable,
    QueryTimeout,
    ReferralLoopError,
    ResolutionError,
    WireFormatError,
    ZoneError,
    ZoneParseError,
)
from .message import DnsMessage, Question
from .name import ROOT, DnsName, name
from .record import (
    AaaaRdata,
    ARdata,
    CnameRdata,
    MxRdata,
    NsRdata,
    OpaqueRdata,
    PtrRdata,
    Rdata,
    ResourceRecord,
    RRSet,
    SoaRdata,
    SrvRdata,
    TxtRdata,
    a_record,
    aaaa_record,
    cname_record,
    group_rrsets,
    mx_record,
    ns_record,
    soa_record,
    spf_record,
    txt_record,
)
from .rrtype import MAIL_MECHANISM_QTYPES, Opcode, RCode, RRClass, RRType
from .wire import decode_message, encode_message, message_wire_size
from .zone import LookupKind, LookupResult, Zone, parse_zone_text, zone_to_text

__all__ = [
    "AaaaRdata", "ARdata", "CnameLoopError", "CnameRdata", "DnsError",
    "DnsMessage", "DnsName", "LookupKind", "LookupResult",
    "MAIL_MECHANISM_QTYPES", "MxRdata", "NetworkUnreachable", "NsRdata",
    "Opcode", "OpaqueRdata", "PtrRdata", "QueryTimeout", "Question", "RCode",
    "ROOT", "RRClass", "RRSet", "RRType", "Rdata", "ReferralLoopError",
    "ResolutionError", "ResourceRecord", "SoaRdata", "SrvRdata", "TxtRdata",
    "WireFormatError", "Zone", "ZoneError", "ZoneParseError", "a_record",
    "aaaa_record", "cname_record", "decode_message", "encode_message",
    "group_rrsets", "message_wire_size", "mx_record", "name", "ns_record",
    "parse_zone_text", "soa_record", "spf_record", "txt_record",
    "zone_to_text",
]
