"""DNS messages.

:class:`DnsMessage` mirrors the RFC 1035 message structure: a header
(id, flags, rcode), one question, and answer/authority/additional sections.
Factory helpers build the response shapes the library needs — answers,
referrals, NXDOMAIN and NODATA — so server code stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .name import DnsName
from .record import ResourceRecord, RRSet
from .rrtype import Opcode, RCode, RRClass, RRType


@dataclass(frozen=True)
class Question:
    qname: DnsName
    qtype: RRType
    qclass: RRClass = RRClass.IN

    def to_text(self) -> str:
        return f"{self.qname}. {self.qclass} {self.qtype}"


@dataclass
class DnsMessage:
    """A DNS query or response."""

    msg_id: int = 0
    question: Optional[Question] = None
    is_response: bool = False
    opcode: Opcode = Opcode.QUERY
    rcode: RCode = RCode.NOERROR
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    answers: list[ResourceRecord] = field(default_factory=list)
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)
    edns_payload_size: Optional[int] = None  # None == no OPT record
    #: Transport metadata (not a wire field): True when the message is
    #: carried over TCP, which lifts the UDP payload limit and exempts the
    #: response from truncation.
    via_tcp: bool = False

    # -- constructors -------------------------------------------------------

    @classmethod
    def make_query(cls, qname: DnsName, qtype: RRType, msg_id: int = 0,
                   recursion_desired: bool = True,
                   edns_payload_size: Optional[int] = None) -> "DnsMessage":
        return cls(
            msg_id=msg_id,
            question=Question(qname, qtype),
            recursion_desired=recursion_desired,
            edns_payload_size=edns_payload_size,
        )

    def make_response(self, rcode: RCode = RCode.NOERROR) -> "DnsMessage":
        """A response skeleton echoing this query's id and question."""
        return DnsMessage(
            msg_id=self.msg_id,
            question=self.question,
            is_response=True,
            rcode=rcode,
            recursion_desired=self.recursion_desired,
            edns_payload_size=self.edns_payload_size,
            via_tcp=self.via_tcp,
        )

    def over_tcp(self) -> "DnsMessage":
        """A copy of this query marked for TCP transport (TC retry)."""
        from dataclasses import replace

        return replace(self, via_tcp=True,
                       answers=list(self.answers),
                       authority=list(self.authority),
                       additional=list(self.additional))

    # -- section helpers ----------------------------------------------------

    def add_answer(self, records: Iterable[ResourceRecord] | RRSet) -> "DnsMessage":
        self.answers.extend(records)
        return self

    def add_authority(self, records: Iterable[ResourceRecord] | RRSet) -> "DnsMessage":
        self.authority.extend(records)
        return self

    def add_additional(self, records: Iterable[ResourceRecord] | RRSet) -> "DnsMessage":
        self.additional.extend(records)
        return self

    # -- inspection -----------------------------------------------------------

    @property
    def qname(self) -> DnsName:
        assert self.question is not None
        return self.question.qname

    @property
    def qtype(self) -> RRType:
        assert self.question is not None
        return self.question.qtype

    def answers_of_type(self, rtype: RRType) -> list[ResourceRecord]:
        return [record for record in self.answers if record.rtype == rtype]

    def authority_of_type(self, rtype: RRType) -> list[ResourceRecord]:
        return [record for record in self.authority if record.rtype == rtype]

    def is_referral(self) -> bool:
        """A NOERROR response with no answers but NS records in authority."""
        return (
            self.is_response
            and self.rcode == RCode.NOERROR
            and not self.answers
            and any(record.rtype == RRType.NS for record in self.authority)
            and not self.authoritative
        )

    def is_nxdomain(self) -> bool:
        return self.is_response and self.rcode == RCode.NXDOMAIN

    def is_nodata(self) -> bool:
        return (
            self.is_response
            and self.rcode == RCode.NOERROR
            and not self.answers
            and not self.is_referral()
        )

    def min_answer_ttl(self) -> int:
        if not self.answers:
            return 0
        return min(record.ttl for record in self.answers)

    def to_text(self) -> str:
        lines = [
            f";; id={self.msg_id} opcode={self.opcode.name} rcode={self.rcode} "
            f"qr={int(self.is_response)} aa={int(self.authoritative)} "
            f"rd={int(self.recursion_desired)} ra={int(self.recursion_available)}"
        ]
        if self.question:
            lines.append(f";; QUESTION\n{self.question.to_text()}")
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authority),
            ("ADDITIONAL", self.additional),
        ):
            if section:
                lines.append(f";; {title}")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)
