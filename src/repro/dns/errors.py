"""Exception hierarchy for the DNS substrate.

Every error raised by :mod:`repro.dns` derives from :class:`DnsError`, so
callers can catch protocol-level problems with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class DnsError(Exception):
    """Base class for all DNS substrate errors."""


class NameError_(DnsError):
    """A domain name is syntactically invalid (label/length limits)."""


class WireFormatError(DnsError):
    """A DNS message could not be encoded to, or decoded from, wire format."""


class ZoneError(DnsError):
    """Zone data is inconsistent (missing SOA, out-of-bailiwick record...)."""


class ZoneParseError(ZoneError):
    """A textual zone fragment could not be parsed."""


class ResolutionError(DnsError):
    """Recursive/iterative resolution failed (SERVFAIL equivalent)."""


class CnameLoopError(ResolutionError):
    """A CNAME chain loops or exceeds the permitted length."""


class ReferralLoopError(ResolutionError):
    """Delegations loop or exceed the permitted depth."""


class NetworkUnreachable(DnsError):
    """No endpoint is registered for the destination IP address."""


class QueryTimeout(DnsError):
    """A query (or every retransmission of it) was lost in the network."""
