"""Exception hierarchy for the DNS substrate.

Every error raised by :mod:`repro.dns` derives from :class:`DnsError`, so
callers can catch protocol-level problems with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class DnsError(Exception):
    """Base class for all DNS substrate errors."""


class NameError_(DnsError):
    """A domain name is syntactically invalid (label/length limits)."""


class WireFormatError(DnsError):
    """A DNS message could not be encoded to, or decoded from, wire format."""


class ZoneError(DnsError):
    """Zone data is inconsistent (missing SOA, out-of-bailiwick record...)."""


class ZoneParseError(ZoneError):
    """A textual zone fragment could not be parsed."""


class ResolutionError(DnsError):
    """Recursive/iterative resolution failed (SERVFAIL equivalent)."""


class CnameLoopError(ResolutionError):
    """A CNAME chain loops or exceeds the permitted length."""


class ReferralLoopError(ResolutionError):
    """Delegations loop or exceed the permitted depth."""


class NetworkUnreachable(DnsError):
    """No endpoint is registered for the destination IP address."""


class QueryTimeout(DnsError):
    """A query (or every retransmission of it) was lost in the network."""


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one probe, as seen by the resilience layer."""

    attempt: int                 # 1-based
    started_at: float            # virtual-clock time
    outcome: str                 # "ok" | "timeout" | "servfail" | "refused"
    rtt: Optional[float] = None


class ProbeFailure(QueryTimeout, ResolutionError):
    """A probe failed after every permitted attempt.

    Subclasses both :class:`QueryTimeout` (what the direct path
    historically raised) and :class:`ResolutionError` (what the
    indirect/stub path historically raised), so every existing ``except``
    clause keeps working — but callers now get the full attempt history
    instead of a bare exception.

    Defined here rather than in :mod:`repro.core.resilient` (which
    re-exports it) so that resolver-layer code can raise and type it
    without importing upward across the architecture DAG.
    """

    def __init__(self, message: str,
                 attempts: tuple[AttemptRecord, ...] = ()):
        super().__init__(message)
        self.attempts = attempts

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def last_outcome(self) -> Optional[str]:
        return self.attempts[-1].outcome if self.attempts else None
