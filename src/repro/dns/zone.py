"""Authoritative zone data and lookup semantics.

A :class:`Zone` stores the RRsets of one zone cut and answers the question
"what does an authoritative server say for (qname, qtype)?" with a
:class:`LookupResult` of one of five kinds:

* ``ANSWER``   — the RRset exists at the qname.
* ``CNAME``    — a CNAME exists at the qname and the qtype is not CNAME.
* ``REFERRAL`` — the qname falls under a delegation point inside the zone;
  the result carries the NS RRset and in-zone glue.
* ``NODATA``   — the name exists but has no RRset of the qtype.
* ``NXDOMAIN`` — the name does not exist.

Wildcards (``*`` leftmost label) are supported with RFC 1034 §4.3.3
semantics: a wildcard synthesises records for any name that would otherwise
not exist, unless a more specific name (or delegation) intervenes.

:func:`parse_zone_text` parses the zone-fragment syntax the paper uses
(``$ORIGIN``, ``name IN TYPE rdata`` lines) so that the examples can be
written exactly like Section IV-B2 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .errors import ZoneError, ZoneParseError
from .name import DnsName, name as make_name
from .record import (
    AaaaRdata,
    ARdata,
    CnameRdata,
    MxRdata,
    NsRdata,
    OpaqueRdata,
    PtrRdata,
    ResourceRecord,
    RRSet,
    SoaRdata,
    SrvRdata,
    TxtRdata,
    group_rrsets,
)
from .rrtype import RRClass, RRType

WILDCARD_LABEL = "*"


class LookupKind(enum.Enum):
    ANSWER = "answer"
    CNAME = "cname"
    REFERRAL = "referral"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"


@dataclass
class LookupResult:
    kind: LookupKind
    rrset: Optional[RRSet] = None          # ANSWER / CNAME payload
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)
    soa: Optional[ResourceRecord] = None   # negative answers

    @property
    def records(self) -> list[ResourceRecord]:
        return list(self.rrset) if self.rrset else []


class Zone:
    """One zone cut with its RRsets.

    ``origin`` is the apex.  Records for names outside the zone are
    rejected.  NS RRsets owned by names *below* the apex are delegation
    points; lookups under them yield referrals.
    """

    def __init__(self, origin: DnsName | str):
        if isinstance(origin, str):
            origin = make_name(origin)
        self.origin = origin
        self._rrsets: dict[tuple[DnsName, RRType], RRSet] = {}
        self._names: set[DnsName] = set()

    # -- mutation -------------------------------------------------------------

    def add_record(self, record: ResourceRecord) -> None:
        if not record.name.is_subdomain_of(self.origin):
            raise ZoneError(f"{record.name} is out of zone {self.origin}")
        key = (record.name, record.rtype)
        existing_cname = self._rrsets.get((record.name, RRType.CNAME))
        if record.rtype == RRType.CNAME:
            owns_others = any(
                rname == record.name and rtype != RRType.CNAME
                for (rname, rtype) in self._rrsets
            )
            if owns_others:
                raise ZoneError(f"CNAME at {record.name} conflicts with other data")
        elif existing_cname is not None:
            raise ZoneError(f"{record.name} already holds a CNAME")
        rrset = self._rrsets.get(key)
        if rrset is None:
            rrset = RRSet(record.name, record.rtype)
            self._rrsets[key] = rrset
        rrset.add(record)
        self._names.add(record.name)

    def add_records(self, records: Iterable[ResourceRecord]) -> None:
        for record in records:
            self.add_record(record)

    def remove_rrset(self, owner: DnsName, rtype: RRType) -> None:
        self._rrsets.pop((owner, rtype), None)
        if not any(rname == owner for (rname, _) in self._rrsets):
            self._names.discard(owner)

    # -- inspection -------------------------------------------------------------

    def get_rrset(self, owner: DnsName, rtype: RRType) -> Optional[RRSet]:
        return self._rrsets.get((owner, rtype))

    def rrsets(self) -> list[RRSet]:
        return list(self._rrsets.values())

    def names(self) -> tuple[DnsName, ...]:
        """Owner names of the zone, deterministically sorted.

        Returned sorted (not as the raw internal ``set``) so that callers
        iterating it — exporters, figure builders, enumeration sweeps —
        can never leak set iteration order into measurement output
        (cdelint CDE003).
        """
        return tuple(sorted(self._names))

    @property
    def soa(self) -> Optional[ResourceRecord]:
        rrset = self._rrsets.get((self.origin, RRType.SOA))
        if rrset and rrset.records:
            return rrset.records[0]
        return None

    def name_exists(self, qname: DnsName) -> bool:
        """Whether the name exists, including as an empty non-terminal."""
        if qname in self._names:
            return True
        return any(existing.is_strict_subdomain_of(qname) for existing in self._names)

    def __contains__(self, qname: DnsName) -> bool:
        return self.name_exists(qname)

    # -- delegation -------------------------------------------------------------

    def delegation_point_for(self, qname: DnsName) -> Optional[DnsName]:
        """The closest delegation at or above ``qname`` (below the apex)."""
        if not qname.is_subdomain_of(self.origin):
            return None
        current = qname
        best: Optional[DnsName] = None
        while current.is_subdomain_of(self.origin) and current != self.origin:
            if (current, RRType.NS) in self._rrsets:
                best = current
            if current.is_root():
                break
            current = current.parent
        return best

    def _glue_for(self, ns_rrset: RRSet) -> list[ResourceRecord]:
        glue: list[ResourceRecord] = []
        for record in ns_rrset:
            assert isinstance(record.rdata, NsRdata)
            target = record.rdata.nsdname
            for rtype in (RRType.A, RRType.AAAA):
                rrset = self._rrsets.get((target, rtype))
                if rrset:
                    glue.extend(rrset)
        return glue

    # -- lookup -------------------------------------------------------------

    def lookup(self, qname: DnsName, qtype: RRType) -> LookupResult:
        if not qname.is_subdomain_of(self.origin):
            raise ZoneError(f"{qname} is not within zone {self.origin}")

        delegation = self.delegation_point_for(qname)
        if delegation is not None:
            ns_rrset = self._rrsets[(delegation, RRType.NS)]
            return LookupResult(
                LookupKind.REFERRAL,
                authority=list(ns_rrset),
                additional=self._glue_for(ns_rrset),
            )

        return self._lookup_at(qname, qtype, synthesize_as=None) or \
            self._wildcard_lookup(qname, qtype) or \
            self._negative(qname)

    def _lookup_at(self, owner: DnsName, qtype: RRType,
                   synthesize_as: Optional[DnsName]) -> Optional[LookupResult]:
        """Positive lookup at ``owner``; records are re-owned to
        ``synthesize_as`` for wildcard synthesis."""
        cname = self._rrsets.get((owner, RRType.CNAME))
        if cname and qtype not in (RRType.CNAME, RRType.ANY):
            return LookupResult(LookupKind.CNAME, rrset=_reown(cname, synthesize_as))
        if qtype == RRType.ANY:
            records = [
                record
                for (rname, _), rrset in self._rrsets.items()
                if rname == owner
                for record in rrset
            ]
            if records:
                rrset = RRSet(synthesize_as or owner, records[0].rtype)
                rrset.records = [
                    _reown_record(record, synthesize_as) for record in records
                ]
                return LookupResult(LookupKind.ANSWER, rrset=rrset)
            return None
        rrset = self._rrsets.get((owner, qtype))
        if rrset:
            return LookupResult(LookupKind.ANSWER, rrset=_reown(rrset, synthesize_as))
        if self.name_exists(owner):
            return LookupResult(LookupKind.NODATA, soa=self.soa)
        return None

    def _wildcard_lookup(self, qname: DnsName, qtype: RRType) -> Optional[LookupResult]:
        if qname == self.origin:
            return None
        # Search for a wildcard at each ancestor within the zone.
        current = qname.parent
        while current.is_subdomain_of(self.origin):
            wildcard = current.prepend(WILDCARD_LABEL)
            if any(rname == wildcard for (rname, _) in self._rrsets):
                result = self._lookup_at(wildcard, qtype, synthesize_as=qname)
                if result and result.kind in (LookupKind.ANSWER, LookupKind.CNAME):
                    return result
                return LookupResult(LookupKind.NODATA, soa=self.soa)
            if self.name_exists(current):
                # A closer existing name blocks wildcards above it.
                return None
            if current == self.origin:
                break
            current = current.parent
        return None

    def _negative(self, qname: DnsName) -> LookupResult:
        if self.name_exists(qname):
            return LookupResult(LookupKind.NODATA, soa=self.soa)
        return LookupResult(LookupKind.NXDOMAIN, soa=self.soa)


def _reown(rrset: RRSet, new_owner: Optional[DnsName]) -> RRSet:
    if new_owner is None:
        return rrset
    clone = RRSet(new_owner, rrset.rtype, rrset.rclass)
    clone.records = [_reown_record(record, new_owner) for record in rrset.records]
    return clone


def _reown_record(record: ResourceRecord, new_owner: Optional[DnsName]) -> ResourceRecord:
    if new_owner is None or record.name == new_owner:
        return record
    return ResourceRecord(new_owner, record.rtype, record.ttl, record.rdata, record.rclass)


# --------------------------------------------------------------------------
# zone-file text parsing
# --------------------------------------------------------------------------

_DEFAULT_TTL = 300


def _parse_rdata(rtype: RRType, tokens: list[str], origin: DnsName) -> object:
    def absolute(token: str) -> DnsName:
        if token.endswith("."):
            return make_name(token)
        return make_name(token).concatenate(origin)

    if rtype == RRType.A:
        return ARdata(tokens[0])
    if rtype == RRType.AAAA:
        return AaaaRdata(tokens[0])
    if rtype == RRType.NS:
        return NsRdata(absolute(tokens[0]))
    if rtype == RRType.CNAME:
        return CnameRdata(absolute(tokens[0]))
    if rtype == RRType.PTR:
        return PtrRdata(absolute(tokens[0]))
    if rtype == RRType.MX:
        return MxRdata(int(tokens[0]), absolute(tokens[1]))
    if rtype in (RRType.TXT, RRType.SPF):
        return TxtRdata(tuple(token.strip('"') for token in tokens))
    if rtype == RRType.SOA:
        return SoaRdata(
            absolute(tokens[0]), absolute(tokens[1]),
            *(int(token) for token in tokens[2:7]),
        )
    if rtype == RRType.SRV:
        return SrvRdata(int(tokens[0]), int(tokens[1]), int(tokens[2]),
                        absolute(tokens[3]))
    return OpaqueRdata(" ".join(tokens))


def parse_zone_text(text: str, origin: DnsName | str | None = None) -> Zone:
    """Parse a zone fragment in the paper's notation.

    Supports ``$ORIGIN``/``$TTL`` directives, comments (``;``), relative and
    absolute owner names, optional TTL field and the ``IN`` class token.
    """
    import textwrap

    current_origin = make_name(origin) if isinstance(origin, str) else origin
    default_ttl = _DEFAULT_TTL
    pending: list[ResourceRecord] = []
    last_owner: Optional[DnsName] = None
    text = textwrap.dedent(text.strip("\n"))

    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        tokens = line.split()
        if tokens[0] == "$ORIGIN":
            current_origin = make_name(tokens[1])
            continue
        if tokens[0] == "$TTL":
            default_ttl = int(tokens[1])
            continue
        if current_origin is None:
            raise ZoneParseError("no $ORIGIN and no explicit origin given")

        if raw_line[0] in " \t":
            owner = last_owner
            if owner is None:
                raise ZoneParseError(f"continuation line with no previous owner: {line!r}")
        else:
            owner_token = tokens.pop(0)
            if owner_token == "@":
                owner = current_origin
            elif owner_token.endswith("."):
                owner = make_name(owner_token)
            else:
                owner = make_name(owner_token).concatenate(current_origin)
            last_owner = owner

        ttl = default_ttl
        if tokens and tokens[0].isdigit():
            ttl = int(tokens.pop(0))
        if tokens and tokens[0].upper() in ("IN", "CH"):
            tokens.pop(0)
        if tokens and tokens[0].isdigit():  # TTL may follow the class too
            ttl = int(tokens.pop(0))
        if not tokens:
            raise ZoneParseError(f"missing type in line {line!r}")
        try:
            rtype = RRType.from_text(tokens.pop(0))
        except ValueError as exc:
            raise ZoneParseError(str(exc)) from None
        if not tokens:
            raise ZoneParseError(f"missing rdata in line {line!r}")
        rdata = _parse_rdata(rtype, tokens, current_origin)
        pending.append(ResourceRecord(owner, rtype, ttl, rdata))  # type: ignore[arg-type]

    if current_origin is None:
        raise ZoneParseError("empty zone text")
    zone = Zone(current_origin)
    zone.add_records(pending)
    return zone


def zone_to_text(zone: Zone) -> str:
    """Render a zone back to presentation format (stable order)."""
    lines = [f"$ORIGIN {zone.origin}."]
    for rrset in sorted(zone.rrsets(), key=lambda rs: (rs.name, int(rs.rtype))):
        lines.extend(record.to_text() for record in rrset)
    return "\n".join(lines)


def rrsets_of(records: Iterable[ResourceRecord]) -> list[RRSet]:
    """Re-export of :func:`repro.dns.record.group_rrsets` for convenience."""
    return group_rrsets(records)
