"""Resource records and record sets.

A :class:`ResourceRecord` binds an owner name, type, class, TTL and rdata.
Rdata is modelled by small frozen dataclasses (one per supported type) that
know their presentation format; unknown types carry opaque text.

An :class:`RRSet` groups records sharing (owner, type, class) — the unit of
caching and of zone lookup answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .errors import ZoneError
from .name import DnsName
from .rrtype import RRClass, RRType

# --------------------------------------------------------------------------
# rdata
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Rdata:
    """Base class for typed rdata."""

    def to_text(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ARdata(Rdata):
    address: str  # dotted quad

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class AaaaRdata(Rdata):
    address: str

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class NsRdata(Rdata):
    nsdname: DnsName

    def to_text(self) -> str:
        return f"{self.nsdname}."


@dataclass(frozen=True)
class CnameRdata(Rdata):
    target: DnsName

    def to_text(self) -> str:
        return f"{self.target}."


@dataclass(frozen=True)
class PtrRdata(Rdata):
    target: DnsName

    def to_text(self) -> str:
        return f"{self.target}."


@dataclass(frozen=True)
class MxRdata(Rdata):
    preference: int
    exchange: DnsName

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange}."


@dataclass(frozen=True)
class TxtRdata(Rdata):
    strings: tuple[str, ...]

    def to_text(self) -> str:
        return " ".join(f'"{s}"' for s in self.strings)


@dataclass(frozen=True)
class SoaRdata(Rdata):
    mname: DnsName
    rname: DnsName
    serial: int
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300

    def to_text(self) -> str:
        return (
            f"{self.mname}. {self.rname}. {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )


@dataclass(frozen=True)
class SrvRdata(Rdata):
    priority: int
    weight: int
    port: int
    target: DnsName

    def to_text(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target}."


@dataclass(frozen=True)
class OpaqueRdata(Rdata):
    """Rdata of a type the library does not interpret."""

    text: str

    def to_text(self) -> str:
        return self.text


# --------------------------------------------------------------------------
# records
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record."""

    name: DnsName
    rtype: RRType
    ttl: int
    rdata: Rdata
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ZoneError(f"negative TTL on {self.name}")

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        return ResourceRecord(self.name, self.rtype, ttl, self.rdata, self.rclass)

    def to_text(self) -> str:
        return f"{self.name}. {self.ttl} {self.rclass} {self.rtype} {self.rdata.to_text()}"

    @property
    def key(self) -> tuple[DnsName, RRType, RRClass]:
        return (self.name, self.rtype, self.rclass)


def a_record(owner: DnsName, address: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(owner, RRType.A, ttl, ARdata(address))


def aaaa_record(owner: DnsName, address: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(owner, RRType.AAAA, ttl, AaaaRdata(address))


def ns_record(owner: DnsName, nsdname: DnsName, ttl: int = 3600) -> ResourceRecord:
    return ResourceRecord(owner, RRType.NS, ttl, NsRdata(nsdname))


def cname_record(owner: DnsName, target: DnsName, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(owner, RRType.CNAME, ttl, CnameRdata(target))


def mx_record(owner: DnsName, preference: int, exchange: DnsName, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(owner, RRType.MX, ttl, MxRdata(preference, exchange))


def txt_record(owner: DnsName, *strings: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(owner, RRType.TXT, ttl, TxtRdata(tuple(strings)))


def spf_record(owner: DnsName, *strings: str, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(owner, RRType.SPF, ttl, TxtRdata(tuple(strings)))


def soa_record(owner: DnsName, mname: DnsName, rname: DnsName, serial: int = 1,
               ttl: int = 3600, minimum: int = 300) -> ResourceRecord:
    return ResourceRecord(owner, RRType.SOA, ttl, SoaRdata(mname, rname, serial, minimum=minimum))


# --------------------------------------------------------------------------
# RRsets
# --------------------------------------------------------------------------


@dataclass
class RRSet:
    """All records sharing (owner, type, class).

    The RRset TTL is the minimum of the member TTLs, matching how caches
    treat mixed-TTL sets in practice.
    """

    name: DnsName
    rtype: RRType
    rclass: RRClass = RRClass.IN
    records: list[ResourceRecord] = field(default_factory=list)

    @classmethod
    def from_records(cls, records: Sequence[ResourceRecord]) -> "RRSet":
        if not records:
            raise ZoneError("cannot build an RRset from zero records")
        first = records[0]
        rrset = cls(first.name, first.rtype, first.rclass)
        for record in records:
            rrset.add(record)
        return rrset

    def add(self, record: ResourceRecord) -> None:
        if (record.name, record.rtype, record.rclass) != (self.name, self.rtype, self.rclass):
            raise ZoneError(
                f"record {record.to_text()} does not belong to RRset "
                f"({self.name}, {self.rtype}, {self.rclass})"
            )
        if record not in self.records:
            self.records.append(record)

    @property
    def ttl(self) -> int:
        if not self.records:
            return 0
        return min(record.ttl for record in self.records)

    def with_ttl(self, ttl: int) -> "RRSet":
        clone = RRSet(self.name, self.rtype, self.rclass)
        clone.records = [record.with_ttl(ttl) for record in self.records]
        return clone

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def to_text(self) -> str:
        return "\n".join(record.to_text() for record in self.records)


def group_rrsets(records: Iterable[ResourceRecord]) -> list[RRSet]:
    """Group loose records into RRsets, preserving first-seen order."""
    grouped: dict[tuple[DnsName, RRType, RRClass], RRSet] = {}
    for record in records:
        rrset = grouped.get(record.key)
        if rrset is None:
            rrset = RRSet(record.name, record.rtype, record.rclass)
            grouped[record.key] = rrset
        rrset.add(record)
    return list(grouped.values())
