"""EDNS(0) helpers (RFC 6891).

The paper's motivation section names "adoption of new mechanisms for DNS,
such as the transport layer EDNS mechanism" as a use case for the cache
study: once caches can be addressed individually, per-cache EDNS support
can be measured.  This module provides the small amount of EDNS machinery
needed for that: payload-size negotiation and a per-responder support probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .message import DnsMessage

#: Conventional advertised payload size of modern resolvers.
DEFAULT_PAYLOAD_SIZE = 4096
#: RFC 1035 limit for plain (non-EDNS) UDP.
CLASSIC_UDP_LIMIT = 512


def effective_payload_limit(query: DnsMessage, responder_max: Optional[int]) -> int:
    """The payload limit in force for a response.

    ``responder_max`` is the responder's own configured maximum (``None``
    means the responder does not speak EDNS).  The limit is the minimum of
    the two sides' advertisements, falling back to 512 when either side
    lacks EDNS.
    """
    if query.edns_payload_size is None or responder_max is None:
        return CLASSIC_UDP_LIMIT
    return max(CLASSIC_UDP_LIMIT, min(query.edns_payload_size, responder_max))


def maybe_truncate(query: DnsMessage, response: DnsMessage,
                   responder_max: Optional[int]) -> DnsMessage:
    """Apply UDP truncation when the response exceeds the payload limit.

    TCP responses are exempt.  A truncated response keeps only the header
    and question with the TC bit set (RFC 2181 §9 minimal style), telling
    the client to retry over TCP.
    """
    if query.via_tcp:
        return response
    from .wire import message_size_upper_bound, message_wire_size

    limit = effective_payload_limit(query, responder_max)
    # The uncompressed upper bound is a superset of the encoded size, so a
    # bound that already fits proves the response fits without encoding it
    # (the common case: minimal responses are far below 512 bytes).
    if message_size_upper_bound(response) <= limit:
        return response
    if message_wire_size(response) <= limit:
        return response
    truncated = query.make_response(response.rcode)
    truncated.truncated = True
    truncated.authoritative = response.authoritative
    truncated.recursion_available = response.recursion_available
    truncated.edns_payload_size = response.edns_payload_size
    return truncated


@dataclass
class EdnsProbeResult:
    supports_edns: bool
    advertised_size: Optional[int]


def probe_edns(send: Callable[[DnsMessage], DnsMessage],
               query: DnsMessage) -> EdnsProbeResult:
    """Probe one responder for EDNS support.

    ``send`` performs the transaction.  The query is sent with an OPT
    record; a response that echoes an OPT record indicates support.
    """
    query.edns_payload_size = DEFAULT_PAYLOAD_SIZE
    response = send(query)
    if response.edns_payload_size is not None:
        return EdnsProbeResult(True, response.edns_payload_size)
    return EdnsProbeResult(False, None)
