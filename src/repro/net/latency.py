"""Link latency models.

The indirect-egress technique (paper §IV-B3) is a timing side channel, so the
simulator needs latencies with realistic spread: a response served from a
cache crosses only the client↔platform link, while a cache miss adds the
platform↔nameserver round trips.  Models return one-way delays in seconds;
the network applies one draw per direction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol


class LatencyModel(Protocol):
    def sample(self, rng: random.Random) -> float:
        """One-way delay in seconds."""


@dataclass(frozen=True)
class ConstantLatency:
    delay: float = 0.010

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    low: float = 0.005
    high: float = 0.020

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("need 0 <= low <= high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogNormalLatency:
    """Heavy-ish tailed latency, the shape seen on real WAN paths.

    ``median`` is the median one-way delay; ``sigma`` the log-space standard
    deviation (0.3–0.6 is typical of Internet paths).
    """

    median: float = 0.015
    sigma: float = 0.35

    def sample(self, rng: random.Random) -> float:
        return self.median * math.exp(rng.gauss(0.0, self.sigma))


@dataclass(frozen=True)
class CompositeLatency:
    """Base propagation delay plus jitter from an inner model."""

    base: float
    jitter: LatencyModel

    def sample(self, rng: random.Random) -> float:
        return self.base + self.jitter.sample(rng)


def wan_path(median: float = 0.020, sigma: float = 0.30) -> LatencyModel:
    """A typical client↔platform or platform↔nameserver WAN path."""
    return LogNormalLatency(median=median, sigma=sigma)


def lan_path(delay: float = 0.0005) -> LatencyModel:
    """Intra-platform hop (load balancer to cache)."""
    return ConstantLatency(delay)
