"""Seeded randomness.

All stochastic behaviour in the simulator flows from one root seed through
named streams, so that (a) every experiment is reproducible given its seed
and (b) adding a new random consumer does not perturb the draws of existing
ones (each stream is independently seeded from the root seed and its name).
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional


def derive_seed(root_seed: int, stream: str) -> int:
    """Stable 64-bit seed for a named stream under ``root_seed``.

    This is the one seed-derivation scheme of the whole toolkit: RNG
    streams, forked factories and the parallel measurement engine's
    per-shard world seeds (``derive_seed(base_seed, "shard/<index>")``)
    all flow through it, so a documented seed reproduces everything.
    """
    digest = hashlib.sha256(f"{root_seed}/{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Backwards-compatible alias (pre-parallel-engine internal name).
_derive_seed = derive_seed


class RngFactory:
    """Hands out independent, named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngFactory":
        """A child factory whose root seed derives from this one."""
        return RngFactory(derive_seed(self.root_seed, f"fork:{name}"))


def make_rng(seed: Optional[int], stream: str = "default") -> random.Random:
    """One-off stream constructor for components used standalone."""
    return RngFactory(seed if seed is not None else 0).stream(stream)


def fallback_rng(component: str) -> random.Random:
    """Deterministic default stream for a component whose caller injected
    no rng (standalone or test construction).

    Seeded via :func:`derive_seed` under root seed 0, so (a) the default
    is still fully deterministic and (b) two components falling back at
    the same time get *independent* streams instead of the identical
    ``random.Random(0)`` sequence — default-constructed siblings must not
    be correlated.  Simulation paths always inject streams from the
    world's :class:`RngFactory`; this is never reached from a seeded run.
    """
    return random.Random(derive_seed(0, f"fallback/{component}"))
