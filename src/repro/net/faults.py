"""Deterministic fault injection for the simulated Internet.

The paper's Internet study (§V) ran against lossy, rate-limited and plainly
misbehaving resolvers: per-country packet loss, middleboxes answering
SERVFAIL or REFUSED on behalf of the real platform, silent drops and
congestion bursts.  This module lets any experiment reproduce that hostile
weather *deterministically*: a :class:`FaultPlan` is a pure-data description
of what can go wrong (per endpoint scope, per virtual-time window), and a
:class:`FaultInjector` applies it inside :class:`~repro.net.network.Network`
using one dedicated seeded RNG stream.

Determinism contract (the same one the parallel engine relies on):

* every probabilistic decision draws from a single named stream
  (``rng_factory.stream("faults")``), never from the network's latency/loss
  stream — attaching an injector does not perturb any other draw;
* rate limiting is driven purely by the virtual clock (no RNG at all);
* a world built from a :class:`~repro.study.internet.WorldConfig` carries
  only the fault *profile name*, so shard workers rebuild identical plans
  from their shard seed and rows stay byte-identical for any worker count.

Fault taxonomy (see docs/RESILIENCE.md):

=================  ==========================================================
kind               observable effect on one query attempt
=================  ==========================================================
``DROP_REQUEST``   the request vanishes; the responder never saw it
``DROP_RESPONSE``  the responder did all its work (caches populated!) but
                   the answer vanishes
``SERVFAIL``       an on-path middlebox answers SERVFAIL; the real endpoint
                   never sees the query
``REFUSED``        as above with REFUSED (policy middlebox / RRL)
``TRUNCATE``       the UDP response is truncated (TC=1, answers stripped),
                   forcing the caller's TCP retry
``LATENCY_SPIKE``  the request path stalls for ``extra_latency`` seconds
``RATE_LIMIT``     requests beyond ``burst`` per ``burst_window`` seconds to
                   one destination are dropped (token-window, clock-driven)
=================  ==========================================================
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from .address import Prefix
from .clock import SimClock
from .loss import PAPER_LOSS_RATES


class FaultKind(Enum):
    """What a fault rule does to a matched query attempt."""

    DROP_REQUEST = "drop-request"
    DROP_RESPONSE = "drop-response"
    SERVFAIL = "servfail"
    REFUSED = "refused"
    TRUNCATE = "truncate"
    LATENCY_SPIKE = "latency-spike"
    RATE_LIMIT = "rate-limit"


#: Address scopes of the simulated Internet (fixed allocator layout —
#: see :class:`~repro.study.internet.SimulatedInternet`).
PLATFORM_PREFIX = "10.0.0.0/8"          # resolution platforms (ingress+egress)
INFRASTRUCTURE_PREFIX = "203.0.113.0/24"  # CDE nameservers
CLIENT_PREFIX = "172.16.0.0/12"         # browsers, SMTP hosts


@dataclass(frozen=True)
class TimeWindow:
    """A half-open virtual-time interval ``[start, end)``."""

    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"bad time window [{self.start}, {self.end})")

    def contains(self, now: float) -> bool:
        return self.start <= now < self.end


ALWAYS = TimeWindow()


@dataclass(frozen=True)
class FaultRule:
    """One composable fault: kind + scope + window + intensity.

    Scopes are IPv4 prefixes in ``a.b.c.d/len`` text form; ``None`` matches
    anything.  ``probability`` is evaluated per query attempt with the
    injector's dedicated RNG stream (``RATE_LIMIT`` ignores it and fires
    purely from the clock-driven request window).
    """

    kind: FaultKind
    probability: float = 1.0
    dst_prefix: Optional[str] = None
    src_prefix: Optional[str] = None
    window: TimeWindow = ALWAYS
    #: ``LATENCY_SPIKE`` only: seconds added to the request path.
    extra_latency: float = 0.25
    #: ``RATE_LIMIT`` only: requests allowed per destination per window.
    burst: int = 0
    burst_window: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0,1]: {self.probability}")
        if self.extra_latency < 0:
            raise ValueError("extra_latency must be non-negative")
        if self.kind is FaultKind.RATE_LIMIT and self.burst < 1:
            raise ValueError("RATE_LIMIT rules need burst >= 1")
        if self.burst_window <= 0:
            raise ValueError("burst_window must be positive")
        # Parse scope prefixes once; Prefix is hashable and frozen.
        object.__setattr__(self, "_dst", self._parse(self.dst_prefix))
        object.__setattr__(self, "_src", self._parse(self.src_prefix))

    @staticmethod
    def _parse(text: Optional[str]) -> Optional[Prefix]:
        return None if text is None else Prefix.from_text(text)

    def matches(self, src_ip: str, dst_ip: str, now: float,
                via_tcp: bool) -> bool:
        """Whether this rule applies to one attempt (before any RNG draw)."""
        if via_tcp and self.kind is FaultKind.TRUNCATE:
            return False  # TCP answers are never truncated
        if not self.window.contains(now):
            return False
        dst: Optional[Prefix] = getattr(self, "_dst")
        if dst is not None and not dst.contains(dst_ip):
            return False
        src: Optional[Prefix] = getattr(self, "_src")
        if src is not None and not src.contains(src_ip):
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules; the first rule that fires wins."""

    name: str
    rules: tuple[FaultRule, ...] = ()

    @property
    def is_noop(self) -> bool:
        return not self.rules

    def scoped(self, dst_prefix: Optional[str]) -> "FaultPlan":
        """A copy of this plan with every rule re-scoped to ``dst_prefix``."""
        return FaultPlan(
            name=self.name,
            rules=tuple(replace(rule, dst_prefix=dst_prefix)
                        for rule in self.rules),
        )


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one query attempt."""

    kind: FaultKind
    rule_index: int
    extra_latency: float = 0.0


@dataclass
class FaultExposure:
    """Counters of applied faults, keyed by kind value (sorted on export)."""

    by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, kind: FaultKind) -> None:
        self.by_kind[kind.value] = self.by_kind.get(kind.value, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.by_kind.values())

    def snapshot(self) -> dict[str, int]:
        return dict(self.by_kind)

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Exposure accumulated since ``before``, zero entries dropped."""
        out = {}
        for kind_value in sorted(self.by_kind):
            diff = self.by_kind[kind_value] - before.get(kind_value, 0)
            if diff:
                out[kind_value] = diff
        return out


class FaultInjector:
    """Applies a :class:`FaultPlan` deterministically inside the network.

    ``rng`` must be a dedicated stream (by convention
    ``rng_factory.stream("faults")``): probabilistic rules consume draws in
    attempt order, so two runs with the same seed and plan make identical
    decisions.  Rate-limit bookkeeping is keyed by (rule, destination) and
    driven solely by the virtual clock.
    """

    def __init__(self, plan: FaultPlan, clock: SimClock,
                 rng: random.Random):
        self.plan = plan
        self.clock = clock
        self.rng = rng
        self.exposure = FaultExposure()
        self._request_times: dict[tuple[int, str], list[float]] = {}

    def decide(self, src_ip: str, dst_ip: str,
               via_tcp: bool = False) -> Optional[FaultDecision]:
        """The fault (if any) afflicting one query attempt, first match wins."""
        now = self.clock.now
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(src_ip, dst_ip, now, via_tcp):
                continue
            if rule.kind is FaultKind.RATE_LIMIT:
                if not self._over_limit(index, rule, dst_ip, now):
                    continue
            elif rule.probability < 1.0 and \
                    self.rng.random() >= rule.probability:
                continue
            self.exposure.record(rule.kind)
            extra = (rule.extra_latency
                     if rule.kind is FaultKind.LATENCY_SPIKE else 0.0)
            return FaultDecision(kind=rule.kind, rule_index=index,
                                 extra_latency=extra)
        return None

    def _over_limit(self, index: int, rule: FaultRule, dst_ip: str,
                    now: float) -> bool:
        """Sliding-window request counting; purely clock-driven."""
        key = (index, dst_ip)
        times = self._request_times.setdefault(key, [])
        horizon = now - rule.burst_window
        while times and times[0] <= horizon:
            times.pop(0)
        times.append(now)
        return len(times) > rule.burst


# ---------------------------------------------------------------------------
# named profiles (the CLI / WorldConfig surface)
# ---------------------------------------------------------------------------


def loss_profile(rate: float, name: str,
                 dst_prefix: str = PLATFORM_PREFIX) -> FaultPlan:
    """Symmetric injected loss at ``rate``: half request, half response drops.

    Modelled *on top of* any link-level loss the world already applies, so
    benches can sweep injected rates with ``lossy_platforms=False`` for a
    clean accuracy-vs-loss curve.
    """
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"loss rate must be in [0,1): {rate}")
    half = rate / 2.0
    return FaultPlan(name=name, rules=(
        FaultRule(FaultKind.DROP_REQUEST, probability=half,
                  dst_prefix=dst_prefix),
        FaultRule(FaultKind.DROP_RESPONSE, probability=half,
                  dst_prefix=dst_prefix),
    ))


def servfail_profile(rate: float, name: str = "servfail-middlebox",
                     refused_rate: float = 0.0) -> FaultPlan:
    """An on-path middlebox answering SERVFAIL (and optionally REFUSED)."""
    rules = [FaultRule(FaultKind.SERVFAIL, probability=rate,
                       dst_prefix=PLATFORM_PREFIX)]
    if refused_rate > 0:
        rules.append(FaultRule(FaultKind.REFUSED, probability=refused_rate,
                               dst_prefix=PLATFORM_PREFIX))
    return FaultPlan(name=name, rules=tuple(rules))


def _hostile_mix() -> FaultPlan:
    """A bit of everything, including a mid-run outage burst window."""
    return FaultPlan(name="hostile-mix", rules=(
        # Total platform outage for a 20-virtual-second window.
        FaultRule(FaultKind.DROP_REQUEST, probability=1.0,
                  dst_prefix=PLATFORM_PREFIX,
                  window=TimeWindow(40.0, 60.0)),
        FaultRule(FaultKind.SERVFAIL, probability=0.04,
                  dst_prefix=PLATFORM_PREFIX),
        FaultRule(FaultKind.REFUSED, probability=0.02,
                  dst_prefix=PLATFORM_PREFIX),
        FaultRule(FaultKind.TRUNCATE, probability=0.10,
                  dst_prefix=PLATFORM_PREFIX),
        FaultRule(FaultKind.LATENCY_SPIKE, probability=0.05,
                  extra_latency=0.4, dst_prefix=PLATFORM_PREFIX),
        FaultRule(FaultKind.DROP_REQUEST, probability=0.03,
                  dst_prefix=PLATFORM_PREFIX),
        FaultRule(FaultKind.DROP_RESPONSE, probability=0.03,
                  dst_prefix=PLATFORM_PREFIX),
    ))


#: Registry of named fault profiles; ``WorldConfig.fault_profile`` and the
#: CLI's ``--fault-profile`` accept exactly these names.
FAULT_PROFILES: dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    # The paper's measured per-country loss rates (§V), injected.
    "loss-default": loss_profile(PAPER_LOSS_RATES["default"], "loss-default"),
    "loss-cn": loss_profile(PAPER_LOSS_RATES["CN"], "loss-cn"),
    "loss-ir": loss_profile(PAPER_LOSS_RATES["IR"], "loss-ir"),
    "loss-heavy": loss_profile(0.25, "loss-heavy"),
    "servfail-middlebox": servfail_profile(0.05, refused_rate=0.02),
    "truncating-middlebox": FaultPlan("truncating-middlebox", rules=(
        FaultRule(FaultKind.TRUNCATE, probability=0.3,
                  dst_prefix=PLATFORM_PREFIX),
    )),
    "latency-spikes": FaultPlan("latency-spikes", rules=(
        FaultRule(FaultKind.LATENCY_SPIKE, probability=0.1,
                  extra_latency=0.5, dst_prefix=PLATFORM_PREFIX),
    )),
    "rate-limited": FaultPlan("rate-limited", rules=(
        FaultRule(FaultKind.RATE_LIMIT, burst=20, burst_window=1.0,
                  dst_prefix=PLATFORM_PREFIX),
    )),
    # The platform's *egress* path to our nameservers is flaky — queries
    # reach the platform fine but its upstream fetches get lost
    # (cf. transparent-forwarder middleboxes between resolver and server).
    "flaky-egress": FaultPlan("flaky-egress", rules=(
        FaultRule(FaultKind.DROP_REQUEST, probability=0.08,
                  dst_prefix=INFRASTRUCTURE_PREFIX),
    )),
    "hostile-mix": _hostile_mix(),
}


def fault_plan(profile: str) -> FaultPlan:
    """Resolve a profile name, with a helpful error for typos."""
    try:
        return FAULT_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise KeyError(
            f"unknown fault profile {profile!r}; known profiles: {known}"
        ) from None
