"""IPv4 addresses, prefixes and allocation pools.

The paper's platform model allocates full subnets to resolvers: ``2^(32-x)``
ingress addresses and ``2^(32-y)`` egress addresses (Figure 1).  This module
provides lightweight integer-backed IPv4 handling plus :class:`AddressPool`,
which hands out unique addresses from a prefix, and :class:`AddressAllocator`
which carves disjoint prefixes out of a supernet for the population
generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


def ip_to_int(address: str) -> int:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    if not 0 <= value < 2 ** 32:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return (f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}."
            f"{(value >> 8) & 0xFF}.{value & 0xFF}")


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix ``base/length``."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"bad prefix length {self.length}")
        mask = self.netmask
        if self.base & ~mask & 0xFFFFFFFF:
            raise ValueError("prefix base has host bits set")

    @classmethod
    def from_text(cls, text: str) -> "Prefix":
        base_text, _, length_text = text.partition("/")
        return cls(ip_to_int(base_text), int(length_text))

    @property
    def netmask(self) -> int:
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        return 2 ** (32 - self.length)

    def contains(self, address: str) -> bool:
        return (ip_to_int(address) & self.netmask) == self.base

    def addresses(self) -> Iterator[str]:
        for offset in range(self.size):
            yield int_to_ip(self.base + offset)

    def nth(self, offset: int) -> str:
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside /{self.length}")
        return int_to_ip(self.base + offset)

    def __str__(self) -> str:
        return f"{int_to_ip(self.base)}/{self.length}"


class AddressPool:
    """Sequentially allocates unique addresses out of a prefix."""

    def __init__(self, prefix: Prefix | str):
        if isinstance(prefix, str):
            prefix = Prefix.from_text(prefix)
        self.prefix = prefix
        self._next = 0

    def allocate(self) -> str:
        if self._next >= self.prefix.size:
            raise RuntimeError(f"address pool {self.prefix} exhausted")
        address = self.prefix.nth(self._next)
        self._next += 1
        return address

    def allocate_block(self, count: int) -> list[str]:
        start = self._next
        if start + count > self.prefix.size:
            raise RuntimeError(f"address pool {self.prefix} exhausted")
        self._next = start + count
        base = self.prefix.base + start
        return [(f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}."
                 f"{(v >> 8) & 0xFF}.{v & 0xFF}")
                for v in range(base, base + count)]

    @property
    def remaining(self) -> int:
        return self.prefix.size - self._next


class AddressAllocator:
    """Carves disjoint sub-prefixes out of a supernet.

    Used by the population generators: each simulated platform receives its
    own subnet for ingress/egress resolvers, mirroring the paper's "typically
    a full subnet is allocated for the resolvers".
    """

    def __init__(self, supernet: Prefix | str = "10.0.0.0/8"):
        if isinstance(supernet, str):
            supernet = Prefix.from_text(supernet)
        self.supernet = supernet
        self._cursor = supernet.base

    def allocate_prefix(self, length: int) -> Prefix:
        if length < self.supernet.length:
            raise ValueError("requested prefix larger than the supernet")
        size = 2 ** (32 - length)
        # Align the cursor to the requested size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        end = self.supernet.base + self.supernet.size
        if aligned + size > end:
            raise RuntimeError(f"supernet {self.supernet} exhausted")
        self._cursor = aligned + size
        return Prefix(aligned, length)

    def allocate_pool(self, min_addresses: int) -> AddressPool:
        """A pool with capacity for at least ``min_addresses`` hosts."""
        length = 32
        while 2 ** (32 - length) < min_addresses:
            length -= 1
        return AddressPool(self.allocate_prefix(length))
