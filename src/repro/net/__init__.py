"""Network simulator substrate: virtual time, addresses, latency/loss, routing."""

from .address import AddressAllocator, AddressPool, Prefix, int_to_ip, ip_to_int
from .clock import SimClock
from .latency import (
    CompositeLatency,
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    lan_path,
    wan_path,
)
from .faults import (
    FAULT_PROFILES,
    FaultDecision,
    FaultExposure,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    TimeWindow,
    fault_plan,
    loss_profile,
    servfail_profile,
)
from .loss import PAPER_LOSS_RATES, BernoulliLoss, BurstLoss, LossModel, NoLoss, country_loss
from .network import Endpoint, LinkProfile, Network, NetworkStats, Transaction
from .perf import PerfCounters, ShardPerf, snapshot_stats, stats_delta, track
from .rng import RngFactory, derive_seed, make_rng

__all__ = [
    "AddressAllocator", "AddressPool", "BernoulliLoss", "BurstLoss",
    "CompositeLatency", "ConstantLatency", "Endpoint", "FAULT_PROFILES",
    "FaultDecision", "FaultExposure", "FaultInjector", "FaultKind",
    "FaultPlan", "FaultRule", "LatencyModel",
    "LinkProfile", "LogNormalLatency", "LossModel", "Network", "NetworkStats",
    "NoLoss", "PAPER_LOSS_RATES", "PerfCounters", "Prefix", "RngFactory",
    "ShardPerf", "SimClock", "TimeWindow", "Transaction", "UniformLatency",
    "country_loss", "derive_seed", "fault_plan", "int_to_ip", "ip_to_int",
    "lan_path", "loss_profile", "make_rng", "servfail_profile",
    "snapshot_stats", "stats_delta", "track", "wan_path",
]
