"""Packet-loss models.

Section V of the paper reports per-country loss during the Internet
measurements — 11% in Iran, almost 4% in China, around 1% elsewhere — and
motivates *carpet bombing* (replicated probes) as the countermeasure.  The
models here decide, per traversal, whether a message is dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

#: Loss rates the paper reports (Section V).
PAPER_LOSS_RATES = {
    "IR": 0.11,   # Iran
    "CN": 0.04,   # China (almost 4%)
    "default": 0.01,
}


class LossModel(Protocol):
    def is_lost(self, rng: random.Random) -> bool:
        """Whether one packet traversal is dropped."""


@dataclass(frozen=True)
class NoLoss:
    def is_lost(self, rng: random.Random) -> bool:
        return False


@dataclass(frozen=True)
class BernoulliLoss:
    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate must be in [0,1): {self.rate}")

    def is_lost(self, rng: random.Random) -> bool:
        return self.rate > 0 and rng.random() < self.rate


@dataclass
class BurstLoss:
    """Gilbert–Elliott two-state loss: lossless 'good' and lossy 'bad' bursts.

    Real congestion losses are bursty; this model lets the carpet-bombing
    benches show why spreading replicas beats naive immediate retransmission.
    """

    good_to_bad: float = 0.01
    bad_to_good: float = 0.30
    bad_loss_rate: float = 0.8
    _in_bad: bool = field(default=False, repr=False)

    def is_lost(self, rng: random.Random) -> bool:
        if self._in_bad:
            if rng.random() < self.bad_to_good:
                self._in_bad = False
        else:
            if rng.random() < self.good_to_bad:
                self._in_bad = True
        return self._in_bad and rng.random() < self.bad_loss_rate


def country_loss(country_code: str) -> BernoulliLoss:
    """A Bernoulli model at the paper's measured rate for ``country_code``."""
    return BernoulliLoss(PAPER_LOSS_RATES.get(country_code, PAPER_LOSS_RATES["default"]))
