"""Performance counters for measurement runs.

The ROADMAP's north star is a system that "runs as fast as the hardware
allows"; you cannot steer toward that without numbers.  :class:`PerfCounters`
aggregates, per measurement run, the network-level traffic counters
(:class:`~repro.net.network.NetworkStats`), prober query counts, platform
counts and *real* wall-clock time — and derives the throughput figures
(queries/second, platforms/second) that the study reports, the JSON export
and the scaling benches surface.

The parallel engine contributes one :class:`ShardPerf` per shard; the
aggregate is their merge plus the orchestration wall time.  Note the
deliberate asymmetry: *measured results* are deterministic and seed-driven,
*performance counters* are not (they reflect the machine the run happened
on) — so perf data rides alongside measurements instead of inside them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional

from .network import NetworkStats


@dataclass
class ShardPerf:
    """One shard's performance sample (picklable across worker processes)."""

    shard_index: int
    platforms: int
    wall_seconds: float
    queries_sent: int
    stats: NetworkStats = field(default_factory=NetworkStats)
    #: Direct probes served by the engine's fused corridor vs the generic
    #: object-per-message path (zero for shards run outside the engine).
    fused_probes: int = 0
    fallback_probes: int = 0
    #: Wire-codec name-cache activity attributed to this shard.
    wire_cache_hits: int = 0
    wire_cache_misses: int = 0

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.queries_sent / self.wall_seconds


@dataclass
class PerfCounters:
    """Aggregated performance view of one measurement run."""

    wall_seconds: float = 0.0
    queries_sent: int = 0
    platforms: int = 0
    workers: int = 0
    stats: NetworkStats = field(default_factory=NetworkStats)
    shards: list[ShardPerf] = field(default_factory=list)
    fused_probes: int = 0
    fallback_probes: int = 0
    wire_cache_hits: int = 0
    wire_cache_misses: int = 0

    # -- accumulation -----------------------------------------------------

    def merge_stats(self, stats: NetworkStats) -> None:
        self.stats.messages_sent += stats.messages_sent
        self.stats.messages_delivered += stats.messages_delivered
        self.stats.requests_lost += stats.requests_lost
        self.stats.responses_lost += stats.responses_lost
        self.stats.timeouts += stats.timeouts
        self.stats.retransmissions += stats.retransmissions
        self.stats.faults_injected += stats.faults_injected

    def add_shard(self, shard: ShardPerf) -> None:
        self.shards.append(shard)
        self.queries_sent += shard.queries_sent
        self.platforms += shard.platforms
        self.fused_probes += shard.fused_probes
        self.fallback_probes += shard.fallback_probes
        self.wire_cache_hits += shard.wire_cache_hits
        self.wire_cache_misses += shard.wire_cache_misses
        self.merge_stats(shard.stats)

    # -- derived throughput ----------------------------------------------

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.queries_sent / self.wall_seconds

    @property
    def platforms_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.platforms / self.wall_seconds

    @property
    def busy_seconds(self) -> float:
        """Summed shard work time (> wall_seconds when workers overlap)."""
        return sum(shard.wall_seconds for shard in self.shards)

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "queries_sent": self.queries_sent,
            "platforms": self.platforms,
            "workers": self.workers,
            "queries_per_second": self.queries_per_second,
            "platforms_per_second": self.platforms_per_second,
            "engine": {
                "fused_probes": self.fused_probes,
                "fallback_probes": self.fallback_probes,
                "wire_cache_hits": self.wire_cache_hits,
                "wire_cache_misses": self.wire_cache_misses,
            },
            "network": {
                "messages_sent": self.stats.messages_sent,
                "messages_delivered": self.stats.messages_delivered,
                "requests_lost": self.stats.requests_lost,
                "responses_lost": self.stats.responses_lost,
                "timeouts": self.stats.timeouts,
                "retransmissions": self.stats.retransmissions,
                "faults_injected": self.stats.faults_injected,
            },
            "shards": [
                {
                    "shard_index": shard.shard_index,
                    "platforms": shard.platforms,
                    "wall_seconds": shard.wall_seconds,
                    "queries_sent": shard.queries_sent,
                    "queries_per_second": shard.queries_per_second,
                    "fused_probes": shard.fused_probes,
                    "fallback_probes": shard.fallback_probes,
                }
                for shard in self.shards
            ],
        }


def snapshot_stats(stats: NetworkStats) -> NetworkStats:
    """An independent copy of ``stats`` (for before/after deltas)."""
    return replace(stats)


def stats_delta(before: NetworkStats, after: NetworkStats) -> NetworkStats:
    return NetworkStats(
        messages_sent=after.messages_sent - before.messages_sent,
        messages_delivered=after.messages_delivered - before.messages_delivered,
        requests_lost=after.requests_lost - before.requests_lost,
        responses_lost=after.responses_lost - before.responses_lost,
        timeouts=after.timeouts - before.timeouts,
        retransmissions=after.retransmissions - before.retransmissions,
        faults_injected=after.faults_injected - before.faults_injected,
    )


@contextmanager
def track(world: Any, perf: Optional[PerfCounters] = None,
          platforms: int = 0) -> Iterator[PerfCounters]:
    """Capture wall time, prober queries and network-stat deltas of a block.

    ``world`` is any object with ``network.stats`` and (optionally) a
    ``prober.queries_sent`` counter — in practice a
    :class:`~repro.study.internet.SimulatedInternet`.  The single-world
    collectors use this to attach perf data to their results; the parallel
    engine builds its counters from shard samples instead.
    """
    counters = perf if perf is not None else PerfCounters()
    stats_before = snapshot_stats(world.network.stats)
    queries_before = getattr(getattr(world, "prober", None),
                             "queries_sent", 0)
    started = time.perf_counter()
    try:
        yield counters
    finally:
        counters.wall_seconds += time.perf_counter() - started
        counters.merge_stats(stats_delta(stats_before, world.network.stats))
        queries_after = getattr(getattr(world, "prober", None),
                                "queries_sent", 0)
        counters.queries_sent += queries_after - queries_before
        counters.platforms += platforms
