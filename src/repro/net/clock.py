"""Virtual time.

Every component that needs "now" takes a :class:`SimClock`.  Time is a
float number of seconds starting at zero; it only moves when something
advances it (the network does so as messages traverse links).  Nothing in
the library reads the wall clock, which keeps every experiment
deterministic and instant.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing virtual clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time, which must not be in the past."""
        if timestamp < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {timestamp}")
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
