"""The message-routing network.

:class:`Network` connects endpoints (probers, resolution platforms,
authoritative nameservers, SMTP servers...) by IP address and routes DNS
messages between them synchronously, while:

* advancing the shared :class:`~repro.net.clock.SimClock` by sampled link
  latencies, so response times measured by callers are meaningful (the
  timing side channel of paper §IV-B3 depends on this);
* dropping messages according to per-endpoint loss models, with the caller
  waiting out its retransmission timeout (carpet bombing, paper §V);
* keeping global counters used by the benches.

The model is intentionally synchronous: a handler may itself issue nested
:meth:`Network.query` calls (a resolution platform querying an authoritative
server), and all time spent upstream is reflected in the caller's measured
round-trip time — exactly the property the paper's latency classifier
exploits.

Loss semantics matter for fidelity: a lost *request* means the responder
never saw it, but a lost *response* means the responder did all its work
(including populating caches) and only the answer vanished.  Both cases are
modelled distinctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..dns.errors import NetworkUnreachable, QueryTimeout
from ..dns.message import DnsMessage
from ..dns.rrtype import RCode
from .clock import SimClock
from .faults import FaultDecision, FaultInjector, FaultKind
from .latency import LatencyModel, wan_path
from .loss import LossModel, NoLoss
from .rng import RngFactory


class Endpoint(Protocol):
    """Anything addressable on the network."""

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: "Network") -> Optional[DnsMessage]:
        """Process a message, optionally returning a response.

        Returning ``None`` models a silent drop (e.g. a firewalled host).
        """


class SinkEndpoint:
    """An addressable host that never answers DNS (clients, probers)."""

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: "Network") -> Optional[DnsMessage]:
        return None


@dataclass(frozen=True)
class LinkProfile:
    """The path characteristics between an endpoint and 'the Internet'."""

    latency: LatencyModel
    loss: LossModel

    @classmethod
    def default(cls) -> "LinkProfile":
        return cls(latency=wan_path(), loss=NoLoss())


@dataclass
class NetworkStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    requests_lost: int = 0
    responses_lost: int = 0
    timeouts: int = 0
    retransmissions: int = 0
    faults_injected: int = 0

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.requests_lost = 0
        self.responses_lost = 0
        self.timeouts = 0
        self.retransmissions = 0
        self.faults_injected = 0


@dataclass
class Transaction:
    """Outcome of one (possibly retransmitted) query exchange."""

    response: DnsMessage
    rtt: float
    attempts: int
    src_ip: str
    dst_ip: str


@dataclass
class _Registration:
    endpoint: Endpoint
    profile: LinkProfile


class Network:
    """Registry and router for simulated endpoints."""

    #: Default retransmission timeout, matching common stub defaults.
    DEFAULT_TIMEOUT = 2.0
    DEFAULT_RETRIES = 2  # total attempts = retries + 1

    def __init__(self, clock: Optional[SimClock] = None,
                 rng_factory: Optional[RngFactory] = None,
                 wire_fidelity: bool = False):
        self.clock = clock or SimClock()
        self.rng_factory = rng_factory or RngFactory(0)
        self._rng = self.rng_factory.stream("network")
        self._endpoints: dict[str, _Registration] = {}
        self.stats = NetworkStats()
        #: Optional deterministic fault injector (see :mod:`repro.net.faults`).
        #: ``None`` — the default — leaves every code path byte-identical to
        #: a fault-free network: no extra RNG draws, no extra branches taken.
        self.injector: Optional[FaultInjector] = None
        #: When True, every routed message is encoded to RFC 1035 wire
        #: format and decoded back before delivery — endpoints only ever see
        #: what genuinely survives the wire.  Costs CPU; great for testing.
        self.wire_fidelity = wire_fidelity

    def _through_wire(self, message: DnsMessage) -> DnsMessage:
        if not self.wire_fidelity:
            return message
        from ..dns.wire import decode_message, encode_message

        decoded = decode_message(encode_message(message))
        # Transport is connection metadata, not message content.
        decoded.via_tcp = message.via_tcp
        return decoded

    @staticmethod
    def _truncate(response: DnsMessage) -> DnsMessage:
        """A TC=1 copy with every section stripped (UDP truncation)."""
        from dataclasses import replace as _replace

        return _replace(response, truncated=True,
                        answers=[], authority=[], additional=[])

    def install_faults(self, injector: Optional[FaultInjector]) -> None:
        """Attach (or, with ``None``, detach) a fault injector."""
        self.injector = injector

    # -- registry ---------------------------------------------------------

    def register(self, ip: str, endpoint: Endpoint,
                 profile: Optional[LinkProfile] = None) -> None:
        self._endpoints[ip] = _Registration(endpoint, profile or LinkProfile.default())

    def register_many(self, ips: list[str], endpoint: Endpoint,
                      profile: Optional[LinkProfile] = None) -> None:
        """Register several addresses of one endpoint.

        The addresses share one (read-only) registration record — platform
        construction registers tens of thousands of egress addresses, so
        per-address records are measurable dead weight.
        """
        if not ips:
            return
        registration = _Registration(endpoint,
                                     profile or LinkProfile.default())
        endpoints = self._endpoints
        for ip in ips:
            endpoints[ip] = registration

    def unregister(self, ip: str) -> None:
        self._endpoints.pop(ip, None)

    def endpoint_at(self, ip: str) -> Optional[Endpoint]:
        registration = self._endpoints.get(ip)
        return registration.endpoint if registration else None

    def is_registered(self, ip: str) -> bool:
        return ip in self._endpoints

    def profile_of(self, ip: str) -> Optional[LinkProfile]:
        registration = self._endpoints.get(ip)
        return registration.profile if registration else None

    # -- traversal helpers ---------------------------------------------------

    def _traverse(self, src_profile: Optional[LinkProfile],
                  dst_profile: LinkProfile) -> tuple[bool, float]:
        """One message traversal: (lost?, latency)."""
        latency = dst_profile.latency.sample(self._rng)
        lost = dst_profile.loss.is_lost(self._rng)
        if src_profile is not None:
            latency += src_profile.latency.sample(self._rng)
            lost = lost or src_profile.loss.is_lost(self._rng)
        return lost, latency

    # -- the transaction primitive ---------------------------------------------

    def query(self, src_ip: str, dst_ip: str, message: DnsMessage,
              timeout: float = DEFAULT_TIMEOUT,
              retries: int = DEFAULT_RETRIES) -> Transaction:
        """Send ``message`` from ``src_ip`` to ``dst_ip`` and await a reply.

        Retransmits up to ``retries`` times after waiting ``timeout`` virtual
        seconds per lost exchange.  Raises :class:`QueryTimeout` when every
        attempt fails and :class:`NetworkUnreachable` when ``dst_ip`` is not
        registered.
        """
        registration = self._endpoints.get(dst_ip)
        if registration is None:
            raise NetworkUnreachable(f"no endpoint at {dst_ip}")
        src_profile = self.profile_of(src_ip)

        start = self.clock.now
        if message.via_tcp:
            # TCP costs one extra round trip (SYN/SYN-ACK) before the query.
            lost, handshake_out = self._traverse(src_profile,
                                                 registration.profile)
            lost2, handshake_back = self._traverse(src_profile,
                                                   registration.profile)
            self.clock.advance(handshake_out + handshake_back)
            if lost or lost2:
                # A failed handshake surfaces as a (retried) connect delay.
                self.clock.advance(timeout / 2)
        attempts = 0
        while attempts <= retries:
            attempts += 1
            if attempts > 1:
                self.stats.retransmissions += 1
            sent_at = self.clock.now
            self.stats.messages_sent += 1

            # Fault decisions are drawn once per attempt, before any
            # latency/loss sampling, from the injector's dedicated stream —
            # so attaching an injector never perturbs the network's own RNG.
            fault: Optional[FaultDecision] = None
            if self.injector is not None:
                fault = self.injector.decide(src_ip, dst_ip,
                                             via_tcp=message.via_tcp)
                if fault is not None:
                    self.stats.faults_injected += 1

            if fault is not None and fault.kind in (
                    FaultKind.DROP_REQUEST, FaultKind.RATE_LIMIT):
                # The request vanishes; the responder never saw it.
                self.stats.requests_lost += 1
                self.clock.advance_to(sent_at + timeout)
                continue
            if fault is not None and fault.kind is FaultKind.LATENCY_SPIKE:
                self.clock.advance(fault.extra_latency)

            lost, request_latency = self._traverse(src_profile, registration.profile)
            if lost:
                self.stats.requests_lost += 1
                self.clock.advance_to(sent_at + timeout)
                continue
            self.clock.advance(request_latency)

            if fault is not None and fault.kind in (
                    FaultKind.SERVFAIL, FaultKind.REFUSED):
                # An on-path middlebox answers in the endpoint's stead; the
                # real platform never sees the query (no caches populated).
                rcode = (RCode.SERVFAIL if fault.kind is FaultKind.SERVFAIL
                         else RCode.REFUSED)
                response: Optional[DnsMessage] = message.make_response(rcode)
            else:
                response = registration.endpoint.handle_message(
                    self._through_wire(message), src_ip, self)
            if response is None:
                # Silent drop by the endpoint itself.
                self.clock.advance_to(max(self.clock.now, sent_at + timeout))
                continue

            if fault is not None and fault.kind is FaultKind.TRUNCATE:
                # The endpoint did its work (caches populated) but the UDP
                # answer is truncated: TC=1, sections stripped, forcing the
                # caller's TCP retry.  Rules never match via_tcp attempts.
                response = self._truncate(response)

            if fault is not None and fault.kind is FaultKind.DROP_RESPONSE:
                # The responder did all its work; only the answer vanished.
                self.stats.responses_lost += 1
                self.clock.advance_to(max(self.clock.now, sent_at + timeout))
                continue

            lost, response_latency = self._traverse(src_profile, registration.profile)
            if lost:
                self.stats.responses_lost += 1
                self.clock.advance_to(max(self.clock.now, sent_at + timeout))
                continue
            self.clock.advance(response_latency)
            self.stats.messages_delivered += 1
            return Transaction(
                response=self._through_wire(response),
                rtt=self.clock.now - start,
                attempts=attempts,
                src_ip=src_ip,
                dst_ip=dst_ip,
            )

        self.stats.timeouts += 1
        raise QueryTimeout(
            f"query from {src_ip} to {dst_ip} lost after {attempts} attempts"
        )

    def send_oneway(self, src_ip: str, dst_ip: str, message: DnsMessage) -> bool:
        """Fire-and-forget delivery (no response expected).

        Returns whether the message arrived.
        """
        registration = self._endpoints.get(dst_ip)
        if registration is None:
            raise NetworkUnreachable(f"no endpoint at {dst_ip}")
        src_profile = self.profile_of(src_ip)
        self.stats.messages_sent += 1
        lost, latency = self._traverse(src_profile, registration.profile)
        if lost:
            self.stats.requests_lost += 1
            return False
        self.clock.advance(latency)
        registration.endpoint.handle_message(message, src_ip, self)
        self.stats.messages_delivered += 1
        return True
