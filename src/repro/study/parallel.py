"""Sharded, deterministic, parallel population measurement (the engine).

The paper's evaluation measures whole populations of resolution platforms;
:func:`~repro.study.measurement.measure_population` walks them one by one
in a single process against one shared :class:`SimulatedInternet`.  This
module scales that sweep out while keeping the seeded determinism promised
in DESIGN.md §6:

1. **Plan** — the population's :class:`PlatformSpec` list is partitioned
   into a fixed number of *shards* (striped round-robin, so the heavy tail
   of giant platforms spreads evenly).  The shard plan depends only on
   ``(specs, base_seed, n_shards)`` — never on the worker count.
2. **Seed** — each shard gets its own independent world, built from a seed
   derived as ``derive_seed(base_seed, "shard/<index>")`` via
   :mod:`repro.net.rng` — the toolkit's one seed-derivation scheme.
3. **Run** — shards execute concurrently on a
   :class:`concurrent.futures.ProcessPoolExecutor` (``workers=0`` runs
   them in-process, for debugging and as a dependency-free fallback).
4. **Merge** — per-platform rows return to the *original spec order*, so
   results are bit-identical regardless of worker count: the worker pool
   only changes scheduling, never what any shard computes.

Each shard also reports a :class:`~repro.net.perf.ShardPerf` sample; the
merged :class:`~repro.net.perf.PerfCounters` carries wall time, aggregated
network stats and queries/second into reports, JSON export and the scaling
benches.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Optional

from ..net.perf import PerfCounters, ShardPerf, snapshot_stats, stats_delta
from ..net.rng import derive_seed
from .internet import SimulatedInternet, WorldConfig
from .measurement import MeasurementBudget, PlatformMeasurement, measure_population
from .population import PlatformSpec

#: Default shard count.  Fixed (not derived from the worker count!) so the
#: same plan — and therefore the same measured rows — comes out whether the
#: shards run on 0, 1 or 16 workers.
DEFAULT_SHARDS = 8


def shard_seed(base_seed: int, shard_index: int) -> int:
    """The world seed of shard ``shard_index`` under ``base_seed``."""
    return derive_seed(base_seed, f"shard/{shard_index}")


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to measure its shard (picklable)."""

    shard_index: int
    seed: int
    positions: tuple[int, ...]          # indices into the original spec list
    specs: tuple[PlatformSpec, ...]
    config: WorldConfig                 # template; ``seed`` already applied
    budget: MeasurementBudget


@dataclass
class ShardOutcome:
    """One shard's measured rows plus its performance sample."""

    shard_index: int
    positions: tuple[int, ...]
    rows: list[PlatformMeasurement]
    perf: ShardPerf


@dataclass
class ParallelMeasurement:
    """Merged result of a sharded population sweep."""

    rows: list[PlatformMeasurement]
    perf: PerfCounters
    n_shards: int = 0
    base_seed: int = 0

    @property
    def shard_rows(self) -> int:
        return sum(shard.platforms for shard in self.perf.shards)


def plan_shards(specs: list[PlatformSpec], base_seed: int = 0,
                n_shards: Optional[int] = None,
                config: Optional[WorldConfig] = None,
                budget: Optional[MeasurementBudget] = None) -> list[ShardTask]:
    """Deterministic shard plan for ``specs`` under ``base_seed``.

    Striped assignment: spec ``i`` goes to shard ``i % n_shards``.  The
    heavy platforms of a population draw are scattered through the list,
    so striping balances shard work without inspecting the specs (which
    would couple the plan to ground truth the measurement must not use).
    """
    config = config or WorldConfig(seed=base_seed)
    budget = budget or MeasurementBudget()
    count = n_shards if n_shards is not None else DEFAULT_SHARDS
    count = max(1, min(count, len(specs)) if specs else 1)
    buckets: list[list[int]] = [[] for _ in range(count)]
    for position in range(len(specs)):
        buckets[position % count].append(position)
    tasks = []
    for index, bucket in enumerate(buckets):
        if not bucket:
            continue
        tasks.append(ShardTask(
            shard_index=index,
            seed=shard_seed(base_seed, index),
            positions=tuple(bucket),
            specs=tuple(specs[position] for position in bucket),
            config=replace(config, seed=shard_seed(base_seed, index)),
            budget=budget,
        ))
    return tasks


def run_shard(task: ShardTask) -> ShardOutcome:
    """Measure one shard in a fresh world (module-level: picklable)."""
    started = time.perf_counter()
    world = SimulatedInternet(task.config)
    stats_before = snapshot_stats(world.network.stats)
    rows = measure_population(world, list(task.specs), task.budget)
    wall = time.perf_counter() - started
    perf = ShardPerf(
        shard_index=task.shard_index,
        platforms=len(rows),
        wall_seconds=wall,
        # Methodology spend: direct probes plus the queries the indirect
        # techniques pushed through SMTP servers and browsers.
        queries_sent=world.prober.queries_sent + sum(
            row.queries_used for row in rows if row.technique != "direct"),
        stats=stats_delta(stats_before, world.network.stats),
    )
    return ShardOutcome(shard_index=task.shard_index,
                        positions=task.positions, rows=rows, perf=perf)


def run_parallel_measurement(specs: list[PlatformSpec],
                             base_seed: int = 0,
                             workers: int = 0,
                             n_shards: Optional[int] = None,
                             config: Optional[WorldConfig] = None,
                             budget: Optional[MeasurementBudget] = None
                             ) -> ParallelMeasurement:
    """Measure a population across sharded worlds; merge in spec order.

    ``workers=0`` executes the shard plan in-process (sequentially); any
    positive count runs shards on that many worker processes.  Both paths
    produce identical rows for a given ``(specs, base_seed, n_shards)``.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    tasks = plan_shards(specs, base_seed=base_seed, n_shards=n_shards,
                        config=config, budget=budget)
    started = time.perf_counter()
    if workers == 0 or len(tasks) <= 1:
        outcomes = [run_shard(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(run_shard, tasks))

    merged: list[Optional[PlatformMeasurement]] = [None] * len(specs)
    perf = PerfCounters(workers=workers)
    for outcome in sorted(outcomes, key=lambda o: o.shard_index):
        for position, row in zip(outcome.positions, outcome.rows):
            merged[position] = row
        perf.add_shard(outcome.perf)
    perf.wall_seconds = time.perf_counter() - started
    missing = [position for position, row in enumerate(merged) if row is None]
    if missing:
        raise RuntimeError(f"shard plan lost specs at positions {missing}")
    return ParallelMeasurement(
        rows=[row for row in merged if row is not None],
        perf=perf,
        n_shards=len(tasks),
        base_seed=base_seed,
    )


def measure_population_parallel(specs: list[PlatformSpec],
                                base_seed: int = 0,
                                workers: int = 0,
                                n_shards: Optional[int] = None,
                                config: Optional[WorldConfig] = None,
                                budget: Optional[MeasurementBudget] = None
                                ) -> list[PlatformMeasurement]:
    """Rows-only convenience wrapper over :func:`run_parallel_measurement`."""
    return run_parallel_measurement(
        specs, base_seed=base_seed, workers=workers, n_shards=n_shards,
        config=config, budget=budget).rows
