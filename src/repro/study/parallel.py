"""Sharded, deterministic, parallel population measurement (the engine).

The paper's evaluation measures whole populations of resolution platforms;
:func:`~repro.study.measurement.measure_population` walks them one by one
in a single process against one shared :class:`SimulatedInternet`.  This
module scales that sweep out while keeping the seeded determinism promised
in DESIGN.md §6:

1. **Plan** — the population's :class:`PlatformSpec` list is partitioned
   into a fixed number of *shards* (striped round-robin, so the heavy tail
   of giant platforms spreads evenly).  The shard plan depends only on
   ``(specs, base_seed, n_shards)`` — never on the worker count.
2. **Seed** — each shard gets its own independent world, built from a seed
   derived as ``derive_seed(base_seed, "shard/<index>")`` via
   :mod:`repro.net.rng` — the toolkit's one seed-derivation scheme.
3. **Run** — shards run through the pipelined
   :class:`~repro.study.engine.ShardLane` turn machinery: in-process on the
   interleaving :class:`~repro.study.engine.PipelinedEngine`, or on a
   :class:`concurrent.futures.ProcessPoolExecutor` when
   :func:`resolve_workers` decides a pool actually pays for itself
   (``workers="auto"`` sizes the pool from ``os.cpu_count()``; the handoff
   ships compact pre-serialized spec tuples, never live worlds).
4. **Merge** — per-platform rows return to the *original spec order*, so
   results are bit-identical regardless of worker count: the worker pool
   only changes scheduling, never what any shard computes.

Each shard also reports a :class:`~repro.net.perf.ShardPerf` sample; the
merged :class:`~repro.net.perf.PerfCounters` carries wall time, aggregated
network stats and queries/second into reports, JSON export and the scaling
benches.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import astuple, dataclass, replace
from typing import Iterator, Optional, Union

from ..net.perf import PerfCounters
from ..net.rng import derive_seed
from .internet import WorldConfig
from .measurement import MeasurementBudget, PlatformMeasurement
from .population import PlatformSpec

#: Default shard count.  Fixed (not derived from the worker count!) so the
#: same plan — and therefore the same measured rows — comes out whether the
#: shards run on 0, 1 or 16 workers.
DEFAULT_SHARDS = 8

#: Fewest platforms one pool worker must be handed before the pool's fixed
#: costs (process spawn, interpreter + package import, payload pickling)
#: can pay for themselves.  Measured on the scaling bench: worker startup
#: costs ~100 ms against ~1.5 ms of engine work per platform.
MIN_PLATFORMS_PER_WORKER = 64

#: ``workers=`` accepts an explicit count or ``"auto"``.
WorkerSpec = Union[int, str]


def shard_seed(base_seed: int, shard_index: int) -> int:
    """The world seed of shard ``shard_index`` under ``base_seed``."""
    return derive_seed(base_seed, f"shard/{shard_index}")


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to measure its shard (picklable)."""

    shard_index: int
    seed: int
    positions: tuple[int, ...]          # indices into the original spec list
    specs: tuple[PlatformSpec, ...]
    config: WorldConfig                 # template; ``seed`` already applied
    budget: MeasurementBudget


@dataclass
class ShardOutcome:
    """One shard's measured rows plus its performance sample."""

    shard_index: int
    positions: tuple[int, ...]
    rows: list[PlatformMeasurement]
    perf: ShardPerf


@dataclass
class ParallelMeasurement:
    """Merged result of a sharded population sweep."""

    rows: list[PlatformMeasurement]
    perf: PerfCounters
    n_shards: int = 0
    base_seed: int = 0

    @property
    def shard_rows(self) -> int:
        return sum(shard.platforms for shard in self.perf.shards)


def plan_shards(specs: list[PlatformSpec], base_seed: int = 0,
                n_shards: Optional[int] = None,
                config: Optional[WorldConfig] = None,
                budget: Optional[MeasurementBudget] = None) -> list[ShardTask]:
    """Deterministic shard plan for ``specs`` under ``base_seed``.

    Striped assignment: spec ``i`` goes to shard ``i % n_shards``.  The
    heavy platforms of a population draw are scattered through the list,
    so striping balances shard work without inspecting the specs (which
    would couple the plan to ground truth the measurement must not use).
    """
    config = config or WorldConfig(seed=base_seed)
    budget = budget or MeasurementBudget()
    count = n_shards if n_shards is not None else DEFAULT_SHARDS
    count = max(1, min(count, len(specs)) if specs else 1)
    buckets: list[list[int]] = [[] for _ in range(count)]
    for position in range(len(specs)):
        buckets[position % count].append(position)
    tasks = []
    for index, bucket in enumerate(buckets):
        if not bucket:
            continue
        tasks.append(ShardTask(
            shard_index=index,
            seed=shard_seed(base_seed, index),
            positions=tuple(bucket),
            specs=tuple(specs[position] for position in bucket),
            config=replace(config, seed=shard_seed(base_seed, index)),
            budget=budget,
        ))
    return tasks


def run_shard(task: ShardTask) -> ShardOutcome:
    """Measure one shard in a fresh world (module-level: picklable)."""
    from .engine import ShardLane     # lazy: the engine imports this module

    return ShardLane(task).run_to_completion()


def _encode_task(task: ShardTask) -> bytes:
    """The compact pool handoff: one pickle of primitive tuples.

    Specs, config and budget are flat dataclasses of primitives; shipping
    their field tuples instead of the dataclass instances keeps the
    payload a fraction of the naive pickle (no per-object class references
    to resolve) and guarantees nothing heavier — a world, a network — can
    ride along by accident.
    """
    return pickle.dumps(
        (task.shard_index, task.seed, task.positions,
         tuple(astuple(spec) for spec in task.specs),
         astuple(task.config), astuple(task.budget)),
        protocol=pickle.HIGHEST_PROTOCOL)


def _decode_task(payload: bytes) -> ShardTask:
    """Rebuild the :class:`ShardTask` from its compact pool handoff."""
    shard_index, seed, positions, spec_rows, config_row, budget_row = (
        pickle.loads(payload))
    return ShardTask(
        shard_index=shard_index,
        seed=seed,
        positions=tuple(positions),
        specs=tuple(PlatformSpec(*row) for row in spec_rows),
        config=WorldConfig(*config_row),
        budget=MeasurementBudget(*budget_row),
    )


def _run_shard_payload(payload: bytes) -> ShardOutcome:
    """Pool entry point: rebuild the :class:`ShardTask`, then run it."""
    return run_shard(_decode_task(payload))


def _run_shard_spill(handoff: tuple[bytes, str]) -> ShardOutcome:
    """Pool entry point for streaming: rows spill to disk as they finish.

    The worker never holds more than one lane-batch of rows: every finished
    row is pickled to the shard's spill file immediately, and the returned
    :class:`ShardOutcome` carries only the perf sample (``rows`` empty).
    The parent re-reads the spill files one row at a time in stripe order,
    so parent *and* worker memory stay bounded regardless of census size.
    """
    from .engine import ShardLane     # lazy: the engine imports this module

    payload, spill_path = handoff
    lane = ShardLane(_decode_task(payload))
    with open(spill_path, "wb") as sink:
        more = True
        while more:
            more = lane.step()
            for row in lane.drain_rows():
                pickle.dump(row, sink, protocol=pickle.HIGHEST_PROTOCOL)
    return lane.outcome()


def resolve_workers(workers: WorkerSpec, n_tasks: int, n_platforms: int,
                    force_pool: bool = False) -> int:
    """Actual pool size for a requested ``workers`` setting (0: in-process).

    ``"auto"`` starts from ``os.cpu_count()``; explicit counts are taken
    as upper bounds, never promises.  The heuristic sends work to a pool
    only when it can win: at least two effective workers (capped by CPUs
    and shard count) and at least :data:`MIN_PLATFORMS_PER_WORKER`
    platforms of work per worker to amortize the measured startup +
    handoff cost.  Everything else runs on the in-process pipelined
    engine, which beats the old sequential shard loop at every size.
    ``force_pool`` skips the heuristic (tests use it to exercise real
    worker pools regardless of the machine).
    """
    if workers == "auto":
        requested = os.cpu_count() or 1
    elif isinstance(workers, int):
        if workers < 0:
            raise ValueError("workers must be >= 0 or 'auto'")
        requested = workers
    else:
        raise ValueError(f"workers must be an int or 'auto': {workers!r}")
    if force_pool and requested > 0:
        return max(1, min(requested, n_tasks))
    effective = min(requested, os.cpu_count() or 1, n_tasks)
    if effective < 2:
        return 0
    if n_platforms < effective * MIN_PLATFORMS_PER_WORKER:
        effective = n_platforms // MIN_PLATFORMS_PER_WORKER
        if effective < 2:
            return 0
    return effective


def run_parallel_measurement(specs: list[PlatformSpec],
                             base_seed: int = 0,
                             workers: WorkerSpec = 0,
                             n_shards: Optional[int] = None,
                             config: Optional[WorldConfig] = None,
                             budget: Optional[MeasurementBudget] = None,
                             force_pool: bool = False
                             ) -> ParallelMeasurement:
    """Measure a population across sharded worlds; merge in spec order.

    ``workers`` is an explicit process count or ``"auto"``;
    :func:`resolve_workers` decides whether a real pool can beat the
    in-process pipelined engine and sizes it.  Every setting produces
    identical rows for a given ``(specs, base_seed, n_shards)`` — the
    recorded ``perf.workers`` is the resolved pool size actually used.
    """
    tasks = plan_shards(specs, base_seed=base_seed, n_shards=n_shards,
                        config=config, budget=budget)
    pool_size = resolve_workers(workers, len(tasks), len(specs),
                                force_pool=force_pool)
    started = time.perf_counter()
    if pool_size == 0 or len(tasks) <= 1:
        from .engine import PipelinedEngine   # lazy: engine imports us

        outcomes = PipelinedEngine(tasks).run()
    else:
        payloads = [_encode_task(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            outcomes = list(pool.map(_run_shard_payload, payloads))

    merged: list[Optional[PlatformMeasurement]] = [None] * len(specs)
    perf = PerfCounters(workers=pool_size)
    for outcome in sorted(outcomes, key=lambda o: o.shard_index):
        for position, row in zip(outcome.positions, outcome.rows):
            merged[position] = row
        perf.add_shard(outcome.perf)
    perf.wall_seconds = time.perf_counter() - started
    missing = [position for position, row in enumerate(merged) if row is None]
    if missing:
        raise RuntimeError(f"shard plan lost specs at positions {missing}")
    return ParallelMeasurement(
        rows=[row for row in merged if row is not None],
        perf=perf,
        n_shards=len(tasks),
        base_seed=base_seed,
    )


@dataclass
class StreamingMeasurement:
    """A streamed population sweep: iterate the rows, then read ``perf``.

    Iterating yields :class:`PlatformMeasurement` rows in original spec
    order without ever materializing the full list.  ``perf`` is populated
    once the iterator is exhausted (``None`` before that — the shards are
    still running).
    """

    n_shards: int
    base_seed: int
    total: int
    perf: Optional[PerfCounters] = None
    _iterator: Optional[Iterator[PlatformMeasurement]] = None

    def __iter__(self) -> Iterator[PlatformMeasurement]:
        if self._iterator is None:
            raise RuntimeError("stream not attached")
        return self._iterator


def _merge_spilled(tasks: list[ShardTask], paths: list[str]
                   ) -> Iterator[PlatformMeasurement]:
    """Reassemble spilled shard rows in global spec order, one at a time."""
    files = [open(path, "rb") for path in paths]
    try:
        readers = [pickle.Unpickler(handle) for handle in files]
        taken = [0] * len(tasks)
        total = sum(len(task.positions) for task in tasks)
        for frontier in range(total):
            for index, task in enumerate(tasks):
                if taken[index] < len(task.positions) and \
                        task.positions[taken[index]] == frontier:
                    try:
                        row = readers[index].load()
                    except EOFError as exc:
                        raise RuntimeError(
                            f"shard {task.shard_index} spill ended early "
                            f"at position {frontier}") from exc
                    taken[index] += 1
                    assert isinstance(row, PlatformMeasurement)
                    yield row
                    break
            else:
                raise RuntimeError(
                    f"shard plan lost spec at position {frontier}")
    finally:
        for handle in files:
            handle.close()


def stream_parallel_measurement(specs: list[PlatformSpec],
                                base_seed: int = 0,
                                workers: WorkerSpec = 0,
                                n_shards: Optional[int] = None,
                                config: Optional[WorldConfig] = None,
                                budget: Optional[MeasurementBudget] = None,
                                force_pool: bool = False,
                                spill_dir: Optional[str] = None
                                ) -> StreamingMeasurement:
    """Measure a population as a bounded-memory stream of rows.

    Same plan, same seeds, same rows as :func:`run_parallel_measurement` —
    the stream is row-for-row identical to the in-memory result at every
    worker count — but no layer ever holds the whole census:

    * in-process, :meth:`PipelinedEngine.stream` delivers rows at the
      stripe frontier with a constant per-lane buffer bound;
    * on a pool, workers spill finished rows to per-shard files
      (:func:`_run_shard_spill`) and the parent re-reads them one row at a
      time in stripe order (``spill_dir`` picks where; default the system
      temp dir).
    """
    tasks = plan_shards(specs, base_seed=base_seed, n_shards=n_shards,
                        config=config, budget=budget)
    pool_size = resolve_workers(workers, len(tasks), len(specs),
                                force_pool=force_pool)
    result = StreamingMeasurement(n_shards=len(tasks), base_seed=base_seed,
                                  total=len(specs))

    def _stream() -> Iterator[PlatformMeasurement]:
        started = time.perf_counter()
        perf = PerfCounters(workers=pool_size)
        if pool_size == 0 or len(tasks) <= 1:
            from .engine import PipelinedEngine   # lazy: engine imports us

            engine = PipelinedEngine(tasks)
            expected = 0
            for position, row in engine.stream():
                if position != expected:
                    raise RuntimeError(
                        f"stream out of order: got position {position}, "
                        f"expected {expected}")
                expected += 1
                yield row
            outcomes = engine.outcomes()
        else:
            spill = tempfile.TemporaryDirectory(prefix="census-spill-",
                                                dir=spill_dir)
            try:
                handoffs = [
                    (_encode_task(task),
                     os.path.join(spill.name,
                                  f"shard-{task.shard_index:05d}.rows"))
                    for task in tasks]
                with ProcessPoolExecutor(max_workers=pool_size) as pool:
                    outcomes = list(pool.map(_run_shard_spill, handoffs))
                yield from _merge_spilled(tasks,
                                          [path for _, path in handoffs])
            finally:
                spill.cleanup()
        for outcome in sorted(outcomes, key=lambda o: o.shard_index):
            perf.add_shard(outcome.perf)
        perf.wall_seconds = time.perf_counter() - started
        result.perf = perf

    result._iterator = _stream()
    return result


def measure_population_parallel(specs: list[PlatformSpec],
                                base_seed: int = 0,
                                workers: WorkerSpec = 0,
                                n_shards: Optional[int] = None,
                                config: Optional[WorldConfig] = None,
                                budget: Optional[MeasurementBudget] = None
                                ) -> list[PlatformMeasurement]:
    """Rows-only convenience wrapper over :func:`run_parallel_measurement`."""
    return run_parallel_measurement(
        specs, base_seed=base_seed, workers=workers, n_shards=n_shards,
        config=config, budget=budget).rows
