"""Measurement-accuracy analytics.

The paper validates its techniques qualitatively ("the number of queries ω
arriving at our nameserver is the number of caches"); with simulated ground
truth we can quantify accuracy per technique and per selector class:
exact-hit rate, mean absolute error, signed bias and the breakdown of the
misses.  The validation bench asserts these stay within bounds — the
regression alarm for anything that degrades the measurement pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .measurement import PlatformMeasurement


@dataclass
class AccuracyStats:
    """Accuracy of one measured quantity over a set of platforms."""

    count: int = 0
    exact: int = 0
    absolute_error_sum: float = 0.0
    signed_error_sum: float = 0.0
    undercounts: int = 0
    overcounts: int = 0

    def add(self, measured: int, truth: int) -> None:
        self.count += 1
        error = measured - truth
        if error == 0:
            self.exact += 1
        elif error < 0:
            self.undercounts += 1
        else:
            self.overcounts += 1
        self.absolute_error_sum += abs(error)
        self.signed_error_sum += error

    def merge(self, other: "AccuracyStats") -> None:
        """Fold another partial into this one.

        The error sums only ever accumulate integers, so float addition is
        exact and merge order cannot change any derived statistic.
        """
        self.count += other.count
        self.exact += other.exact
        self.absolute_error_sum += other.absolute_error_sum
        self.signed_error_sum += other.signed_error_sum
        self.undercounts += other.undercounts
        self.overcounts += other.overcounts

    @property
    def exact_rate(self) -> float:
        return self.exact / self.count if self.count else 0.0

    @property
    def mean_absolute_error(self) -> float:
        return self.absolute_error_sum / self.count if self.count else 0.0

    @property
    def bias(self) -> float:
        """Positive = systematic overcounting."""
        return self.signed_error_sum / self.count if self.count else 0.0


@dataclass
class AccuracyReport:
    cache_overall: AccuracyStats = field(default_factory=AccuracyStats)
    cache_by_selector_class: dict[str, AccuracyStats] = field(
        default_factory=dict)
    cache_by_technique: dict[str, AccuracyStats] = field(default_factory=dict)
    egress_overall: AccuracyStats = field(default_factory=AccuracyStats)

    def add_row(self, row: PlatformMeasurement) -> None:
        """Fold one measurement row into the running report."""
        self.cache_overall.add(row.measured_caches, row.true_caches)
        klass = selector_class_of(row.spec.selector_name)
        self.cache_by_selector_class.setdefault(
            klass, AccuracyStats()).add(row.measured_caches, row.true_caches)
        self.cache_by_technique.setdefault(
            row.technique, AccuracyStats()).add(row.measured_caches,
                                                row.true_caches)
        self.egress_overall.add(row.measured_egress, row.true_egress)

    def merge(self, other: "AccuracyReport") -> None:
        """Fold another partial report into this one (associative)."""
        self.cache_overall.merge(other.cache_overall)
        for label, stats in other.cache_by_selector_class.items():
            self.cache_by_selector_class.setdefault(
                label, AccuracyStats()).merge(stats)
        for label, stats in other.cache_by_technique.items():
            self.cache_by_technique.setdefault(
                label, AccuracyStats()).merge(stats)
        self.egress_overall.merge(other.egress_overall)

    def rows(self) -> list[tuple[str, int, str, str, str]]:
        """Render-ready (group, n, exact%, MAE, bias) rows."""
        out = [("caches / all", self.cache_overall.count,
                f"{self.cache_overall.exact_rate:.0%}",
                f"{self.cache_overall.mean_absolute_error:.2f}",
                f"{self.cache_overall.bias:+.2f}")]
        for label, stats in sorted(self.cache_by_selector_class.items()):
            out.append((f"caches / {label}", stats.count,
                        f"{stats.exact_rate:.0%}",
                        f"{stats.mean_absolute_error:.2f}",
                        f"{stats.bias:+.2f}"))
        for label, stats in sorted(self.cache_by_technique.items()):
            out.append((f"caches / via {label}", stats.count,
                        f"{stats.exact_rate:.0%}",
                        f"{stats.mean_absolute_error:.2f}",
                        f"{stats.bias:+.2f}"))
        out.append(("egress / all", self.egress_overall.count,
                    f"{self.egress_overall.exact_rate:.0%}",
                    f"{self.egress_overall.mean_absolute_error:.2f}",
                    f"{self.egress_overall.bias:+.2f}"))
        return out


def selector_class_of(selector_name: str) -> str:
    """Group generator selector names into the paper's taxonomy."""
    if selector_name in ("uniform-random", "sticky-random"):
        return "unpredictable"
    if selector_name in ("round-robin", "least-loaded"):
        return "traffic-dependent"
    return "keyed"


def accuracy_report(measurements: Iterable[PlatformMeasurement],
                    predicate: Optional[
                        Callable[[PlatformMeasurement], bool]] = None
                    ) -> AccuracyReport:
    """Aggregate accuracy over measurement rows."""
    report = AccuracyReport()
    for row in measurements:
        if predicate is not None and not predicate(row):
            continue
        report.add_row(row)
    return report
