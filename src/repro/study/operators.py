"""Network-operator distributions (paper Figure 2).

Figure 2 lists the top-ten network operators of each dataset with their
share of the population; everything else is "OTHER".  The tables below are
transcribed verbatim and drive the population generators' operator labels,
so the Fig. 2 bench regenerates the table from an actual draw.
"""

from __future__ import annotations

import random

#: Open-resolver population (column 1 of Figure 2), percent of networks.
OPEN_RESOLVER_OPERATORS: dict[str, float] = {
    "Aruba S.p.A.": 9.597,
    "Google Inc.": 6.59,
    "Korea Telecom": 4.095,
    "INTERNET CZ, a.s.": 3.199,
    "tw telecom holdings, inc.": 3.135,
    "LG DACOM Corporation": 2.687,
    "Data Communication Business Group": 2.175,
    "Getty Images": 1.727,
    "CNCGROUP IP network China169 Beijing": 1.536,
    "Level 3 Communications, Inc.": 1.536,
    "OTHER": 63.72,
}

#: Email-server (enterprise) population (column 2 of Figure 2).
EMAIL_SERVER_OPERATORS: dict[str, float] = {
    "Google Inc.": 24.211,
    "Yandex LLC": 10.526,
    "Amazon.com, Inc.": 4.2105,
    "Hangzhou Alibaba Advertising Co.,Ltd.": 4.2105,
    "Internet Initiative Japan Inc.": 4.2105,
    "Websense Hosted Security Network": 4.2105,
    "SAKURA Internet Inc.": 3.1579,
    "ADVANCEDHOSTERS LIMITED": 2.1053,
    "Dadeh Gostar Asr Novin P.J.S. Co.": 2.1053,
    "Limited liability company Mail.Ru": 2.1053,
    "OTHER": 38.947,
}

#: Ad-network (ISP) population (column 3 of Figure 2).
AD_NETWORK_OPERATORS: dict[str, float] = {
    "Comcast Cable Communications, Inc.": 15.02,
    "Time Warner Cable Internet LLC": 6.103,
    "Orange S.A.": 5.634,
    "Google Inc.": 4.695,
    "BT Public Internet Service": 4.225,
    "MCI Communications Services, Inc. Verizon": 3.286,
    "AT&T Services, Inc.": 2.817,
    "OVH SAS": 2.817,
    "Free SAS": 2.347,
    "Qwest Communications Company, LLC": 2.347,
    "OTHER": 50.7,
}

OPERATOR_TABLES: dict[str, dict[str, float]] = {
    "open-resolvers": OPEN_RESOLVER_OPERATORS,
    "email-servers": EMAIL_SERVER_OPERATORS,
    "ad-network": AD_NETWORK_OPERATORS,
}

#: Rough country mix per operator where it matters for packet loss — the
#: paper measured 11% loss in Iran and ~4% in China.
OPERATOR_COUNTRIES: dict[str, str] = {
    "CNCGROUP IP network China169 Beijing": "CN",
    "Hangzhou Alibaba Advertising Co.,Ltd.": "CN",
    "Dadeh Gostar Asr Novin P.J.S. Co.": "IR",
}


def draw_operator(population: str, rng: random.Random) -> str:
    """Sample one operator label for the given population."""
    table = OPERATOR_TABLES[population]
    labels = list(table.keys())
    weights = list(table.values())
    return rng.choices(labels, weights=weights, k=1)[0]


def country_of_operator(operator: str, rng: random.Random,
                        other_cn_fraction: float = 0.03,
                        other_ir_fraction: float = 0.01) -> str:
    """Country code for a drawn operator (for the per-country loss model).

    Named operators map directly; the anonymous remainder gets a small
    CN/IR share so every population exercises the lossy paths.
    """
    mapped = OPERATOR_COUNTRIES.get(operator)
    if mapped is not None:
        return mapped
    roll = rng.random()
    if roll < other_cn_fraction:
        return "CN"
    if roll < other_cn_fraction + other_ir_fraction:
        return "IR"
    return "default"


def top_n_table(labels: list[str], n: int = 10) -> list[tuple[str, float]]:
    """Aggregate drawn labels into a Figure-2-style top-n + OTHER table."""
    counts: dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    total = len(labels) or 1
    named = [(label, count) for label, count in counts.items() if label != "OTHER"]
    named.sort(key=lambda item: (-item[1], item[0]))
    top = named[:n]
    other = total - sum(count for _, count in top)
    table = [(label, 100.0 * count / total) for label, count in top]
    table.append(("OTHER", 100.0 * other / total))
    return table
