"""Synthetic network populations (paper §III, Figures 3–8).

The paper studied three populations: networks operating **open resolvers**
(1K of the Alexa top-10K), **enterprises** probed through their email
servers (top-1K), and **ISPs** reached through an ad network.  We cannot
probe the 2017 Internet, so each population is a generative model whose
*structural* distributions — ingress IPs, caches, egress IPs, selector
unpredictability, per-country loss — are fit to the shapes the paper
reports:

* open resolvers: ~70% one IP/one cache, 85% ≤5 egress IPs, a long thin
  tail of giants (>500 IPs, >30 caches — the top-right circles of Fig. 5);
* enterprises: the heaviest platforms — 50% with >20 egress IPs, 65% with
  1–4 caches, >80% multi-IP *and* multi-cache, <5% single/single;
* ISPs: in between — 50% with >11 egress IPs, ~60% with 1–3 caches, <10%
  single/single;
* all populations: >80% unpredictable cache selection (§IV-A).

The generators emit :class:`PlatformSpec` values; wiring them into live
platforms is :mod:`repro.study.internet`'s job.  The Figures 3–8 benches
then *measure* the resulting platforms with the CDE — the figures are
regenerated from measurements, not echoed from these configs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from .operators import country_of_operator, draw_operator

POPULATIONS = ("open-resolvers", "email-servers", "ad-network")

#: §IV-A: "more than 80% of the networks in our dataset support
#: unpredictable cache selection."
SELECTOR_MIX: list[tuple[str, float]] = [
    ("uniform-random", 0.70),
    ("sticky-random", 0.12),
    ("round-robin", 0.08),
    ("least-loaded", 0.04),
    ("qname-hash", 0.03),
    ("source-ip-hash", 0.03),
]


@dataclass(frozen=True)
class PlatformSpec:
    """Structural description of one generated platform."""

    population: str
    index: int
    operator: str
    country: str
    n_ingress: int
    n_caches: int
    n_egress: int
    selector_name: str
    #: When set, the platform is fronted by a :class:`TransparentForwarder`
    #: that relays client queries upstream with the client's own source
    #: address preserved (the ~26% "transparent forwarder" share of the
    #: open DNS speaker population).  Appended with a default so existing
    #: seeds and pickled specs stay byte-identical.
    transparent_forwarder: bool = False

    @property
    def name(self) -> str:
        return f"{self.population}-{self.index}"

    @property
    def is_single_single(self) -> bool:
        return self.n_ingress == 1 and self.n_caches == 1

    @property
    def selector_unpredictable(self) -> bool:
        return self.selector_name in ("uniform-random", "sticky-random")


@dataclass(frozen=True)
class _Category:
    """One mixture component: weight + inclusive ranges."""

    weight: float
    ingress: tuple[int, int]
    caches: tuple[int, int]
    egress: tuple[int, int]


#: Open resolvers: dominated by single-IP single-cache front caches whose
#: "main purpose is to reduce traffic to the nameservers" (§III-A), plus a
#: sparse tail of big public services (Google Public DNS, OpenDNS scale).
OPEN_RESOLVER_CATEGORIES = [
    _Category(0.68, (1, 1), (1, 1), (1, 1)),
    _Category(0.12, (1, 2), (1, 2), (1, 3)),
    _Category(0.10, (2, 8), (1, 3), (2, 5)),
    _Category(0.06, (8, 48), (2, 8), (3, 10)),
    _Category(0.025, (48, 400), (8, 24), (8, 30)),
    _Category(0.015, (500, 1000), (30, 48), (20, 60)),
]

#: Enterprises: heavyweight platforms; "50% of the platforms use more than
#: 20 IP addresses" and "65% use 1-4 caches per egress IP" (§V-A).
ENTERPRISE_CATEGORIES = [
    _Category(0.04, (1, 1), (1, 1), (1, 2)),
    _Category(0.11, (1, 2), (2, 4), (3, 20)),
    _Category(0.35, (2, 6), (1, 4), (6, 20)),
    _Category(0.35, (2, 8), (2, 6), (21, 50)),
    _Category(0.15, (4, 12), (4, 16), (51, 120)),
]

#: ISPs: "50% use more than 11 IP addresses", "60% ... 1-3 caches",
#: fewer than 10% single/single (§V-A).
ISP_CATEGORIES = [
    _Category(0.08, (1, 1), (1, 1), (1, 1)),
    _Category(0.12, (1, 2), (1, 2), (2, 6)),
    _Category(0.30, (2, 6), (1, 3), (5, 12)),
    _Category(0.35, (3, 10), (2, 5), (12, 30)),
    _Category(0.15, (5, 16), (4, 12), (25, 80)),
]

_CATEGORY_TABLES = {
    "open-resolvers": OPEN_RESOLVER_CATEGORIES,
    "email-servers": ENTERPRISE_CATEGORIES,
    "ad-network": ISP_CATEGORIES,
}


def draw_selector_name(rng: random.Random) -> str:
    names = [name for name, _ in SELECTOR_MIX]
    weights = [weight for _, weight in SELECTOR_MIX]
    return rng.choices(names, weights=weights, k=1)[0]


def _draw_category(categories: list[_Category], rng: random.Random) -> _Category:
    weights = [category.weight for category in categories]
    return rng.choices(categories, weights=weights, k=1)[0]


def _draw_range(bounds: tuple[int, int], rng: random.Random) -> int:
    low, high = bounds
    return rng.randint(low, high)


class PopulationGenerator:
    """Draws :class:`PlatformSpec` values for one of the three populations."""

    def __init__(self, population: str, seed: int = 0,
                 max_caches: Optional[int] = None,
                 max_ingress: Optional[int] = None,
                 max_egress: Optional[int] = None,
                 forwarder_share: float = 0.0):
        if population not in POPULATIONS:
            raise ValueError(f"unknown population {population!r}; "
                             f"expected one of {POPULATIONS}")
        if not 0.0 <= forwarder_share <= 1.0:
            raise ValueError(f"forwarder_share must lie in [0, 1], "
                             f"got {forwarder_share!r}")
        self.population = population
        self.rng = random.Random(seed)
        self._categories = _CATEGORY_TABLES[population]
        # Optional caps let fast test runs bound the tail without changing
        # the body of the distribution.
        self.max_caches = max_caches
        self.max_ingress = max_ingress
        self.max_egress = max_egress
        # Fraction of drawn platforms fronted by a transparent forwarder.
        # The default 0.0 consumes no RNG draws, so existing seeds keep
        # producing byte-identical spec sequences.
        self.forwarder_share = forwarder_share
        self._index = 0

    def draw(self) -> PlatformSpec:
        self._index += 1
        rng = self.rng
        category = _draw_category(self._categories, rng)
        operator = draw_operator(self.population, rng)
        country = country_of_operator(operator, rng)
        n_ingress = _draw_range(category.ingress, rng)
        n_caches = _draw_range(category.caches, rng)
        n_egress = _draw_range(category.egress, rng)
        if self.max_ingress is not None:
            n_ingress = min(n_ingress, self.max_ingress)
        if self.max_caches is not None:
            n_caches = min(n_caches, self.max_caches)
        if self.max_egress is not None:
            n_egress = min(n_egress, self.max_egress)
        transparent_forwarder = False
        if self.forwarder_share > 0.0:
            transparent_forwarder = rng.random() < self.forwarder_share
        return PlatformSpec(
            population=self.population,
            index=self._index,
            operator=operator,
            country=country,
            n_ingress=n_ingress,
            n_caches=n_caches,
            n_egress=n_egress,
            selector_name=draw_selector_name(rng),
            transparent_forwarder=transparent_forwarder,
        )

    def draw_many(self, count: int) -> list[PlatformSpec]:
        return [self.draw() for _ in range(count)]

    def iter_draws(self, count: int) -> Iterator[PlatformSpec]:
        """Stream ``count`` draws without materializing the list.

        Same RNG, same order — ``list(gen.iter_draws(n))`` equals
        ``gen.draw_many(n)`` from the same generator state.  The streaming
        census uses this so million-platform populations never exist as a
        list anywhere.
        """
        for _ in range(count):
            yield self.draw()


def generate_population(population: str, count: int, seed: int = 0,
                        **caps: Optional[int]) -> list[PlatformSpec]:
    """Convenience: ``count`` specs of one population."""
    return PopulationGenerator(population, seed=seed, **caps).draw_many(count)


def iter_population(population: str, count: int, seed: int = 0,
                    **caps: Optional[int]) -> Iterator[PlatformSpec]:
    """Streaming sibling of :func:`generate_population` (identical specs)."""
    return PopulationGenerator(population, seed=seed,
                               **caps).iter_draws(count)
