"""Statistics helpers for the study figures.

Figures 3 and 4 are CDFs; Figures 5, 7 and 8 are bubble plots of (IP count,
cache count) with bubble area = number of networks; Figure 6 is a category
breakdown (single/single vs. the multi combinations).  These helpers turn
per-platform measurement rows into those presentations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.resilient import ResilienceSummary

if TYPE_CHECKING:
    from .measurement import PlatformMeasurement


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """(x, P[value ≤ x]) at each distinct observed value."""
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    points: list[tuple[float, float]] = []
    seen = 0
    previous = None
    for value in ordered:
        seen += 1
        if value != previous:
            points.append((value, seen / total))
            previous = value
        else:
            points[-1] = (value, seen / total)
    return points


def fraction_at_most(values: Sequence[float], limit: float) -> float:
    if not values:
        return 0.0
    return sum(1 for value in values if value <= limit) / len(values)


def fraction_above(values: Sequence[float], limit: float) -> float:
    return 1.0 - fraction_at_most(values, limit)


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def cdf_at(values: Sequence[float], xs: Iterable[float]) -> list[tuple[float, float]]:
    """The CDF sampled at chosen x positions (for fixed-grid tables)."""
    return [(x, fraction_at_most(values, x)) for x in xs]


# ---------------------------------------------------------------------------
# bubble plots (Figures 5, 7, 8)
# ---------------------------------------------------------------------------

#: Log-ish bin edges for IP counts, matching the figures' axis span.
DEFAULT_BINS = (1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000)


def snap_to_bin(value: int, bins: Sequence[int] = DEFAULT_BINS) -> int:
    """The largest bin edge ≤ value (values below the first edge snap up)."""
    chosen = bins[0]
    for edge in bins:
        if value >= edge:
            chosen = edge
        else:
            break
    return chosen


def bubble_counts(pairs: Iterable[tuple[int, int]],
                  x_bins: Sequence[int] = DEFAULT_BINS,
                  y_bins: Sequence[int] = DEFAULT_BINS
                  ) -> dict[tuple[int, int], int]:
    """Bin (x, y) pairs; the count per cell is the figure's bubble size."""
    counter: Counter[tuple[int, int]] = Counter()
    for x, y in pairs:
        counter[(snap_to_bin(x, x_bins), snap_to_bin(y, y_bins))] += 1
    return dict(counter)


# ---------------------------------------------------------------------------
# ratio categories (Figure 6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RatioBreakdown:
    """Fractions of platforms per IP-count/cache-count category."""

    single_ip_single_cache: float
    single_ip_multi_cache: float
    multi_ip_single_cache: float
    multi_ip_multi_cache: float

    def as_dict(self) -> dict[str, float]:
        return {
            "1 IP / 1 cache": self.single_ip_single_cache,
            "1 IP / >1 cache": self.single_ip_multi_cache,
            ">1 IP / 1 cache": self.multi_ip_single_cache,
            ">1 IP / >1 cache": self.multi_ip_multi_cache,
        }


# ---------------------------------------------------------------------------
# degradation summary (resilience layer)
# ---------------------------------------------------------------------------


def resilience_summary(rows: Iterable["PlatformMeasurement"]
                       ) -> ResilienceSummary:
    """Aggregate per-row degradation fields into one summary.

    All-zero on default-profile runs; reports and exports only surface it
    when something actually degraded.
    """
    summary = ResilienceSummary()
    exposure: Counter[str] = Counter()
    for row in rows:
        summary.platforms += 1
        if row.degraded:
            summary.degraded_platforms += 1
        summary.attempts += row.attempts
        summary.retries += row.retries
        summary.gave_up += row.gave_up
        exposure.update(row.fault_exposure)
    summary.fault_exposure = {kind: exposure[kind]
                              for kind in sorted(exposure)}
    return summary


def ratio_breakdown(pairs: Iterable[tuple[int, int]]) -> RatioBreakdown:
    """Figure 6's categories from (ip_count, cache_count) pairs."""
    pairs = list(pairs)
    total = len(pairs) or 1
    ss = sum(1 for ips, caches in pairs if ips <= 1 and caches <= 1)
    sm = sum(1 for ips, caches in pairs if ips <= 1 and caches > 1)
    ms = sum(1 for ips, caches in pairs if ips > 1 and caches <= 1)
    mm = sum(1 for ips, caches in pairs if ips > 1 and caches > 1)
    return RatioBreakdown(ss / total, sm / total, ms / total, mm / total)


# ---------------------------------------------------------------------------
# online accumulators (streaming census)
# ---------------------------------------------------------------------------
#
# Each accumulator folds rows one at a time and merges with a peer, and every
# internal sum is integer-valued, so one-at-a-time, chunked and all-at-once
# folds produce *identical* results (float addition of integers is exact well
# past any census size we run).  The batch helpers above stay as the
# reference implementations the equivalence tests compare against.


class CdfAccumulator:
    """Online distribution summary matching the batch CDF helpers.

    Holds one counter bucket per *distinct* value — bounded by the value
    range (cache/egress counts), not by the number of rows folded in.
    """

    def __init__(self) -> None:
        self._counts: Counter[float] = Counter()
        self._total = 0

    def add(self, value: float) -> None:
        self._counts[value] += 1
        self._total += 1

    def merge(self, other: "CdfAccumulator") -> None:
        self._counts.update(other._counts)
        self._total += other._total

    def __len__(self) -> int:
        return self._total

    def values(self) -> list[float]:
        """The folded multiset, sorted — feedable to any batch helper."""
        out: list[float] = []
        for value in sorted(self._counts):
            out.extend([value] * self._counts[value])
        return out

    def points(self) -> list[tuple[float, float]]:
        """Identical to :func:`cdf_points` over the folded values."""
        points: list[tuple[float, float]] = []
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            points.append((value, seen / self._total))
        return points

    def fraction_at_most(self, limit: float) -> float:
        if not self._total:
            return 0.0
        return sum(count for value, count in self._counts.items()
                   if value <= limit) / self._total

    def fraction_above(self, limit: float) -> float:
        return 1.0 - self.fraction_at_most(limit)

    def cdf_at(self, xs: Iterable[float]) -> list[tuple[float, float]]:
        return [(x, self.fraction_at_most(x)) for x in xs]

    def median(self) -> float:
        if not self._total:
            raise ValueError("median of empty accumulator")
        ordered = sorted(self._counts)
        mid = self._total // 2
        if self._total % 2:
            return float(self._value_at(ordered, mid))
        return (self._value_at(ordered, mid - 1)
                + self._value_at(ordered, mid)) / 2.0

    def _value_at(self, ordered: list[float], index: int) -> float:
        seen = 0
        for value in ordered:
            seen += self._counts[value]
            if index < seen:
                return value
        raise IndexError(index)


class BubbleAccumulator:
    """Online (x, y) cell counter matching :func:`bubble_counts`."""

    def __init__(self, x_bins: Sequence[int] = DEFAULT_BINS,
                 y_bins: Sequence[int] = DEFAULT_BINS) -> None:
        self.x_bins = tuple(x_bins)
        self.y_bins = tuple(y_bins)
        self._counter: Counter[tuple[int, int]] = Counter()

    def add(self, x: int, y: int) -> None:
        self._counter[(snap_to_bin(x, self.x_bins),
                       snap_to_bin(y, self.y_bins))] += 1

    def merge(self, other: "BubbleAccumulator") -> None:
        if (self.x_bins, self.y_bins) != (other.x_bins, other.y_bins):
            raise ValueError("cannot merge accumulators with different bins")
        self._counter.update(other._counter)

    def counts(self) -> dict[tuple[int, int], int]:
        return dict(self._counter)


class RatioAccumulator:
    """Online Figure 6 category counter matching :func:`ratio_breakdown`."""

    def __init__(self) -> None:
        self.total = 0
        self.single_single = 0
        self.single_multi = 0
        self.multi_single = 0
        self.multi_multi = 0

    def add(self, ips: int, caches: int) -> None:
        self.total += 1
        if ips <= 1:
            if caches <= 1:
                self.single_single += 1
            else:
                self.single_multi += 1
        elif caches <= 1:
            self.multi_single += 1
        else:
            self.multi_multi += 1

    def merge(self, other: "RatioAccumulator") -> None:
        self.total += other.total
        self.single_single += other.single_single
        self.single_multi += other.single_multi
        self.multi_single += other.multi_single
        self.multi_multi += other.multi_multi

    def breakdown(self) -> RatioBreakdown:
        total = self.total or 1
        return RatioBreakdown(self.single_single / total,
                              self.single_multi / total,
                              self.multi_single / total,
                              self.multi_multi / total)


class ResilienceAccumulator:
    """Online degradation summary matching :func:`resilience_summary`."""

    def __init__(self) -> None:
        self.platforms = 0
        self.degraded_platforms = 0
        self.attempts = 0
        self.retries = 0
        self.gave_up = 0
        self._exposure: Counter[str] = Counter()

    def add(self, row: "PlatformMeasurement") -> None:
        self.platforms += 1
        if row.degraded:
            self.degraded_platforms += 1
        self.attempts += row.attempts
        self.retries += row.retries
        self.gave_up += row.gave_up
        self._exposure.update(row.fault_exposure)

    def merge(self, other: "ResilienceAccumulator") -> None:
        self.platforms += other.platforms
        self.degraded_platforms += other.degraded_platforms
        self.attempts += other.attempts
        self.retries += other.retries
        self.gave_up += other.gave_up
        self._exposure.update(other._exposure)

    def summary(self) -> ResilienceSummary:
        return ResilienceSummary(
            platforms=self.platforms,
            degraded_platforms=self.degraded_platforms,
            attempts=self.attempts,
            retries=self.retries,
            gave_up=self.gave_up,
            fault_exposure={kind: self._exposure[kind]
                            for kind in sorted(self._exposure)},
        )
