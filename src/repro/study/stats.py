"""Statistics helpers for the study figures.

Figures 3 and 4 are CDFs; Figures 5, 7 and 8 are bubble plots of (IP count,
cache count) with bubble area = number of networks; Figure 6 is a category
breakdown (single/single vs. the multi combinations).  These helpers turn
per-platform measurement rows into those presentations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.resilient import ResilienceSummary

if TYPE_CHECKING:
    from .measurement import PlatformMeasurement


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """(x, P[value ≤ x]) at each distinct observed value."""
    if not values:
        return []
    ordered = sorted(values)
    total = len(ordered)
    points: list[tuple[float, float]] = []
    seen = 0
    previous = None
    for value in ordered:
        seen += 1
        if value != previous:
            points.append((value, seen / total))
            previous = value
        else:
            points[-1] = (value, seen / total)
    return points


def fraction_at_most(values: Sequence[float], limit: float) -> float:
    if not values:
        return 0.0
    return sum(1 for value in values if value <= limit) / len(values)


def fraction_above(values: Sequence[float], limit: float) -> float:
    return 1.0 - fraction_at_most(values, limit)


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def cdf_at(values: Sequence[float], xs: Iterable[float]) -> list[tuple[float, float]]:
    """The CDF sampled at chosen x positions (for fixed-grid tables)."""
    return [(x, fraction_at_most(values, x)) for x in xs]


# ---------------------------------------------------------------------------
# bubble plots (Figures 5, 7, 8)
# ---------------------------------------------------------------------------

#: Log-ish bin edges for IP counts, matching the figures' axis span.
DEFAULT_BINS = (1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000)


def snap_to_bin(value: int, bins: Sequence[int] = DEFAULT_BINS) -> int:
    """The largest bin edge ≤ value (values below the first edge snap up)."""
    chosen = bins[0]
    for edge in bins:
        if value >= edge:
            chosen = edge
        else:
            break
    return chosen


def bubble_counts(pairs: Iterable[tuple[int, int]],
                  x_bins: Sequence[int] = DEFAULT_BINS,
                  y_bins: Sequence[int] = DEFAULT_BINS
                  ) -> dict[tuple[int, int], int]:
    """Bin (x, y) pairs; the count per cell is the figure's bubble size."""
    counter: Counter[tuple[int, int]] = Counter()
    for x, y in pairs:
        counter[(snap_to_bin(x, x_bins), snap_to_bin(y, y_bins))] += 1
    return dict(counter)


# ---------------------------------------------------------------------------
# ratio categories (Figure 6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RatioBreakdown:
    """Fractions of platforms per IP-count/cache-count category."""

    single_ip_single_cache: float
    single_ip_multi_cache: float
    multi_ip_single_cache: float
    multi_ip_multi_cache: float

    def as_dict(self) -> dict[str, float]:
        return {
            "1 IP / 1 cache": self.single_ip_single_cache,
            "1 IP / >1 cache": self.single_ip_multi_cache,
            ">1 IP / 1 cache": self.multi_ip_single_cache,
            ">1 IP / >1 cache": self.multi_ip_multi_cache,
        }


# ---------------------------------------------------------------------------
# degradation summary (resilience layer)
# ---------------------------------------------------------------------------


def resilience_summary(rows: Iterable["PlatformMeasurement"]
                       ) -> ResilienceSummary:
    """Aggregate per-row degradation fields into one summary.

    All-zero on default-profile runs; reports and exports only surface it
    when something actually degraded.
    """
    summary = ResilienceSummary()
    exposure: Counter[str] = Counter()
    for row in rows:
        summary.platforms += 1
        if row.degraded:
            summary.degraded_platforms += 1
        summary.attempts += row.attempts
        summary.retries += row.retries
        summary.gave_up += row.gave_up
        exposure.update(row.fault_exposure)
    summary.fault_exposure = {kind: exposure[kind]
                              for kind in sorted(exposure)}
    return summary


def ratio_breakdown(pairs: Iterable[tuple[int, int]]) -> RatioBreakdown:
    """Figure 6's categories from (ip_count, cache_count) pairs."""
    pairs = list(pairs)
    total = len(pairs) or 1
    ss = sum(1 for ips, caches in pairs if ips <= 1 and caches <= 1)
    sm = sum(1 for ips, caches in pairs if ips <= 1 and caches > 1)
    ms = sum(1 for ips, caches in pairs if ips > 1 and caches <= 1)
    mm = sum(1 for ips, caches in pairs if ips > 1 and caches > 1)
    return RatioBreakdown(ss / total, sm / total, ms / total, mm / total)
