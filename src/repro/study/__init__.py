"""Internet-study harness: populations, the simulated Internet, figures."""

from .accuracy import (
    AccuracyReport,
    AccuracyStats,
    accuracy_report,
    selector_class_of,
)
from .collection import (
    AdCollectionResult,
    ScanResult,
    SmtpCollectionResult,
    TABLE1_PAPER_ROWS,
    classify_mechanism,
    run_ad_collection,
    run_smtp_collection,
    scan_for_open_resolvers,
)
from .export import (
    edns_survey_to_dict,
    measurement_to_dict,
    measurements_to_dict,
    monitor_to_dict,
    perf_to_dict,
    report_to_dict,
    table1_to_dict,
    to_json,
)
from .figures import (
    FigureData,
    measurements_csv,
    regenerate_all,
    table1_csv,
)
from .internet import (
    HostedPlatform,
    SimulatedInternet,
    SinkEndpoint,
    WorldConfig,
    build_world,
)
from .measurement import (
    MeasurementBudget,
    PlatformMeasurement,
    measure_direct,
    measure_population,
    measure_via_browser,
    measure_via_smtp,
)
from .operators import (
    AD_NETWORK_OPERATORS,
    EMAIL_SERVER_OPERATORS,
    OPEN_RESOLVER_OPERATORS,
    OPERATOR_TABLES,
    country_of_operator,
    draw_operator,
    top_n_table,
)
from .engine import BATCH_PROBES, PipelinedEngine, ShardLane
from .parallel import (
    DEFAULT_SHARDS,
    MIN_PLATFORMS_PER_WORKER,
    ParallelMeasurement,
    ShardOutcome,
    ShardTask,
    measure_population_parallel,
    plan_shards,
    resolve_workers,
    run_parallel_measurement,
    run_shard,
    shard_seed,
)
from .population import (
    POPULATIONS,
    SELECTOR_MIX,
    PlatformSpec,
    PopulationGenerator,
    draw_selector_name,
    generate_population,
)
from .report import (
    format_bubbles,
    format_cdf_series,
    format_fractions,
    format_perf,
    format_ratio_breakdown,
    format_resilience,
    format_table,
)
from .trends import EvolutionModel, TrendRound, TrendStudy
from .stats import (
    RatioBreakdown,
    bubble_counts,
    cdf_at,
    cdf_points,
    fraction_above,
    fraction_at_most,
    median,
    ratio_breakdown,
    resilience_summary,
    snap_to_bin,
)

__all__ = [
    "AD_NETWORK_OPERATORS", "AccuracyReport", "AccuracyStats",
    "AdCollectionResult", "DEFAULT_SHARDS", "EMAIL_SERVER_OPERATORS",
    "accuracy_report", "selector_class_of",
    "HostedPlatform", "MeasurementBudget", "OPEN_RESOLVER_OPERATORS",
    "OPERATOR_TABLES", "POPULATIONS", "ParallelMeasurement",
    "PlatformMeasurement", "PlatformSpec",
    "PopulationGenerator", "RatioBreakdown", "SELECTOR_MIX", "ScanResult",
    "ShardOutcome", "ShardTask",
    "SimulatedInternet", "SinkEndpoint", "SmtpCollectionResult",
    "TABLE1_PAPER_ROWS", "WorldConfig", "build_world", "bubble_counts",
    "cdf_at", "cdf_points", "classify_mechanism", "country_of_operator",
    "draw_operator", "draw_selector_name", "format_bubbles",
    "format_cdf_series", "format_fractions", "format_perf",
    "format_ratio_breakdown", "format_resilience",
    "format_table", "fraction_above", "fraction_at_most",
    "resilience_summary",
    "FigureData", "edns_survey_to_dict", "generate_population",
    "measure_direct", "measurements_csv", "regenerate_all", "table1_csv",
    "measure_population", "measure_population_parallel",
    "measure_via_browser", "measure_via_smtp",
    "measurement_to_dict", "measurements_to_dict", "median",
    "monitor_to_dict", "perf_to_dict", "plan_shards", "ratio_breakdown",
    "report_to_dict",
    "BATCH_PROBES", "MIN_PLATFORMS_PER_WORKER", "PipelinedEngine",
    "ShardLane", "resolve_workers",
    "run_ad_collection", "run_parallel_measurement", "run_shard",
    "run_smtp_collection", "scan_for_open_resolvers", "shard_seed",
    "snap_to_bin", "table1_to_dict", "to_json", "top_n_table",
    "EvolutionModel", "TrendRound", "TrendStudy",
]
