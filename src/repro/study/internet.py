"""The simulated Internet: wiring platforms, clients and the CDE together.

:class:`SimulatedInternet` (built via :func:`build_world`) owns the shared
clock/network, the root/TLD hierarchy, the CDE infrastructure and a direct
prober, and provides factories for resolution platforms (from explicit
parameters or generated :class:`~repro.study.population.PlatformSpec`s),
browser clients and enterprise SMTP servers.  It is the top-level fixture
used by the examples, the tests and every bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    from ..client.proxy import WebProxy
    from ..resolver.multipool import MultiPoolPlatform

from ..client.browser import Browser
from ..client.smtp import SmtpAuthPolicy, SmtpServer
from ..core.infrastructure import CdeInfrastructure
from ..core.prober import BrowserProber, DirectProber, SmtpProber
from ..core.resilient import DegradationTally, retry_policy
from ..core.session import CdeStudy, PlatformReport, StudyParameters
from ..dns.message import DnsMessage
from ..net.address import AddressAllocator
from ..net.faults import FaultInjector, fault_plan
from ..net.latency import wan_path
from ..net.loss import NoLoss, country_loss
from ..net.network import LinkProfile, Network, SinkEndpoint
from ..net.rng import RngFactory
from ..resolver.forwarder import TransparentForwarder
from ..resolver.platform import PlatformConfig, ResolutionPlatform
from ..resolver.selection import make_selector
from ..resolver.stub import StubResolver
from ..server.hierarchy import RootHierarchy
from .population import PlatformSpec


# SinkEndpoint moved to repro.net.network (the layer that owns endpoint
# semantics); re-imported above so ``repro.study.SinkEndpoint`` keeps
# working for existing callers.

@dataclass
class HostedPlatform:
    """A platform together with the spec it was built from (ground truth)."""

    spec: PlatformSpec
    platform: ResolutionPlatform
    #: Present when the spec asked for a transparent-forwarder front; the
    #: forwarder's listen address is the identity a scanner would see.
    forwarder: Optional[TransparentForwarder] = None


@dataclass
class WorldConfig:
    seed: int = 0
    base_domain: str = "cache.example"
    #: One-way latency medians (seconds) per role.
    prober_latency: float = 0.004
    platform_latency: float = 0.012
    server_latency: float = 0.008
    client_latency: float = 0.006
    #: Latency spread (lognormal sigma).
    jitter_sigma: float = 0.20
    #: Apply the paper's per-country loss models to platforms.
    lossy_platforms: bool = True
    #: Route every message through the RFC 1035 wire codec (slower;
    #: validates that all traffic survives real encoding).
    wire_fidelity: bool = False
    #: Keep the CDE nameserver query logs indexed (sub-linear counting).
    #: ``False`` restores the seed's full-scan log — only the scaling
    #: benches use it, to measure what the indexes buy.
    indexed_logs: bool = True
    #: Ring-buffer window (entries) for the CDE query logs; ``None`` keeps
    #: every entry forever (seed behaviour).  Streaming censuses set a
    #: window comfortably above one platform's probe horizon so the logs
    #: stop growing with census size without changing any measured row
    #: (probe names are unique and log reads carry ``since`` cutoffs).
    log_window: Optional[int] = None
    #: Named fault profile (see :data:`repro.net.faults.FAULT_PROFILES`).
    #: ``"none"`` attaches no injector at all — every code path and RNG
    #: draw stays byte-identical to a fault-free world.  Carried as a
    #: *name* (pure data) so shard workers rebuild identical plans.
    fault_profile: str = "none"
    #: Named retry profile (see
    #: :data:`repro.core.resilient.RETRY_PROFILES`).  ``"none"`` keeps the
    #: probers on their seed single-attempt behaviour.
    retry_profile: str = "none"


@dataclass
class _Counters:
    platforms: int = 0
    clients: int = 0
    smtp: int = 0


class SimulatedInternet:
    """Everything needed to run the paper's study, in one object."""

    def __init__(self, config: Optional[WorldConfig] = None):
        self.config = config or WorldConfig()
        self.rng_factory = RngFactory(self.config.seed)
        self.network = Network(rng_factory=self.rng_factory,
                               wire_fidelity=self.config.wire_fidelity)
        self.clock = self.network.clock

        infra_profile = LinkProfile(
            latency=wan_path(self.config.server_latency,
                             self.config.jitter_sigma),
            loss=NoLoss(),
        )
        self.hierarchy = RootHierarchy(self.network, profile=infra_profile)
        self.cde = CdeInfrastructure(self.network, self.hierarchy,
                                     base_domain=self.config.base_domain,
                                     profile=infra_profile,
                                     indexed_logs=self.config.indexed_logs,
                                     log_window=self.config.log_window)

        prober_profile = LinkProfile(
            latency=wan_path(self.config.prober_latency,
                             self.config.jitter_sigma),
            loss=NoLoss(),
        )
        # Resilience layer: both knobs resolve from *names* so WorldConfig
        # stays pure data (shard workers rebuild identical plans/policies).
        plan = fault_plan(self.config.fault_profile)
        self.injector: Optional[FaultInjector] = None
        if not plan.is_noop:
            self.injector = FaultInjector(
                plan, self.clock, self.rng_factory.stream("faults"))
            self.network.install_faults(self.injector)
        self.retry = retry_policy(self.config.retry_profile)
        self.tally = DegradationTally()

        self.prober_ip = "192.0.2.10"
        self.network.register(self.prober_ip, SinkEndpoint(), prober_profile)
        self.prober = DirectProber(self.prober_ip, self.network,
                                   rng=self.rng_factory.stream("prober"),
                                   policy=self.retry,
                                   retry_rng=self.rng_factory.stream("retry"),
                                   tally=self.tally)

        self.platform_allocator = AddressAllocator("10.0.0.0/8")
        self.client_allocator = AddressAllocator("172.16.0.0/12")
        self.platforms: list[HostedPlatform] = []
        self._counters = _Counters()

    # -- platform factories ------------------------------------------------

    def add_platform(self, n_ingress: int = 1, n_caches: int = 1,
                     n_egress: int = 1, selector: str = "uniform-random",
                     country: str = "default", operator: str = "unknown",
                     population: str = "open-resolvers",
                     min_ttl: Optional[int] = None,
                     max_ttl: Optional[int] = None) -> HostedPlatform:
        """Build and attach one platform from explicit parameters."""
        self._counters.platforms += 1
        spec = PlatformSpec(
            population=population, index=self._counters.platforms,
            operator=operator, country=country, n_ingress=n_ingress,
            n_caches=n_caches, n_egress=n_egress, selector_name=selector,
        )
        return self.add_platform_from_spec(spec, min_ttl=min_ttl,
                                           max_ttl=max_ttl)

    def add_platform_from_spec(self, spec: PlatformSpec,
                               min_ttl: Optional[int] = None,
                               max_ttl: Optional[int] = None
                               ) -> HostedPlatform:
        wants_forwarder = getattr(spec, "transparent_forwarder", False)
        pool = self.platform_allocator.allocate_pool(
            spec.n_ingress + spec.n_egress + (1 if wants_forwarder else 0))
        ingress_ips = pool.allocate_block(spec.n_ingress)
        egress_ips = pool.allocate_block(spec.n_egress)
        platform_rng = self.rng_factory.stream(f"platform/{spec.name}")
        config = PlatformConfig(
            name=spec.name,
            ingress_ips=ingress_ips,
            egress_ips=egress_ips,
            n_caches=spec.n_caches,
            cache_selector=make_selector(
                spec.selector_name,
                random.Random(platform_rng.randrange(1 << 30))),
            country=spec.country,
            operator=spec.operator,
            min_ttl=min_ttl,
            max_ttl=max_ttl,
        )
        platform = ResolutionPlatform(config, self.network,
                                      self.hierarchy.root_hints,
                                      rng=platform_rng)
        loss = (country_loss(spec.country) if self.config.lossy_platforms
                else NoLoss())
        platform.attach(LinkProfile(
            latency=wan_path(self.config.platform_latency,
                             self.config.jitter_sigma),
            loss=loss,
        ))
        forwarder = None
        if wants_forwarder:
            # The forwarder gets its own address in front of the platform's
            # first ingress; queries it relays keep the client's source, so
            # the platform (and its logs) never see the forwarder itself.
            forwarder = TransparentForwarder(
                name=f"tfwd/{spec.name}",
                listen_ip=pool.allocate(),
                upstream_ip=ingress_ips[0],
                network=self.network,
            )
            forwarder.attach(LinkProfile(
                latency=wan_path(self.config.platform_latency,
                                 self.config.jitter_sigma),
                loss=loss,
            ))
        hosted = HostedPlatform(spec=spec, platform=platform,
                                forwarder=forwarder)
        self.platforms.append(hosted)
        return hosted

    def add_multipool_platform(self, pool_shapes: list[tuple[int, int, int]],
                               name: Optional[str] = None,
                               selector: str = "uniform-random",
                               ) -> "MultiPoolPlatform":
        """A platform whose ingress IPs are partitioned into cache pools.

        ``pool_shapes`` is a list of (n_ingress, n_caches, n_egress) per
        pool.  Used to exercise the §IV-B1b ingress→cluster mapping against
        non-trivial ground truth.
        """
        from ..resolver.multipool import MultiPoolConfig, MultiPoolPlatform, PoolSpec

        self._counters.platforms += 1
        platform_name = name or f"multipool-{self._counters.platforms}"
        # Shares the "platform/<name>" label family with
        # add_platform_from_spec deliberately: both are platform builders,
        # a world never constructs the same platform name twice (the
        # shared _counters.platforms counter guarantees distinct default
        # names), and renaming the label would shift every committed
        # expectation derived from existing seeds.
        rng = self.rng_factory.stream(f"platform/{platform_name}")  # cdelint: disable=CDE009
        pools = []
        for index, (n_ingress, n_caches, n_egress) in enumerate(pool_shapes):
            pool = self.platform_allocator.allocate_pool(n_ingress + n_egress)
            pools.append(PoolSpec(
                name=f"pool-{index}",
                ingress_ips=pool.allocate_block(n_ingress),
                egress_ips=pool.allocate_block(n_egress),
                n_caches=n_caches,
                cache_selector=make_selector(
                    selector, random.Random(rng.randrange(1 << 30))),
            ))
        platform = MultiPoolPlatform(
            MultiPoolConfig(name=platform_name, pools=pools),
            self.network, self.hierarchy.root_hints, rng=rng)
        platform.attach(LinkProfile(
            latency=wan_path(self.config.platform_latency,
                             self.config.jitter_sigma),
            loss=NoLoss(),
        ))
        return platform

    # -- client factories ---------------------------------------------------

    def _client_profile(self) -> LinkProfile:
        return LinkProfile(
            latency=wan_path(self.config.client_latency,
                             self.config.jitter_sigma),
            loss=NoLoss(),
        )

    def make_stub(self, hosted: HostedPlatform,
                  resolvers: Optional[list[str]] = None) -> StubResolver:
        self._counters.clients += 1
        host_ip = self.client_allocator.allocate_pool(1).allocate()
        self.network.register(host_ip, SinkEndpoint(), self._client_profile())
        ips = resolvers or hosted.platform.ingress_ips[:2]
        return StubResolver(
            host_ip, ips, self.network,
            rng=self.rng_factory.stream(f"stub/{host_ip}"),
            retry_policy=self.retry,
            retry_rng=self.rng_factory.stream(f"retry/stub/{host_ip}"),
            tally=self.tally,
        )

    def make_browser(self, hosted: HostedPlatform,
                     proxy: Optional["WebProxy"] = None) -> Browser:
        stub = self.make_stub(hosted)
        return Browser(stub.host_ip, stub, self.network, proxy=proxy)

    def make_proxy(self, hosted: HostedPlatform,
                   name: str = "proxy") -> "WebProxy":
        """A shared web proxy resolving through ``hosted``'s platform."""
        from ..client.proxy import WebProxy

        return WebProxy(name, self.make_stub(hosted))

    def make_browser_prober(self, hosted: HostedPlatform) -> BrowserProber:
        return BrowserProber(self.make_browser(hosted))

    def make_smtp_server(self, domain: str, hosted: HostedPlatform,
                         policy: Optional[SmtpAuthPolicy] = None) -> SmtpServer:
        self._counters.smtp += 1
        stub = self.make_stub(hosted)
        return SmtpServer(
            domain=domain, host_ip=stub.host_ip, stub=stub,
            policy=policy or SmtpAuthPolicy.draw(
                self.rng_factory.stream(f"smtp-policy/{domain}")),
        )

    def make_smtp_prober(self, domain: str, hosted: HostedPlatform,
                         policy: Optional[SmtpAuthPolicy] = None) -> SmtpProber:
        return SmtpProber(self.make_smtp_server(domain, hosted, policy))

    # -- resilience bookkeeping -------------------------------------------

    def fault_exposure_snapshot(self) -> dict[str, int]:
        """Current per-kind injected-fault counters ({} with no injector)."""
        return self.injector.exposure.snapshot() if self.injector else {}

    def fault_exposure_delta(self, before: dict[str, int]) -> dict[str, int]:
        """Faults injected since ``before`` (sorted keys, zeros dropped)."""
        return self.injector.exposure.delta(before) if self.injector else {}

    # -- studies ----------------------------------------------------------------

    def study(self, hosted: HostedPlatform,
              parameters: Optional[StudyParameters] = None,
              max_ingress_tested: int = 4) -> PlatformReport:
        """Run the full direct-access methodology against one platform."""
        study = CdeStudy(self.cde, self.prober, parameters)
        ingress_ips = hosted.platform.ingress_ips[:max_ingress_tested]
        return study.run(ingress_ips)


def build_world(seed: int = 0, **overrides: Any) -> SimulatedInternet:
    """The canonical entry point used by examples, tests and benches."""
    return SimulatedInternet(WorldConfig(seed=seed, **overrides))
