"""Streaming bounded-memory census driver (ROADMAP open item 2).

The paper's census enumerates caches across hundreds of thousands of open
resolvers; reaching that scale in the reproduction means no layer may hold
the whole census.  :func:`run_census` wires the pieces end to end:

* **rows** come from the sharded measurement engine — materialized
  (:func:`~repro.study.parallel.run_parallel_measurement`) or streamed
  (:func:`~repro.study.parallel.stream_parallel_measurement`), or from the
  synthetic :func:`simulate_census_rows` source the scale bench uses;
* **aggregates** fold online into :class:`CensusAggregates` — accuracy,
  CDFs, bubbles, ratio categories, resilience, operator mix and the
  coupon-collector budget ledger — every sum integer-valued, so the fold
  is associative and the streamed aggregates equal the in-memory ones;
* **export** goes through :class:`~repro.study.export.CensusWriter`:
  chunked canonical NDJSON with a manifest, resumable from the last
  complete chunk (the deterministic engine replays the stream and the
  writer skips rows already durable).

Determinism contract: for a given ``(specs, base_seed, n_shards)`` the
NDJSON bytes and the aggregate report are identical across ``stream`` on
or off, any worker count, and an interrupt + ``resume`` — the streaming
equivalence test suite pins all three.
"""

from __future__ import annotations

import random
import resource
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

from ..core.analysis import CouponBudgetLedger, queries_for_confidence
from ..net.perf import PerfCounters
from ..net.rng import derive_seed
from .accuracy import AccuracyReport
from .export import DEFAULT_CHUNK_ROWS, CensusWriter
from .internet import WorldConfig
from .measurement import MeasurementBudget, PlatformMeasurement
from .parallel import (
    WorkerSpec,
    run_parallel_measurement,
    stream_parallel_measurement,
)
from .population import PlatformSpec, PopulationGenerator, iter_population
from .stats import (
    BubbleAccumulator,
    CdfAccumulator,
    RatioAccumulator,
    ResilienceAccumulator,
)


class MemoryBudgetExceeded(RuntimeError):
    """Raised when a census run crosses its ``--max-rss-mb`` guard."""


def peak_rss_mb() -> float:
    """This process's peak RSS in MiB (Linux ``ru_maxrss`` is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@dataclass
class CensusAggregates:
    """Every census-level aggregate, folded one row at a time.

    All members merge associatively on integer-valued sums, so chunked or
    sharded partial folds combine into exactly the aggregates a single
    in-memory pass would produce.
    """

    accuracy: AccuracyReport = field(default_factory=AccuracyReport)
    cache_cdf: CdfAccumulator = field(default_factory=CdfAccumulator)
    egress_cdf: CdfAccumulator = field(default_factory=CdfAccumulator)
    bubbles: BubbleAccumulator = field(default_factory=BubbleAccumulator)
    ratios: RatioAccumulator = field(default_factory=RatioAccumulator)
    resilience: ResilienceAccumulator = field(
        default_factory=ResilienceAccumulator)
    ledger: CouponBudgetLedger = field(default_factory=CouponBudgetLedger)
    operators: Counter[str] = field(default_factory=Counter)
    rows: int = 0

    def add_row(self, row: PlatformMeasurement,
                confidence: float = 0.99) -> None:
        self.rows += 1
        self.accuracy.add_row(row)
        self.cache_cdf.add(row.measured_caches)
        self.egress_cdf.add(row.measured_egress)
        self.bubbles.add(row.spec.n_ingress, row.measured_caches)
        self.ratios.add(row.spec.n_ingress, row.measured_caches)
        self.resilience.add(row)
        self.ledger.charge(row.true_caches, confidence)
        self.ledger.spend(row.queries_used)
        self.operators[row.spec.operator] += 1

    def merge(self, other: "CensusAggregates") -> None:
        self.rows += other.rows
        self.accuracy.merge(other.accuracy)
        self.cache_cdf.merge(other.cache_cdf)
        self.egress_cdf.merge(other.egress_cdf)
        self.bubbles.merge(other.bubbles)
        self.ratios.merge(other.ratios)
        self.resilience.merge(other.resilience)
        self.ledger.merge(other.ledger)
        self.operators.update(other.operators)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe aggregate report (canonical, order-independent)."""
        summary = self.resilience.summary()
        return {
            "rows": self.rows,
            "accuracy": [list(row) for row in self.accuracy.rows()],
            "cache_cdf": self.cache_cdf.points(),
            "egress_cdf": self.egress_cdf.points(),
            "bubbles": {f"{x}x{y}": count for (x, y), count
                        in sorted(self.bubbles.counts().items())},
            "ratios": self.ratios.breakdown().as_dict(),
            "resilience": {
                "platforms": summary.platforms,
                "degraded_platforms": summary.degraded_platforms,
                "attempts": summary.attempts,
                "retries": summary.retries,
                "gave_up": summary.gave_up,
                "fault_exposure": summary.fault_exposure,
            },
            "budget_ledger": self.ledger.to_dict(),
            "operators": {name: self.operators[name]
                          for name in sorted(self.operators)},
        }


def iter_specs(population: str, count: int, seed: int = 0,
               **caps: Optional[int]) -> Iterator[PlatformSpec]:
    """Stream ``count`` specs without materializing the population list."""
    return iter_population(population, count, seed=seed, **caps)


#: Simulated-measurement noise model: fraction of platforms whose census
#: undercounts by one cache (coupon-collector misses concentrate there).
_SIM_MISS_RATE = 0.04


def simulate_census_rows(count: int, seed: int = 0,
                         population: str = "open-resolvers",
                         **caps: Optional[int]
                         ) -> Iterator[PlatformMeasurement]:
    """Deterministic synthetic measurement rows at census scale.

    Drives the *real* population generator for specs and a seeded noise
    stream for measurement outcomes, but builds no worlds — so millions of
    rows stream through the fold/export pipeline in seconds.  This is the
    scale bench's row source; the shape (occasional one-cache undercount,
    coupon-collector-sized query spend) mirrors what the engine produces.
    """
    generator = PopulationGenerator(population, seed=seed, **caps)
    noise = random.Random(derive_seed(seed, "census-sim"))
    for _ in range(count):
        spec = generator.draw()
        missed = noise.random() < _SIM_MISS_RATE and spec.n_caches > 1
        measured = spec.n_caches - 1 if missed else spec.n_caches
        budget = queries_for_confidence(max(spec.n_caches, 2), 0.99)
        queries = noise.randint(max(1, budget // 2), budget)
        egress_seen = min(spec.n_egress,
                          max(1, noise.randint(spec.n_egress - 1,
                                               spec.n_egress)))
        yield PlatformMeasurement(
            spec=spec,
            measured_caches=measured,
            measured_egress=egress_seen,
            queries_used=queries,
            technique="direct",
        )


@dataclass
class CensusResult:
    """What one census run produced."""

    aggregates: CensusAggregates
    rows: Optional[list[PlatformMeasurement]] = None   # in-memory mode only
    perf: Optional[PerfCounters] = None
    out_dir: Optional[str] = None
    written_rows: int = 0
    skipped_rows: int = 0          # resume: rows already durable on disk
    peak_rss_mb: float = 0.0


def _fold_and_write(rows: Iterable[PlatformMeasurement],
                    aggregates: CensusAggregates,
                    confidence: float,
                    writer: Optional[CensusWriter],
                    keep: Optional[list[PlatformMeasurement]],
                    max_rss_mb: Optional[float]) -> int:
    """The one census inner loop: fold, export, guard memory."""
    written = 0
    chunks_seen = len(writer.chunks) if writer is not None else 0
    for row in rows:
        aggregates.add_row(row, confidence)
        if keep is not None:
            keep.append(row)
        if writer is not None:
            if writer.write_row(row):
                written += 1
            if len(writer.chunks) != chunks_seen:
                chunks_seen = len(writer.chunks)
                aggregates.ledger.close_chunk()
                if max_rss_mb is not None and peak_rss_mb() > max_rss_mb:
                    raise MemoryBudgetExceeded(
                        f"peak RSS {peak_rss_mb():.1f} MiB exceeds the "
                        f"--max-rss-mb budget of {max_rss_mb:.1f} MiB "
                        f"(checkpoint kept: resume with --resume)")
    return written


def run_census(specs: Optional[list[PlatformSpec]] = None,
               population: str = "open-resolvers",
               count: int = 0,
               seed: int = 0,
               workers: WorkerSpec = 0,
               n_shards: Optional[int] = None,
               config: Optional[WorldConfig] = None,
               budget: Optional[MeasurementBudget] = None,
               stream: bool = False,
               simulate: bool = False,
               out_dir: Optional[str] = None,
               chunk_size: int = DEFAULT_CHUNK_ROWS,
               resume: bool = False,
               max_rss_mb: Optional[float] = None,
               force_pool: bool = False,
               spec_caps: Optional[dict[str, Optional[int]]] = None
               ) -> CensusResult:
    """Run one census end to end; see the module docstring for the modes.

    ``specs`` wins over ``(population, count)``.  ``simulate=True`` swaps
    the engine for :func:`simulate_census_rows` (no worlds — scale runs).
    ``resume=True`` requires ``out_dir`` with an interrupted manifest; the
    deterministic stream is replayed and already-durable rows are skipped
    by the writer, reproducing the uninterrupted bytes exactly.
    """
    caps = dict(spec_caps or {})
    budget = budget or MeasurementBudget()
    confidence = budget.confidence
    if resume and out_dir is None:
        raise ValueError("resume requires out_dir")

    writer: Optional[CensusWriter] = None
    if out_dir is not None:
        meta = {"seed": seed, "population": population,
                "count": count if specs is None else len(specs),
                "simulate": simulate}
        writer = CensusWriter(out_dir, chunk_size=chunk_size, meta=meta,
                              resume=resume)

    aggregates = CensusAggregates()
    keep: Optional[list[PlatformMeasurement]] = None
    perf: Optional[PerfCounters] = None
    try:
        if simulate:
            rows_iter: Iterable[PlatformMeasurement] = simulate_census_rows(
                count, seed=seed, population=population, **caps)
            written = _fold_and_write(rows_iter, aggregates, confidence,
                                      writer, keep, max_rss_mb)
        elif stream:
            if specs is None:
                specs = list(iter_specs(population, count, seed=seed, **caps))
            streamed = stream_parallel_measurement(
                specs, base_seed=seed, workers=workers, n_shards=n_shards,
                config=config, budget=budget, force_pool=force_pool)
            written = _fold_and_write(streamed, aggregates, confidence,
                                      writer, keep, max_rss_mb)
            perf = streamed.perf
        else:
            if specs is None:
                specs = list(iter_specs(population, count, seed=seed, **caps))
            measured = run_parallel_measurement(
                specs, base_seed=seed, workers=workers, n_shards=n_shards,
                config=config, budget=budget, force_pool=force_pool)
            keep = []
            written = _fold_and_write(measured.rows, aggregates, confidence,
                                      writer, keep, max_rss_mb)
            perf = measured.perf
        if writer is not None:
            writer.close()
            # The close may have flushed one final short chunk; keep the
            # ledger's chunk count mirroring the durable chunk files.
            while aggregates.ledger.chunks < len(writer.chunks):
                aggregates.ledger.close_chunk()
    except MemoryBudgetExceeded:
        # The writer's durable chunks stay behind as the resume checkpoint.
        raise
    return CensusResult(
        aggregates=aggregates,
        rows=keep,
        perf=perf,
        out_dir=out_dir,
        written_rows=written,
        skipped_rows=writer.skipped if writer is not None else 0,
        peak_rss_mb=peak_rss_mb(),
    )
