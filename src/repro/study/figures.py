"""Programmatic builders for every figure/table of the paper's evaluation.

Each builder runs the relevant collection + measurement pipeline and
returns plain data (series, pairs, breakdowns) ready for rendering by
:mod:`repro.study.report`, for CSV export, or for custom plotting.  The
benches and the CLI both sit on top of these, so the regeneration logic
lives in exactly one place.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Optional

from ..net.perf import PerfCounters, track
from .collection import SmtpCollectionResult, run_smtp_collection
from .internet import SimulatedInternet
from .measurement import MeasurementBudget, PlatformMeasurement, measure_population
from .operators import OPERATOR_TABLES, draw_operator, top_n_table
from .parallel import run_parallel_measurement
from .population import POPULATIONS, generate_population
from .stats import RatioBreakdown, bubble_counts, ratio_breakdown

DEFAULT_SIZES = {"open-resolvers": 40, "email-servers": 25, "ad-network": 25}
DEFAULT_CAPS = {
    "open-resolvers": dict(max_ingress=200, max_caches=16, max_egress=30),
    "email-servers": dict(max_ingress=10, max_caches=10, max_egress=40),
    "ad-network": dict(max_ingress=12, max_caches=8, max_egress=30),
}


@dataclass
class FigureData:
    """All regenerated evaluation artifacts from one measurement run."""

    measurements: dict[str, list[PlatformMeasurement]]
    table1: Optional[SmtpCollectionResult] = None
    operator_tables: dict[str, list[tuple[str, float]]] = field(
        default_factory=dict)
    #: Performance counters of the measurement phase (wall time, traffic,
    #: queries/sec) — populated by :func:`regenerate_all`.
    perf: Optional[PerfCounters] = None

    # -- figure series ---------------------------------------------------

    def egress_series(self) -> dict[str, list[int]]:
        """Figure 3 input: measured egress counts per population."""
        return {population: [row.measured_egress for row in rows]
                for population, rows in self.measurements.items()}

    def cache_series(self) -> dict[str, list[int]]:
        """Figure 4 input: measured cache counts per population."""
        return {population: [row.measured_caches for row in rows]
                for population, rows in self.measurements.items()}

    def bubbles(self, population: str) -> dict[tuple[int, int], int]:
        """Figures 5/7/8 input for one population."""
        rows = self.measurements[population]
        return bubble_counts([row.ip_cache_pair for row in rows])

    def ratio_breakdowns(self) -> dict[str, RatioBreakdown]:
        """Figure 6 input."""
        return {population: ratio_breakdown([row.ip_cache_pair
                                             for row in rows])
                for population, rows in self.measurements.items()}


def regenerate_all(world: SimulatedInternet,
                   sizes: Optional[dict[str, int]] = None,
                   caps: Optional[dict[str, dict]] = None,
                   budget: Optional[MeasurementBudget] = None,
                   table1_domains: int = 150,
                   operator_draws: int = 1000,
                   seed: int = 0,
                   workers: Optional[int] = None) -> FigureData:
    """One pass that regenerates every table and figure's data.

    ``workers=None`` measures every population sequentially inside the
    shared ``world`` (the original single-process pipeline).  Any integer
    — including 0, the in-process debug mode — routes the measurement
    phase through the sharded parallel engine instead: each population is
    split across independently seeded shard worlds (seed derivation
    ``derive_seed(seed, "shard/<i>")``), so the rows are deterministic for
    a given seed and identical for every worker count.
    """
    sizes = sizes or DEFAULT_SIZES
    caps = caps or DEFAULT_CAPS
    budget = budget or MeasurementBudget()

    measurements = {}
    perf = PerfCounters(workers=workers or 0)
    for population in POPULATIONS:
        specs = generate_population(population, sizes[population], seed=seed,
                                    **caps.get(population, {}))
        if workers is None:
            with track(world, perf=perf, platforms=len(specs)):
                rows = measure_population(world, specs, budget)
            measurements[population] = rows
            # The shared prober only sees direct queries; indirect
            # techniques spend theirs through SMTP/browser clients.
            perf.queries_sent += sum(
                row.queries_used for row in rows
                if row.technique != "direct")
        else:
            result = run_parallel_measurement(
                specs, base_seed=seed, workers=workers,
                config=world.config, budget=budget)
            measurements[population] = result.rows
            perf.wall_seconds += result.perf.wall_seconds
            for shard in result.perf.shards:
                perf.add_shard(shard)

    table1_specs = generate_population(
        "email-servers", table1_domains, seed=seed + 1,
        max_ingress=3, max_caches=3, max_egress=5)
    table1 = run_smtp_collection(world, table1_specs)

    operator_tables = {}
    for population in OPERATOR_TABLES:
        rng = world.rng_factory.stream(f"figures/operators/{population}")
        labels = [draw_operator(population, rng)
                  for _ in range(operator_draws)]
        operator_tables[population] = top_n_table(labels, n=10)

    return FigureData(measurements=measurements, table1=table1,
                      operator_tables=operator_tables, perf=perf)


# ---------------------------------------------------------------------------
# CSV export
# ---------------------------------------------------------------------------


def measurements_csv(data: FigureData) -> str:
    """All per-platform rows as CSV (one row per measured platform)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["population", "name", "operator", "country", "selector",
                     "n_ingress", "true_caches", "measured_caches",
                     "true_egress", "measured_egress", "technique",
                     "queries_used"])
    for population, rows in data.measurements.items():
        for row in rows:
            writer.writerow([
                population, row.spec.name, row.spec.operator,
                row.spec.country, row.spec.selector_name, row.spec.n_ingress,
                row.true_caches, row.measured_caches, row.true_egress,
                row.measured_egress, row.technique, row.queries_used,
            ])
    return buffer.getvalue()


def table1_csv(data: FigureData) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["query_type", "fraction"])
    if data.table1 is not None:
        for label, fraction in data.table1.table1_rows():
            writer.writerow([label, f"{fraction:.4f}"])
    return buffer.getvalue()
