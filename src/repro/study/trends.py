"""Adoption-trend studies over virtual time (paper §I-B).

"Our tools enable repetitive studies of the caches over periods of time.
This allows to perform analyses of adoption of new mechanisms, trends,
growth of the DNS resolution platforms and more."

:class:`TrendStudy` drives exactly that: a population of platforms evolves
between rounds (operators enable EDNS, grow their cache pools, add egress
capacity), and each round the CDE re-measures everything.  The output is a
time series of measured adoption/size curves next to the hidden ground
truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.analysis import queries_for_confidence
from ..core.edns_survey import survey_edns_adoption
from ..core.enumeration import enumerate_direct
from .internet import HostedPlatform, SimulatedInternet


@dataclass
class TrendRound:
    timestamp: float
    measured_edns_adoption: float
    true_edns_adoption: float
    measured_mean_caches: float
    true_mean_caches: float


@dataclass
class TrendAccumulator:
    """Online per-round fold: integer sums, so fold order never matters."""

    platforms: int = 0
    measured_caches_sum: int = 0
    true_caches_sum: int = 0
    edns_enabled: int = 0

    def add_platform(self, measured_caches: int, true_caches: int,
                     edns: bool) -> None:
        self.platforms += 1
        self.measured_caches_sum += measured_caches
        self.true_caches_sum += true_caches
        if edns:
            self.edns_enabled += 1

    def merge(self, other: "TrendAccumulator") -> None:
        self.platforms += other.platforms
        self.measured_caches_sum += other.measured_caches_sum
        self.true_caches_sum += other.true_caches_sum
        self.edns_enabled += other.edns_enabled

    @property
    def measured_mean_caches(self) -> float:
        return (self.measured_caches_sum / self.platforms
                if self.platforms else 0.0)

    @property
    def true_mean_caches(self) -> float:
        return (self.true_caches_sum / self.platforms
                if self.platforms else 0.0)

    @property
    def true_edns_adoption(self) -> float:
        return self.edns_enabled / self.platforms if self.platforms else 0.0


@dataclass
class EvolutionModel:
    """What changes between rounds."""

    edns_enable_probability: float = 0.15   # per non-EDNS platform per round
    cache_growth_probability: float = 0.08  # per platform per round
    max_caches: int = 12

    def __post_init__(self) -> None:
        for value in (self.edns_enable_probability,
                      self.cache_growth_probability):
            if not 0.0 <= value <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")


class TrendStudy:
    """Measures a fixed platform set repeatedly while it evolves."""

    def __init__(self, world: SimulatedInternet,
                 platforms: list[HostedPlatform],
                 evolution: Optional[EvolutionModel] = None,
                 interval: float = 86_400.0,
                 confidence: float = 0.99,
                 rng: Optional[random.Random] = None):
        if not platforms:
            raise ValueError("need at least one platform")
        self.world = world
        self.platforms = platforms
        self.evolution = evolution or EvolutionModel()
        self.interval = interval
        self.confidence = confidence
        self.rng = rng or world.rng_factory.stream("trends")
        self.rounds: list[TrendRound] = []

    # -- evolution (hidden from the measurement) ---------------------------

    def _evolve(self) -> None:
        from ..cache.software import BIND9_LIKE

        for hosted in self.platforms:
            platform = hosted.platform
            if platform.config.edns_payload_size is None and \
                    self.rng.random() < self.evolution.edns_enable_probability:
                platform.config.edns_payload_size = 4096
            if platform.config.n_caches < self.evolution.max_caches and \
                    self.rng.random() < self.evolution.cache_growth_probability:
                platform.config.n_caches += 1
                platform.caches.append(BIND9_LIKE.build_cache(
                    cache_id=f"{platform.config.name}/cache-grown-"
                             f"{platform.config.n_caches}",
                    rng=random.Random(self.rng.randrange(1 << 30)),
                ))

    # -- measurement -----------------------------------------------------------

    def _measure_round(self) -> TrendRound:
        ingress_ips = [hosted.platform.ingress_ips[0]
                       for hosted in self.platforms]
        survey = survey_edns_adoption(self.world.cde, self.world.prober,
                                      ingress_ips)
        fold = TrendAccumulator()
        for hosted in self.platforms:
            budget = queries_for_confidence(
                max(hosted.platform.n_caches, 2), self.confidence)
            census = enumerate_direct(self.world.cde, self.world.prober,
                                      hosted.platform.ingress_ips[0],
                                      q=budget)
            fold.add_platform(
                census.arrivals, hosted.platform.n_caches,
                hosted.platform.config.edns_payload_size is not None)
        return TrendRound(
            timestamp=self.world.clock.now,
            measured_edns_adoption=survey.adoption_rate,
            true_edns_adoption=fold.true_edns_adoption,
            measured_mean_caches=fold.measured_mean_caches,
            true_mean_caches=fold.true_mean_caches,
        )

    def run(self, rounds: int) -> list[TrendRound]:
        if rounds < 1:
            raise ValueError("need at least one round")
        for round_index in range(rounds):
            if round_index:
                self.world.clock.advance(self.interval)
                self._evolve()
            self.rounds.append(self._measure_round())
        return self.rounds
