"""Data-collection workflows (paper §III, Table I, Figure 2 inputs).

Three collectors mirror the paper's three acquisition channels:

* :func:`scan_for_open_resolvers` — the Alexa-style scan: candidate
  networks are probed with a query for a record in our domain; the ones
  that answer are the open-resolver dataset (§III-A: "we select the first
  1K domains that provide open DNS resolution services").
* :func:`run_smtp_collection` — the email channel: one message to a
  non-existent mailbox per enterprise, then the CDE nameserver log is
  classified per-domain into the mechanism mix of **Table I**.
* :func:`run_ad_collection` — the ad-network channel: impressions served
  to ISP-hosted browsers with the paper's ~1:50 completion rate; completed
  clients are the usable probers.
"""

from __future__ import annotations

from collections.abc import Sized
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..client.smtp import DKIM_SELECTOR
from ..client.webpage import AdCampaign
from ..core.prober import BrowserProber
from ..dns.errors import QueryTimeout
from ..dns.name import DnsName
from ..dns.rrtype import RCode, RRType
from ..net.perf import PerfCounters, track
from .internet import HostedPlatform, SimulatedInternet
from .population import PlatformSpec


# ---------------------------------------------------------------------------
# open-resolver scan (§III-A)
# ---------------------------------------------------------------------------


@dataclass
class ScanResult:
    candidates: int
    open_platforms: list[HostedPlatform]
    refused: int
    unreachable: int
    flagged: int = 0   # dropped by the integrity (hygiene) checks
    perf: Optional[PerfCounters] = None

    @property
    def open_count(self) -> int:
        return len(self.open_platforms)


def scan_for_open_resolvers(world: SimulatedInternet,
                            specs: Iterable[PlatformSpec],
                            closed_fraction: float = 0.45,
                            limit: Optional[int] = None,
                            integrity_check: bool = False) -> ScanResult:
    """Build candidate networks and keep those that resolve openly.

    ``closed_fraction`` of the candidates are configured to serve only
    their own clients (the Alexa scan's non-open majority); the scan keeps
    the first ``limit`` platforms that answer a query for a record in our
    domain, exactly like the paper's two-step selection.

    ``specs`` may be any iterable — a generator from
    :func:`~repro.study.population.iter_population` streams candidates
    through the scan one at a time, so the candidate list itself never has
    to exist in memory (only the surviving open platforms do).

    ``integrity_check=True`` additionally runs the
    :mod:`repro.core.integrity` hygiene checks and drops flagged resolvers
    — the paper's "excludes malicious networks" step (§III-A).
    """
    rng = world.rng_factory.stream("open-scan")
    open_platforms: list[HostedPlatform] = []
    refused = 0
    unreachable = 0
    flagged = 0
    # A sized input reports its full candidate pool (seed behaviour, even
    # when ``limit`` stops the scan early); a pure stream can only report
    # the candidates actually drawn.
    sized: Optional[int] = (len(specs)
                            if isinstance(specs, Sized) else None)
    consumed = 0
    perf = PerfCounters()
    with track(world, perf=perf):
        for spec in specs:
            consumed += 1
            hosted = world.add_platform_from_spec(spec)
            if rng.random() < closed_fraction:
                hosted.platform.config.open_to = "172.16.0.0/12"
            probe_name = world.cde.unique_name("scan")
            try:
                transaction = world.prober.query(
                    hosted.platform.ingress_ips[0], probe_name)
            except QueryTimeout:
                unreachable += 1
                continue
            if transaction.response.rcode == RCode.NOERROR and \
                    transaction.response.answers:
                if integrity_check:
                    from ..core.integrity import check_resolver_integrity

                    report = check_resolver_integrity(
                        world.cde, world.prober,
                        hosted.platform.ingress_ips[0])
                    if not report.clean:
                        flagged += 1
                        continue
                open_platforms.append(hosted)
                if limit is not None and len(open_platforms) >= limit:
                    break
            else:
                refused += 1
    candidates = sized if sized is not None else consumed
    perf.platforms += candidates
    return ScanResult(
        candidates=candidates,
        open_platforms=open_platforms,
        refused=refused,
        unreachable=unreachable,
        flagged=flagged,
        perf=perf,
    )


# ---------------------------------------------------------------------------
# SMTP collection → Table I (§III-B)
# ---------------------------------------------------------------------------

#: Table I rows, in the paper's order, with the paper's reported fractions.
TABLE1_PAPER_ROWS: list[tuple[str, float]] = [
    ("Modern SPF queries (TXT qtype)", 0.696),
    ("Obsolete SPF [RFC7208] (SPF qtype)", 0.142),
    ("ADSP (w/DKIM)", 0.02),
    ("DKIM", 0.003),
    ("DMARC", 0.353),
    ("MX/A queries for sending email server", 0.304),
]


@dataclass
class SmtpCollectionResult:
    domains_probed: int
    mechanism_fractions: dict[str, float]
    per_domain_mechanisms: dict[str, set[str]] = field(default_factory=dict)
    perf: Optional[PerfCounters] = None

    def table1_rows(self) -> list[tuple[str, float]]:
        """Rows in the paper's Table I order."""
        key_map = {
            "Modern SPF queries (TXT qtype)": "spf_txt",
            "Obsolete SPF [RFC7208] (SPF qtype)": "spf_legacy",
            "ADSP (w/DKIM)": "adsp",
            "DKIM": "dkim",
            "DMARC": "dmarc",
            "MX/A queries for sending email server": "bounce_mx",
        }
        return [(label, self.mechanism_fractions.get(key, 0.0))
                for label, key in key_map.items()]


def classify_mechanism(sender: DnsName, qname: DnsName,
                       qtype: RRType) -> Optional[str]:
    """Which Table I mechanism a logged query represents."""
    if qname == sender:
        if qtype == RRType.TXT:
            return "spf_txt"
        if qtype == RRType.SPF:
            return "spf_legacy"
        if qtype == RRType.MX:
            return "bounce_mx"
        if qtype == RRType.A:
            return "bounce_mx"
    if qname == sender.prepend("_dmarc") and qtype == RRType.TXT:
        return "dmarc"
    if qname == sender.prepend("_adsp", "_domainkey") and qtype == RRType.TXT:
        return "adsp"
    if qname == sender.prepend(DKIM_SELECTOR, "_domainkey") and \
            qtype == RRType.TXT:
        return "dkim"
    return None


def run_smtp_collection(world: SimulatedInternet,
                        specs: list[PlatformSpec]) -> SmtpCollectionResult:
    """One probe email per enterprise; classify what reaches our nameserver."""
    mechanisms_per_domain: dict[str, set[str]] = {}
    perf = PerfCounters()
    with track(world, perf=perf, platforms=len(specs)):
        for spec in specs:
            hosted = world.add_platform_from_spec(spec)
            domain = f"enterprise-{spec.index}.example"
            server = world.make_smtp_server(domain, hosted)
            sender = world.cde.unique_name("mail")
            since = world.clock.now
            server.receive_message(
                mail_from=f"prober@{sender}",
                rcpt_to=f"no-such-mailbox@{domain}",
            )
            seen: set[str] = set()
            for entry in world.cde.server.query_log.entries(since=since):
                mechanism = classify_mechanism(sender, entry.qname,
                                               entry.qtype)
                if mechanism is not None:
                    seen.add(mechanism)
            mechanisms_per_domain[domain] = seen

    total = len(mechanisms_per_domain) or 1
    fractions = {
        mechanism: sum(1 for seen in mechanisms_per_domain.values()
                       if mechanism in seen) / total
        for mechanism in ("spf_txt", "spf_legacy", "adsp", "dkim", "dmarc",
                          "bounce_mx")
    }
    return SmtpCollectionResult(
        domains_probed=len(mechanisms_per_domain),
        mechanism_fractions=fractions,
        per_domain_mechanisms=mechanisms_per_domain,
        perf=perf,
    )


# ---------------------------------------------------------------------------
# ad-network collection (§III-C)
# ---------------------------------------------------------------------------


@dataclass
class AdCollectionResult:
    impressions: int
    completed: int
    probers: list[BrowserProber]
    operators: list[str]          # operator per completed client (Fig. 2)
    perf: Optional[PerfCounters] = None

    @property
    def completion_rate(self) -> float:
        return self.completed / self.impressions if self.impressions else 0.0


def run_ad_collection(world: SimulatedInternet, specs: list[PlatformSpec],
                      impressions: int,
                      campaign: Optional[AdCampaign] = None
                      ) -> AdCollectionResult:
    """Serve ``impressions`` ads to browsers on the generated ISP platforms.

    Each impression's client sits behind a platform drawn from ``specs``
    (clients of big ISPs are more common, approximated uniformly here);
    only completed executions yield probers, per the paper's 1:50 yield.
    """
    campaign = campaign or AdCampaign(rng=world.rng_factory.stream("campaign"))
    rng = world.rng_factory.stream("ad-clients")
    probers: list[BrowserProber] = []
    operators: list[str] = []
    perf = PerfCounters()
    with track(world, perf=perf, platforms=len(specs)):
        hosted_platforms = [world.add_platform_from_spec(spec)
                            for spec in specs]
        for _ in range(impressions):
            hosted = hosted_platforms[rng.randrange(len(hosted_platforms))]
            browser = world.make_browser(hosted)
            impression = campaign.serve(browser, lambda b: [])
            if impression.completed:
                probers.append(BrowserProber(browser))
                operators.append(hosted.spec.operator)
    return AdCollectionResult(
        impressions=impressions,
        completed=len(probers),
        probers=probers,
        operators=operators,
        perf=perf,
    )
