"""JSON export of measurement results.

The paper promises reusable tools; tools need machine-readable output.
Every result object the toolkit produces can be rendered to plain dicts /
JSON here — reports, population measurements, Table I collections, EDNS
surveys and monitor histories.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..core.edns_survey import EdnsSurveyResult
from ..core.monitor import PlatformMonitor
from ..core.session import PlatformReport
from ..net.perf import PerfCounters
from .collection import SmtpCollectionResult
from .measurement import PlatformMeasurement


def report_to_dict(report: PlatformReport) -> dict[str, Any]:
    """A :class:`PlatformReport` as a JSON-safe dict."""
    data: dict[str, Any] = {
        "ingress_ips_tested": report.ingress_ips_tested,
        "cache_count": report.cache_count,
        "carpet_k": report.carpet_k,
        "queries_sent": report.queries_sent,
        "notes": list(report.notes),
    }
    if report.loss is not None:
        data["loss"] = {"probes": report.loss.probes,
                        "lost": report.loss.lost,
                        "rate": report.loss.rate}
    if report.two_phase is not None:
        data["two_phase"] = {
            "seeds": report.two_phase.seeds,
            "init_arrivals": report.two_phase.init_arrivals,
            "validate_arrivals": report.two_phase.validate_arrivals,
            "validated_seeds": report.two_phase.validated_seeds,
            "estimate": report.two_phase.estimate.estimate,
        }
    if report.direct is not None:
        data["direct"] = {
            "queries_sent": report.direct.queries_sent,
            "arrivals": report.direct.arrivals,
            "estimate": report.direct.estimate.estimate,
        }
    if report.ingress_mapping is not None:
        data["ingress_clusters"] = [
            {"cluster_id": cluster.cluster_id,
             "member_ips": list(cluster.member_ips)}
            for cluster in report.ingress_mapping.clusters
        ]
    if report.egress is not None:
        data["egress_ips"] = sorted(report.egress.egress_ips)
    return data


def measurement_to_dict(measurement: PlatformMeasurement) -> dict[str, Any]:
    spec = measurement.spec
    data: dict[str, Any] = {
        "name": spec.name,
        "population": spec.population,
        "operator": spec.operator,
        "country": spec.country,
        "selector": spec.selector_name,
        "n_ingress": spec.n_ingress,
        "true_caches": spec.n_caches,
        "true_egress": spec.n_egress,
        "measured_caches": measurement.measured_caches,
        "measured_egress": measurement.measured_egress,
        "technique": measurement.technique,
        "queries_used": measurement.queries_used,
    }
    # The resilience section appears only for rows measured under visible
    # adversity, so default-profile exports stay byte-identical to the seed.
    if measurement.degraded:
        data["resilience"] = {
            "attempts": measurement.attempts,
            "retries": measurement.retries,
            "gave_up": measurement.gave_up,
            "fault_exposure": {kind: count for kind, count in
                               sorted(measurement.fault_exposure.items())},
        }
    return data


def measurements_to_dict(measurements: list[PlatformMeasurement]
                         ) -> list[dict[str, Any]]:
    return [measurement_to_dict(measurement) for measurement in measurements]


def table1_to_dict(result: SmtpCollectionResult) -> dict[str, Any]:
    return {
        "domains_probed": result.domains_probed,
        "rows": [{"query_type": label, "fraction": fraction}
                 for label, fraction in result.table1_rows()],
    }


def perf_to_dict(perf: Optional[PerfCounters]) -> Optional[dict[str, Any]]:
    """A :class:`PerfCounters` as a JSON-safe dict (``None`` passes through).

    The measured rows are deterministic per seed; these counters are
    machine-dependent throughput metadata riding alongside them.
    """
    return None if perf is None else perf.to_dict()


def edns_survey_to_dict(survey: EdnsSurveyResult) -> dict[str, Any]:
    return {
        "surveyed": survey.surveyed,
        "supporting": survey.supporting,
        "adoption_rate": survey.adoption_rate,
        "size_histogram": {str(size): count
                           for size, count in survey.size_histogram().items()},
        "observations": [
            {"ingress_ip": obs.ingress_ip, "reachable": obs.reachable,
             "supports_edns": obs.supports_edns,
             "advertised_size": obs.advertised_size}
            for obs in survey.observations
        ],
    }


def monitor_to_dict(monitor: PlatformMonitor) -> dict[str, Any]:
    return {
        "ingress_ip": monitor.ingress_ip,
        "interval": monitor.interval,
        "snapshots": [
            {"timestamp": snap.timestamp, "cache_count": snap.cache_count,
             "egress_ips": sorted(snap.egress_ips),
             "queries_spent": snap.queries_spent}
            for snap in monitor.history
        ],
        "events": [
            {"timestamp": event.timestamp, "kind": event.kind.value,
             "description": event.describe()}
            for event in monitor.events
        ],
    }


def to_json(payload: Any, indent: int = 2) -> str:
    """Serialize any of the dict shapes above to JSON text."""
    return json.dumps(payload, indent=indent, sort_keys=True)
