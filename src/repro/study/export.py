"""JSON export of measurement results.

The paper promises reusable tools; tools need machine-readable output.
Every result object the toolkit produces can be rendered to plain dicts /
JSON here — reports, population measurements, Table I collections, EDNS
surveys and monitor histories.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterable, Iterator, Optional

from ..core.edns_survey import EdnsSurveyResult
from ..core.monitor import PlatformMonitor
from ..core.session import PlatformReport
from ..net.perf import PerfCounters
from .collection import SmtpCollectionResult
from .measurement import PlatformMeasurement


def report_to_dict(report: PlatformReport) -> dict[str, Any]:
    """A :class:`PlatformReport` as a JSON-safe dict."""
    data: dict[str, Any] = {
        "ingress_ips_tested": report.ingress_ips_tested,
        "cache_count": report.cache_count,
        "carpet_k": report.carpet_k,
        "queries_sent": report.queries_sent,
        "notes": list(report.notes),
    }
    if report.loss is not None:
        data["loss"] = {"probes": report.loss.probes,
                        "lost": report.loss.lost,
                        "rate": report.loss.rate}
    if report.two_phase is not None:
        data["two_phase"] = {
            "seeds": report.two_phase.seeds,
            "init_arrivals": report.two_phase.init_arrivals,
            "validate_arrivals": report.two_phase.validate_arrivals,
            "validated_seeds": report.two_phase.validated_seeds,
            "estimate": report.two_phase.estimate.estimate,
        }
    if report.direct is not None:
        data["direct"] = {
            "queries_sent": report.direct.queries_sent,
            "arrivals": report.direct.arrivals,
            "estimate": report.direct.estimate.estimate,
        }
    if report.ingress_mapping is not None:
        data["ingress_clusters"] = [
            {"cluster_id": cluster.cluster_id,
             "member_ips": list(cluster.member_ips)}
            for cluster in report.ingress_mapping.clusters
        ]
    if report.egress is not None:
        data["egress_ips"] = sorted(report.egress.egress_ips)
    return data


def measurement_to_dict(measurement: PlatformMeasurement) -> dict[str, Any]:
    spec = measurement.spec
    data: dict[str, Any] = {
        "name": spec.name,
        "population": spec.population,
        "operator": spec.operator,
        "country": spec.country,
        "selector": spec.selector_name,
        "n_ingress": spec.n_ingress,
        "true_caches": spec.n_caches,
        "true_egress": spec.n_egress,
        "measured_caches": measurement.measured_caches,
        "measured_egress": measurement.measured_egress,
        "technique": measurement.technique,
        "queries_used": measurement.queries_used,
    }
    # The resilience section appears only for rows measured under visible
    # adversity, so default-profile exports stay byte-identical to the seed.
    if measurement.degraded:
        data["resilience"] = {
            "attempts": measurement.attempts,
            "retries": measurement.retries,
            "gave_up": measurement.gave_up,
            "fault_exposure": {kind: count for kind, count in
                               sorted(measurement.fault_exposure.items())},
        }
    return data


def measurements_to_dict(measurements: Iterable[PlatformMeasurement]
                         ) -> list[dict[str, Any]]:
    """Row dicts for any iterable of measurements (list, stream, ...)."""
    return [measurement_to_dict(measurement) for measurement in measurements]


def table1_to_dict(result: SmtpCollectionResult) -> dict[str, Any]:
    return {
        "domains_probed": result.domains_probed,
        "rows": [{"query_type": label, "fraction": fraction}
                 for label, fraction in result.table1_rows()],
    }


def perf_to_dict(perf: Optional[PerfCounters]) -> Optional[dict[str, Any]]:
    """A :class:`PerfCounters` as a JSON-safe dict (``None`` passes through).

    The measured rows are deterministic per seed; these counters are
    machine-dependent throughput metadata riding alongside them.
    """
    return None if perf is None else perf.to_dict()


def edns_survey_to_dict(survey: EdnsSurveyResult) -> dict[str, Any]:
    return {
        "surveyed": survey.surveyed,
        "supporting": survey.supporting,
        "adoption_rate": survey.adoption_rate,
        "size_histogram": {str(size): count
                           for size, count in survey.size_histogram().items()},
        "observations": [
            {"ingress_ip": obs.ingress_ip, "reachable": obs.reachable,
             "supports_edns": obs.supports_edns,
             "advertised_size": obs.advertised_size}
            for obs in survey.observations
        ],
    }


def monitor_to_dict(monitor: PlatformMonitor) -> dict[str, Any]:
    return {
        "ingress_ip": monitor.ingress_ip,
        "interval": monitor.interval,
        "snapshots": [
            {"timestamp": snap.timestamp, "cache_count": snap.cache_count,
             "egress_ips": sorted(snap.egress_ips),
             "queries_spent": snap.queries_spent}
            for snap in monitor.history
        ],
        "events": [
            {"timestamp": event.timestamp, "kind": event.kind.value,
             "description": event.describe()}
            for event in monitor.events
        ],
    }


def to_json(payload: Any, indent: int = 2) -> str:
    """Serialize any of the dict shapes above to JSON text."""
    return json.dumps(payload, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# chunked NDJSON census export (streaming pipeline)
# ---------------------------------------------------------------------------

#: Manifest schema version; bumped on any incompatible layout change.
MANIFEST_VERSION = 1

#: Default rows per chunk file.  Bounds writer memory (one chunk of lines)
#: and bounds what a crash can lose (the current, not-yet-durable chunk).
DEFAULT_CHUNK_ROWS = 1000

MANIFEST_NAME = "manifest.json"
_CHUNK_PATTERN = "chunk-{:05d}.ndjson"


def ndjson_line(data: dict[str, Any]) -> str:
    """The canonical one-line rendering of a row dict.

    Sorted keys and fixed separators make the line a pure function of the
    dict — the byte-identity the streaming equivalence tests assert rests
    on this canonical form.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def measurement_to_ndjson(measurement: PlatformMeasurement) -> str:
    return ndjson_line(measurement_to_dict(measurement))


class CensusWriter:
    """Chunked NDJSON writer with a resumable manifest.

    Rows append to an in-memory buffer of at most ``chunk_size`` lines;
    each full buffer becomes one durable chunk file (written to a ``.part``
    name, then atomically renamed) and is recorded — with its row count and
    SHA-256 — in ``manifest.json`` (also updated atomically).  ``close()``
    flushes the final short chunk and marks the manifest complete.

    Resume (``resume=True``) re-opens an interrupted census: stray partial
    files are removed, the durable chunks are kept, and the writer silently
    skips exactly the rows already durable — so the caller replays the
    deterministic stream from the start and the reassembled output is
    byte-identical to an uninterrupted run.
    """

    def __init__(self, directory: str,
                 chunk_size: int = DEFAULT_CHUNK_ROWS,
                 meta: Optional[dict[str, Any]] = None,
                 resume: bool = False):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.directory = directory
        self.chunk_size = chunk_size
        self.meta: dict[str, Any] = dict(meta or {})
        self.chunks: list[dict[str, Any]] = []
        self.skipped = 0
        self.closed = False
        self._buffer: list[str] = []
        self._skip = 0
        self._resume = resume
        # Construction touches no files (constructors stay effect-free);
        # the directory opens lazily on the first write or close.
        self._opened = False

    # -- construction helpers ------------------------------------------------

    def _ensure_open(self) -> None:
        if self._opened:
            return
        self._opened = True
        os.makedirs(self.directory, exist_ok=True)
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        if self._resume and os.path.exists(manifest_path):
            self._load_for_resume(manifest_path)
        else:
            self._clear_directory()
            self._write_manifest(complete=False)

    def _clear_directory(self) -> None:
        """Drop leftovers of any earlier census in this directory."""
        for name in sorted(os.listdir(self.directory)):
            if name == MANIFEST_NAME or name.endswith(".part") or (
                    name.startswith("chunk-") and name.endswith(".ndjson")):
                os.unlink(os.path.join(self.directory, name))

    def _load_for_resume(self, manifest_path: str) -> None:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"cannot resume manifest version {manifest.get('version')!r}")
        if manifest.get("complete"):
            raise ValueError("census already complete; nothing to resume")
        recorded_meta = dict(manifest.get("meta") or {})
        if self.meta and recorded_meta != self.meta:
            differing = []
            for key in sorted(set(recorded_meta) | set(self.meta)):
                if (key in recorded_meta and key in self.meta
                        and recorded_meta[key] == self.meta[key]):
                    continue
                on_disk = (repr(recorded_meta[key])
                           if key in recorded_meta else "<absent>")
                requested = (repr(self.meta[key])
                             if key in self.meta else "<absent>")
                differing.append(
                    f"{key}: manifest {on_disk} != requested {requested}")
            raise ValueError(
                "resume meta mismatch: the checkpoint was written by a "
                f"different census — {'; '.join(differing)}")
        self.meta = dict(manifest.get("meta") or {})
        self.chunk_size = int(manifest["chunk_size"])
        self.chunks = list(manifest["chunks"])
        self._skip = sum(int(chunk["rows"]) for chunk in self.chunks)
        recorded = {chunk["name"] for chunk in self.chunks}
        # A crash can strand a renamed chunk the manifest never recorded,
        # or a half-written .part file; both are re-produced by the replay.
        for name in sorted(os.listdir(self.directory)):
            stray = (name.endswith(".part")
                     or (name.startswith("chunk-")
                         and name.endswith(".ndjson")
                         and name not in recorded))
            if stray:
                os.unlink(os.path.join(self.directory, name))

    # -- writing -------------------------------------------------------------

    @property
    def durable_rows(self) -> int:
        """Rows safely on disk in manifest-recorded chunks."""
        return sum(int(chunk["rows"]) for chunk in self.chunks)

    @property
    def pending_rows(self) -> int:
        return len(self._buffer)

    def write_row(self, measurement: PlatformMeasurement) -> bool:
        """Append one measurement; ``False`` when skipped (already durable)."""
        return self.write_dict(measurement_to_dict(measurement))

    def write_dict(self, data: dict[str, Any]) -> bool:
        if self.closed:
            raise RuntimeError("writer is closed")
        self._ensure_open()
        if self._skip:
            self._skip -= 1
            self.skipped += 1
            return False
        self._buffer.append(ndjson_line(data))
        if len(self._buffer) >= self.chunk_size:
            self._flush_chunk()
        return True

    def _flush_chunk(self) -> None:
        if not self._buffer:
            return
        blob = ("\n".join(self._buffer) + "\n").encode("utf-8")
        name = _CHUNK_PATTERN.format(len(self.chunks))
        path = os.path.join(self.directory, name)
        part = path + ".part"
        with open(part, "wb") as handle:
            handle.write(blob)
        os.replace(part, path)
        self.chunks.append({
            "name": name,
            "rows": len(self._buffer),
            "sha256": hashlib.sha256(blob).hexdigest(),
        })
        self._buffer = []
        self._write_manifest(complete=False)

    def _write_manifest(self, complete: bool) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "chunk_size": self.chunk_size,
            "complete": complete,
            "rows": self.durable_rows,
            "meta": self.meta,
            "chunks": self.chunks,
        }
        path = os.path.join(self.directory, MANIFEST_NAME)
        part = path + ".part"
        with open(part, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(part, path)

    def close(self) -> None:
        """Flush the final short chunk and mark the census complete."""
        if self.closed:
            return
        self._ensure_open()
        self._flush_chunk()
        self._write_manifest(complete=True)
        self.closed = True

    def __enter__(self) -> "CensusWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        # Only a clean exit marks the manifest complete; an exception
        # leaves a resumable checkpoint behind.
        if exc_info[0] is None:
            self.close()


def read_census_manifest(directory: str) -> dict[str, Any]:
    with open(os.path.join(directory, MANIFEST_NAME), "r",
              encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {manifest.get('version')!r}")
    return manifest


def read_census_rows(directory: str, verify: bool = True,
                     require_complete: bool = False
                     ) -> Iterator[dict[str, Any]]:
    """Stream row dicts back from a chunked census export.

    One chunk is resident at a time; ``verify`` re-checks each chunk's
    SHA-256 against the manifest before parsing it.
    """
    manifest = read_census_manifest(directory)
    if require_complete and not manifest.get("complete"):
        raise ValueError(f"census in {directory!r} is incomplete")
    for chunk in manifest["chunks"]:
        path = os.path.join(directory, chunk["name"])
        with open(path, "rb") as handle:
            blob = handle.read()
        if verify:
            digest = hashlib.sha256(blob).hexdigest()
            if digest != chunk["sha256"]:
                raise ValueError(
                    f"chunk {chunk['name']} is corrupt: sha256 {digest} != "
                    f"manifest {chunk['sha256']}")
        lines = blob.decode("utf-8").splitlines()
        if len(lines) != int(chunk["rows"]):
            raise ValueError(
                f"chunk {chunk['name']} has {len(lines)} rows, manifest "
                f"says {chunk['rows']}")
        for line in lines:
            yield json.loads(line)


def read_census_lines(directory: str, verify: bool = True
                      ) -> Iterator[str]:
    """The canonical NDJSON lines of a census, in row order."""
    for row in read_census_rows(directory, verify=verify):
        yield ndjson_line(row)
