"""ASCII rendering of the paper's tables and figures.

The bench harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place so benches, examples and the CLI
agree.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.resilient import ResilienceSummary
from ..net.perf import PerfCounters
from .stats import RatioBreakdown


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """A fixed-width ASCII table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(width)
                             for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in materialised:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_cdf_series(series: dict[str, list[float]],
                      xs: Sequence[float],
                      title: str = "",
                      x_label: str = "x") -> str:
    """A CDF table: one row per x, one column per series (as percent)."""
    from .stats import fraction_at_most

    headers = [x_label] + [f"{label} (% <= x)" for label in series]
    rows = []
    for x in xs:
        row: list[object] = [f"{x:g}"]
        for values in series.values():
            row.append(f"{100 * fraction_at_most(values, x):.1f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_bubbles(counts: dict[tuple[int, int], int],
                   title: str = "",
                   x_label: str = "ingress IPs",
                   y_label: str = "caches") -> str:
    """Bubble-plot cells as rows sorted by size (the figure's circles)."""
    rows = [(x, y, count)
            for (x, y), count in sorted(counts.items(),
                                        key=lambda item: -item[1])]
    return format_table([x_label, y_label, "networks"], rows, title=title)


def format_ratio_breakdown(breakdowns: dict[str, RatioBreakdown],
                           title: str = "") -> str:
    """Figure 6: category percentages across populations."""
    categories = ["1 IP / 1 cache", "1 IP / >1 cache",
                  ">1 IP / 1 cache", ">1 IP / >1 cache"]
    headers = ["category"] + list(breakdowns.keys())
    rows = []
    for category in categories:
        row: list[object] = [category]
        for breakdown in breakdowns.values():
            row.append(f"{100 * breakdown.as_dict()[category]:.1f}%")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_fractions(fractions: dict[str, float], title: str = "",
                     label: str = "item") -> str:
    rows = [(name, f"{100 * value:.1f}%") for name, value in fractions.items()]
    return format_table([label, "fraction"], rows, title=title)


def format_perf(perf: Optional[PerfCounters],
                title: str = "measurement throughput") -> str:
    """Per-second throughput of a measurement run (wall-clock based).

    Unlike the measured rows, these numbers depend on the machine and the
    worker count — they report how fast the run went, not what it found.
    """
    if perf is None:
        return format_table(["metric", "value"],
                            [("perf", "not collected")], title=title)
    rows: list[Sequence[object]] = [
        ("platforms measured", perf.platforms),
        ("queries sent", perf.queries_sent),
        ("wall seconds", f"{perf.wall_seconds:.3f}"),
        ("queries / second", f"{perf.queries_per_second:.0f}"),
        ("platforms / second", f"{perf.platforms_per_second:.1f}"),
        ("workers", perf.workers),
        ("shards", len(perf.shards)),
    ]
    if perf.shards:
        rows.append(("shard busy seconds", f"{perf.busy_seconds:.3f}"))
    total_probes = perf.fused_probes + perf.fallback_probes
    if total_probes or perf.shards:
        # Fast-path health: a healthy pipelined run serves every direct
        # probe through the fused corridor; fallback probes mean the
        # replicas desynchronized from the structured path (see CDE015)
        # and the run silently degraded to object-per-message speed.
        rows.append(("fused probes", perf.fused_probes))
        rows.append(("fallback probes", perf.fallback_probes))
        ratio = (f"{100 * perf.fused_probes / total_probes:.1f}%"
                 if total_probes else "n/a")
        rows.append(("fast-path ratio", ratio))
    return format_table(["metric", "value"], rows, title=title)


def format_resilience(summary: ResilienceSummary,
                      title: str = "measurement degradation") -> str:
    """What the resilience layer had to do during a run.

    All-zero under the default profiles; callers typically print this only
    when ``summary.degraded_platforms`` (or any fault exposure) is non-zero.
    """
    rows: list[Sequence[object]] = [
        ("platforms measured", summary.platforms),
        ("platforms degraded",
         f"{summary.degraded_platforms} "
         f"({100 * summary.degraded_fraction:.1f}%)"),
        ("probe attempts (retry policy)", summary.attempts),
        ("retries", summary.retries),
        ("probes given up", summary.gave_up),
    ]
    for kind in sorted(summary.fault_exposure):
        rows.append((f"faults injected: {kind}",
                     summary.fault_exposure[kind]))
    return format_table(["metric", "value"], rows, title=title)
