"""Running the CDE across whole populations (paper §V-A).

Each function measures every platform in a generated population with the
access mode its dataset allows — direct probing for open resolvers, SMTP
bounce probing for enterprises, browser probing for ISP clients — and
returns per-platform :class:`PlatformMeasurement` rows.  Figures 3–8 are
computed from these rows.

Measured values come *only* from the CDE techniques (nameserver arrivals);
ground truth from the specs is carried along solely so benches and tests
can report measurement accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.analysis import queries_for_confidence
from ..core.bypass import CnameChainBypass
from ..core.enumeration import enumerate_adaptive
from ..core.mapping import discover_egress_ips
from ..core.prober import IndirectProber
from ..dns.rrtype import RRType
from .internet import HostedPlatform, SimulatedInternet
from .population import PlatformSpec


@dataclass
class PlatformMeasurement:
    """One measured platform: the row behind every figure."""

    spec: PlatformSpec
    measured_caches: int
    measured_egress: int
    queries_used: int
    technique: str

    # Degradation bookkeeping (all zero/empty on a polite network with no
    # retry policy — the defaults keep seed-era rows byte-identical).
    attempts: int = 0        # probe-level attempts made by an active policy
    retries: int = 0         # attempts beyond each probe's first
    gave_up: int = 0         # probes abandoned with no answer
    fault_exposure: dict[str, int] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """Whether this row was measured under visible adversity."""
        return bool(self.attempts or self.retries or self.gave_up
                    or self.fault_exposure)

    # Ground truth (for accuracy reporting only).
    @property
    def true_caches(self) -> int:
        return self.spec.n_caches

    @property
    def true_egress(self) -> int:
        return self.spec.n_egress

    @property
    def n_ingress(self) -> int:
        return self.spec.n_ingress

    @property
    def cache_error(self) -> int:
        return self.measured_caches - self.true_caches

    @property
    def ip_cache_pair(self) -> tuple[int, int]:
        """(ingress IPs, measured caches) — the Figures 5/7/8 coordinate."""
        return (self.spec.n_ingress, self.measured_caches)


@dataclass
class MeasurementBudget:
    """Caps that keep population sweeps fast without changing methodology."""

    confidence: float = 0.95
    max_enumeration_queries: int = 512
    egress_probe_factor: float = 3.0     # probes ≈ factor · measured egress
    min_egress_probes: int = 24
    max_egress_probes: int = 256


def _egress_probe_budget(spec: PlatformSpec, budget: MeasurementBudget) -> int:
    """Coupon-collector-style budget for the egress census.

    Scales with the *expected* egress pool size (the operator's prior in a
    real study; here the spec stands in for that prior).
    """
    want = int(budget.egress_probe_factor * max(spec.n_egress, 1))
    return max(budget.min_egress_probes, min(want, budget.max_egress_probes))


def measure_direct(world: SimulatedInternet, hosted: HostedPlatform,
                   budget: Optional[MeasurementBudget] = None
                   ) -> PlatformMeasurement:
    """Open-resolver access: the direct techniques (§IV-B1)."""
    budget = budget or MeasurementBudget()
    spec = hosted.spec
    before = world.prober.queries_sent
    tally_before = world.tally.snapshot()
    exposure_before = world.fault_exposure_snapshot()
    ingress_ip = hosted.platform.ingress_ips[0]
    enumeration = enumerate_adaptive(
        world.cde, world.prober, ingress_ip,
        initial_q=8, confidence=budget.confidence,
        max_q=budget.max_enumeration_queries,
    )
    egress = discover_egress_ips(
        world.cde, world.prober, ingress_ip,
        probes=_egress_probe_budget(spec, budget),
    )
    degradation = world.tally.delta(tally_before)
    return PlatformMeasurement(
        spec=spec,
        measured_caches=enumeration.cache_count,
        measured_egress=egress.n_egress,
        queries_used=world.prober.queries_sent - before,
        technique="direct",
        attempts=degradation.attempts,
        retries=degradation.retries,
        gave_up=degradation.gave_up,
        fault_exposure=world.fault_exposure_delta(exposure_before),
    )


def _measure_indirect(world: SimulatedInternet, hosted: HostedPlatform,
                      prober: IndirectProber, technique: str,
                      budget: MeasurementBudget,
                      count_qtype: Optional[RRType]) -> PlatformMeasurement:
    spec = hosted.spec
    tally_before = world.tally.snapshot()
    exposure_before = world.fault_exposure_snapshot()
    # Enumerate with a CNAME chain sized by the coupon bound for the prior.
    q = min(budget.max_enumeration_queries,
            queries_for_confidence(max(spec.n_caches, 2), budget.confidence))
    bypass = CnameChainBypass(world.cde)
    result = bypass.run(prober, q, count_qtype=count_qtype)

    # Egress census: fresh names through the same prober; distinct sources.
    # A probe name matches its whole subtree: the SMTP channel carries the
    # name into ``_dmarc.<name>``-style authentication lookups.
    probes = _egress_probe_budget(spec, budget)
    names = world.cde.unique_names(probes, prefix="egx")
    since = world.clock.now
    prober.trigger(names)
    sources = {
        entry.src_ip
        for entry in world.cde.server.query_log.entries_for_any(
            names, since=since, under=True)
    }
    degradation = world.tally.delta(tally_before)
    return PlatformMeasurement(
        spec=spec,
        measured_caches=result.cache_count,
        measured_egress=len(sources),
        queries_used=result.triggered + probes,
        technique=technique,
        attempts=degradation.attempts,
        retries=degradation.retries,
        gave_up=degradation.gave_up,
        fault_exposure=world.fault_exposure_delta(exposure_before),
    )


def measure_via_smtp(world: SimulatedInternet, hosted: HostedPlatform,
                     budget: Optional[MeasurementBudget] = None
                     ) -> PlatformMeasurement:
    """Enterprise access through the mail server's bounce handling."""
    budget = budget or MeasurementBudget()
    prober = world.make_smtp_prober(
        f"enterprise-{hosted.spec.index}.example", hosted)
    # Guarantee the probe carries at least one lookup type even if the drawn
    # policy is empty (a mail server that resolves nothing is unusable as a
    # prober; the paper's dataset only contains servers that do look up).
    if prober.lookups_per_probe == 0:
        from ..client.smtp import SmtpAuthPolicy

        prober.smtp_server.policy = SmtpAuthPolicy(checks_spf_txt=True,
                                                   resolves_bounce_mx=True)
    return _measure_indirect(world, hosted, prober, "smtp", budget,
                             count_qtype=None)


def measure_via_browser(world: SimulatedInternet, hosted: HostedPlatform,
                        budget: Optional[MeasurementBudget] = None
                        ) -> PlatformMeasurement:
    """ISP access through an ad-network web client."""
    budget = budget or MeasurementBudget()
    prober = world.make_browser_prober(hosted)
    from ..dns.rrtype import RRType

    return _measure_indirect(world, hosted, prober, "browser", budget,
                             count_qtype=RRType.A)


MEASURES: dict[str, Callable[..., PlatformMeasurement]] = {
    "open-resolvers": measure_direct,
    "email-servers": measure_via_smtp,
    "ad-network": measure_via_browser,
}


def measure_population(world: SimulatedInternet, specs: list[PlatformSpec],
                       budget: Optional[MeasurementBudget] = None
                       ) -> list[PlatformMeasurement]:
    """Build and measure every platform of a generated population."""
    rows = []
    for spec in specs:
        hosted = world.add_platform_from_spec(spec)
        measure = MEASURES[spec.population]
        rows.append(measure(world, hosted, budget))
    return rows
