"""Pipelined single-process measurement engine (ROADMAP open item 1).

The sequential sweep in :func:`~repro.study.measurement.measure_population`
walks one platform at a time; :func:`~repro.study.parallel.run_shard` used
to call it directly.  This module replaces that inner loop with an
event-driven scheduler:

* Each shard becomes a :class:`ShardLane` — one independent world whose
  platforms advance through probe *turns* (a turn is a batch of
  :data:`BATCH_PROBES` probes, or one indirect measurement).  A lane is
  strictly sequential *inside*: its platforms share one clock, one RNG
  factory and one address allocator, so their order is part of the seeded
  determinism and must not change.
* :class:`PipelinedEngine` round-robins turns *across* lanes, whose worlds
  are fully independent — so no lane blocks the pipeline and per-turn work
  stays cache-hot, without perturbing any lane's internal sequence.
* The direct-probe hot loop runs through a **fused corridor**
  (:class:`_FastPlan` / :func:`_fused_probe`): for the common
  prober → open platform → CDE nameserver path it replicates the exact
  mutation sequence of the real object-per-message code — every RNG draw,
  every clock advance, every stats/log update — while skipping all
  ``DnsMessage`` construction, response assembly and truncation checks.
  Once a platform's corridor is warm, the per-probe zone lookup and cache
  walk collapse into a memoized fast path (see below).  Any structural
  surprise (retry policies, fault injectors, closed resolvers, frontend
  dedup, unexpected authority sets, exotic link models...) falls back to
  the real code path, which is always correct.

The fast path rests on one structural fact the engine controls: corridor
probe names come from ``cde.unique_name``/``unique_names`` *immediately*
before probing, so they are fresh children of the CDE base domain that no
cache, zone or log has ever seen.  Every cache lookup at such a name is a
provable miss, the zone answer is pure wildcard synthesis, and the query
log's suffix buckets above the name are fixed.  The fast path verifies the
cheap invariants per probe (entry identity, wildcard RRset identity, key
absence) and falls back wholesale when any fails.

Determinism is the contract: driving a :class:`ShardLane` to completion
produces rows byte-identical to
``measure_population(SimulatedInternet(task.config), list(task.specs),
task.budget)``, and interleaving lanes cannot change any lane's rows.
``tests/test_study_parallel.py`` and ``tests/test_faults_deterministic.py``
pin this across worker counts and fault profiles.
"""

from __future__ import annotations

import time
from collections import deque
from math import cos as _cos
from math import exp
from math import log as _log
from math import pi as _pi
from math import sin as _sin
from math import sqrt as _sqrt
from random import Random
from typing import Any, Callable, Generator, Optional

from ..cache.cache import DnsCache
from ..cache.entry import CacheEntry, EntryKind
from ..core.analysis import (
    CacheCountEstimate,
    estimate_from_occupancy,
    queries_for_confidence,
)
from ..core.resilient import RetryBudget
from ..dns.edns import maybe_truncate
from ..dns.errors import ResolutionError
from ..dns.message import DnsMessage
from ..dns.name import ROOT, DnsName
from ..dns.record import (
    CnameRdata,
    NsRdata,
    ResourceRecord,
    RRSet,
    group_rrsets,
)
from ..dns.rrtype import RCode, RRType
from ..dns.wire import wire_cache_counters
from ..dns.zone import WILDCARD_LABEL, LookupKind, Zone
from ..net.latency import ConstantLatency, LogNormalLatency
from ..net.loss import BernoulliLoss, NoLoss
from ..net.network import LinkProfile, Network
from ..net.perf import ShardPerf, snapshot_stats, stats_delta
from ..resolver.platform import MAX_ANSWER_CHAIN, ResolutionPlatform
from ..resolver.selection import (
    QnameHashSelector,
    QueryContext,
    RandomEgressSelector,
    RoundRobinSelector,
    SourceIpHashSelector,
    UniformRandomSelector,
    _stable_hash,
)
from ..server.authoritative import AuthoritativeServer
from ..server.querylog import LogEntry, QueryLog
from .internet import HostedPlatform, SimulatedInternet
from .measurement import (
    MEASURES,
    MeasurementBudget,
    PlatformMeasurement,
    _egress_probe_budget,
)
from .parallel import ShardOutcome, ShardTask

#: Probes per scheduler turn.  Large enough that turn bookkeeping is noise,
#: small enough that a giant platform cannot starve the other lanes.
BATCH_PROBES = 32

_DEFAULT_TIMEOUT = Network.DEFAULT_TIMEOUT
_DEFAULT_RETRIES = Network.DEFAULT_RETRIES

#: (lognormal?, median-or-delay, sigma, loss rate) for one link direction.
_LegParams = tuple[bool, float, float, float]
#: Warm-corridor memo: the cached (base, NS) and (ns, A) entries.
_CorridorMemo = tuple[CacheEntry, CacheEntry]
#: Wildcard template: (rrsets key, RRSet, record count, records, min TTL).
_Template = tuple[tuple[DnsName, RRType], RRSet, int,
                  tuple[ResourceRecord, ...], int]
#: One referral hop of the cold-resolution chain:
#: (server, zone-name for the error message, dst link params, dst profile,
#: RRsets its referral response makes the resolver cache, the server's
#: query log, and — when that log is indexed — the suffix-bucket lists of
#: the base domain's ancestor chain, for the inlined record()).
_ColdLevel = tuple[AuthoritativeServer, DnsName, Optional[_LegParams],
                   LinkProfile, tuple[RRSet, ...], QueryLog,
                   Optional[list[list[int]]]]
#: Zone-shape token guarding a captured chain: (server, zone, zone count,
#: rrset count).  Any mismatch forces a re-capture before the next replay.
_ColdToken = tuple[AuthoritativeServer, Zone, int, int]


def _link_params(profile: LinkProfile) -> Optional[_LegParams]:
    """Flattened sampling parameters for the type-gated traversal inline.

    Only the models whose draw sequence the inline replicates exactly are
    eligible; anything else makes the corridor use ``Network._traverse``.
    """
    latency = profile.latency
    if type(latency) is LogNormalLatency:
        lognormal, median, sigma = True, latency.median, latency.sigma
    elif type(latency) is ConstantLatency:
        lognormal, median, sigma = False, latency.delay, 0.0
    else:
        return None
    loss = profile.loss
    if type(loss) is NoLoss:
        rate = 0.0
    elif type(loss) is BernoulliLoss:
        rate = loss.rate
    else:
        return None
    return (lognormal, median, sigma, rate)


_TWOPI = 2.0 * _pi
_obj_new = object.__new__
#: Bypasses the frozen-dataclass ``__setattr__`` (which rejects even
#: ``__dict__`` assignment) — exactly what dataclass ``__init__`` does.
_obj_setattr = object.__setattr__
_POSITIVE = EntryKind.POSITIVE
_ANY = RRType.ANY
_CNAME = RRType.CNAME
_NS = RRType.NS


def _check_dataclass_layout() -> bool:
    """True when the hot loop may build records/entries by ``__dict__``.

    The fused corridor constructs :class:`LogEntry`, :class:`QueryContext`,
    :class:`ResourceRecord`, :class:`RRSet` and :class:`CacheEntry` via
    ``object.__new__`` plus a ``__dict__`` literal, skipping dataclass
    ``__init__``/``__post_init__`` overhead.  That is only sound while the
    field layout, defaults and post-init effects are exactly the ones the
    literals replicate — so this probe builds each replica the same way
    the hot loop does and compares it field-for-field against the real
    constructor's product.  Any mismatch (renamed field, new default,
    ``__slots__``, new post-init behaviour) flips the corridor back to the
    real constructors.
    """
    try:
        name = ROOT.prepend("layout-check")
        rdata = NsRdata(name)
        record = ResourceRecord(name, RRType.A, 5, rdata)
        fast_record = _obj_new(ResourceRecord)
        _obj_setattr(fast_record, "__dict__",
                     {"name": name, "rtype": RRType.A, "ttl": 5,
                      "rdata": rdata, "rclass": record.rclass})
        rrset = RRSet(name, RRType.A)
        rrset.records = [record]
        fast_rrset = _obj_new(RRSet)
        fast_rrset.__dict__ = {"name": name, "rtype": RRType.A,
                               "rclass": rrset.rclass, "records": [record]}
        entry = CacheEntry(name=name, rtype=RRType.A, kind=_POSITIVE,
                           stored_at=1.5, expires_at=6.5, rrset=rrset)
        fast_entry = _obj_new(CacheEntry)
        fast_entry.__dict__ = {"name": name, "rtype": RRType.A,
                               "kind": _POSITIVE, "stored_at": 1.5,
                               "expires_at": 6.5, "rrset": rrset,
                               "soa": None, "hits": 0, "last_used": 1.5}
        log_entry = LogEntry(timestamp=2.0, src_ip="src", qname=name,
                             qtype=RRType.A, msg_id=7)
        fast_log = _obj_new(LogEntry)
        _obj_setattr(fast_log, "__dict__",
                     {"timestamp": 2.0, "src_ip": "src", "qname": name,
                      "qtype": RRType.A, "msg_id": 7})
        context = QueryContext(qname=name, qtype=RRType.A, src_ip="src",
                               sequence=3)
        fast_context = _obj_new(QueryContext)
        _obj_setattr(fast_context, "__dict__",
                     {"qname": name, "qtype": RRType.A, "src_ip": "src",
                      "sequence": 3})
        return (
            list(record.__dict__) == list(fast_record.__dict__)
            and record.__dict__ == fast_record.__dict__
            and record == fast_record
            and list(rrset.__dict__) == list(fast_rrset.__dict__)
            and rrset.__dict__ == fast_rrset.__dict__
            and list(entry.__dict__) == list(fast_entry.__dict__)
            and entry.__dict__ == fast_entry.__dict__
            and list(log_entry.__dict__) == list(fast_log.__dict__)
            and log_entry.__dict__ == fast_log.__dict__
            and log_entry == fast_log
            and list(context.__dict__) == list(fast_context.__dict__)
            and context.__dict__ == fast_context.__dict__
            and context == fast_context
        )
    except (AttributeError, TypeError):
        return False


def _check_inline_gauss() -> bool:
    """True when the inlined Box–Muller replica matches ``Random.gauss``.

    The replica (see :func:`_leg_inline`) hand-manages the ``gauss_next``
    spare so latency sampling skips a method call per draw.  Verified
    against the real implementation — including internal state — so a
    future stdlib algorithm change degrades to the method call instead of
    silently changing the seeded draw stream.
    """
    try:
        real, mine = Random(987654321), Random(987654321)
        for sigma in (1.25, 0.5, 2.0, 0.75, 1.0):
            z = mine.gauss_next
            mine.gauss_next = None
            if z is None:
                x2pi = mine.random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - mine.random()))
                z = _cos(x2pi) * g2rad
                mine.gauss_next = _sin(x2pi) * g2rad
            if real.gauss(0.0, sigma) != z * sigma or \
                    real.getstate() != mine.getstate():
                return False
        return True
    except (AttributeError, TypeError):
        return False


def _check_inline_randbelow() -> bool:
    """True when the inlined ``randrange(n)`` replica is draw-exact.

    ``Random.randrange(n)`` bottoms out in ``_randbelow_with_getrandbits``:
    draw ``n.bit_length()`` bits, redraw while the value is >= ``n``.  The
    corridor replays that loop directly on the bound ``getrandbits`` to
    skip two stdlib call frames per message id / egress pick; verified
    here against the real method on a cloned RNG so an implementation
    change falls back instead of shifting the seeded stream.
    """
    try:
        real, mine = Random(246813579), Random(246813579)
        for bound in (1 << 16, 3, 7, 1, 12):
            k = bound.bit_length()
            getrandbits = mine.getrandbits
            value = getrandbits(k)
            while value >= bound:
                value = getrandbits(k)
            if real.randrange(bound) != value or \
                    real.getstate() != mine.getstate():
                return False
        return True
    except (AttributeError, TypeError):
        return False


_FAST_LAYOUT = _check_dataclass_layout()
_INLINE_GAUSS = _check_inline_gauss()
_INLINE_RANDBELOW = _check_inline_randbelow()
#: All three replicas verified → the fully flattened probe path is safe.
_FULL_FAST = _FAST_LAYOUT and _INLINE_GAUSS and _INLINE_RANDBELOW


class _ColdChain:
    """Captured referral chain from the root hints down to the CDE server.

    The chain is world-level state (root hints, endpoint map, shared
    zones), so one capture serves every platform plan in a lane with the
    same root hints; :meth:`valid` revalidates the zone-shape tokens before
    each cold replay and re-captures when population construction grew a
    shared zone.

    ``AuthoritativeServer.respond`` is pure, so the chain can be probed
    offline with a synthetic corridor name.  The capture label is the
    longest legal one: every real probe name is no longer, so a response
    that fits the truncation limit here proves every real response fits
    too.  Referral sections do not depend on the probed name (only the
    question does, which ingest ignores), so the captured RRsets replay
    verbatim for any corridor name.  On any structural surprise — multiple
    roots or candidate servers, glueless delegations, truncation, a
    non-wildcard answer — the capture declines and cold resolutions stay
    on the real path.
    """

    __slots__ = ("network", "server", "ns_ip", "base_domain", "root_key",
                 "zone", "template", "a_key", "levels", "tokens")

    def __init__(self, world: SimulatedInternet,
                 root_key: tuple[str, ...]) -> None:
        self.network: Network = world.network
        self.server: AuthoritativeServer = world.cde.server
        self.ns_ip: str = world.cde.ns_ip
        self.base_domain: DnsName = world.cde.base_domain
        self.root_key = root_key
        self.zone: Optional[Zone] = None
        self.template: Optional[_Template] = None
        self.a_key: Optional[tuple[DnsName, RRType]] = None
        self.levels: Optional[list[_ColdLevel]] = None
        self.tokens: list[_ColdToken] = []
        self.capture()

    def capture(self) -> None:
        self.levels = None
        self.tokens = []
        if len(self.root_key) != 1:
            return
        probe = self.base_domain.prepend("z" * 63)
        levels: list[_ColdLevel] = []
        tokens: list[_ColdToken] = []
        server_ip = self.root_key[0]
        zone_name = ROOT
        for _ in range(4):
            endpoint = self.network.endpoint_at(server_ip)
            if not isinstance(endpoint, AuthoritativeServer):
                return
            if not endpoint.online or endpoint.rrl_rate is not None:
                return
            profile = self.network.profile_of(server_ip)
            if profile is None:
                return
            zone = endpoint.zone_for(probe)
            if zone is None:
                return
            query = DnsMessage.make_query(probe, RRType.A, msg_id=0,
                                          recursion_desired=False)
            response = endpoint.respond(query)
            if maybe_truncate(query, response,
                              endpoint.edns_payload_size) is not response:
                return
            tokens.append((endpoint, zone, len(endpoint.zones()),
                           len(zone._rrsets)))
            if endpoint is self.server and server_ip == self.ns_ip:
                # Final hop: the answer must be pure wildcard synthesis.
                if response.rcode != RCode.NOERROR or not response.answers:
                    return
                wkey = (self.base_domain.prepend(WILDCARD_LABEL), RRType.A)
                wset = zone._rrsets.get(wkey)
                if wset is None or not wset.records:
                    return
                if response.answers != [
                        ResourceRecord(probe, record.rtype, record.ttl,
                                       record.rdata, record.rclass)
                        for record in wset.records]:
                    return
                self.zone = zone
                self.template = (wkey, wset, len(wset.records),
                                 tuple(wset.records),
                                 min(record.ttl for record in wset.records))
                self.levels = levels
                self.tokens = tokens
                return
            if response.rcode != RCode.NOERROR or response.answers:
                return
            if not response.is_referral():
                return
            ns_sets = response.authority_of_type(RRType.NS)
            if not ns_sets:
                return
            new_zone = ns_sets[0].name
            if not new_zone.is_strict_subdomain_of(zone_name):
                return
            ingest = [rrset for rrset in group_rrsets(response.authority)
                      if rrset.rtype == RRType.NS]
            ingest.extend(rrset for rrset in group_rrsets(response.additional)
                          if rrset.rtype in (RRType.A, RRType.AAAA))
            glue = {record.name: record for record in response.additional
                    if record.rtype == RRType.A}
            next_ips: list[str] = []
            for record in response.authority_of_type(RRType.NS):
                if not isinstance(record.rdata, NsRdata):
                    return
                glue_record = glue.get(record.rdata.nsdname)
                if glue_record is None:
                    return          # glueless hop: real path only
                next_ips.append(glue_record.rdata.address)  # type: ignore[attr-defined]
            if len(next_ips) != 1:
                return
            if new_zone == self.base_domain:
                # The hop that teaches the corridor: remember its keys.
                if len(ns_sets) != 1 or len(ingest) != 2:
                    return
                first = ns_sets[0]
                assert isinstance(first.rdata, NsRdata)
                self.a_key = (first.rdata.nsdname, RRType.A)
            level_log = endpoint.query_log
            tails = [
                level_log._by_suffix.setdefault(ancestor, [])
                for ancestor in self.base_domain.ancestors(include_self=True)
            ] if level_log.indexed else None
            levels.append((endpoint, zone_name, _link_params(profile),
                           profile, tuple(ingest), level_log, tails))
            zone_name = new_zone
            server_ip = next_ips[0]
        return

    def valid(self) -> bool:
        """Cheap per-resolve check that no captured zone changed shape.

        Population construction can add delegations to the shared root/TLD
        zones between platforms; growth shows up as a new zone or RRset
        count and triggers a re-capture.
        """
        if self.levels is None:
            return False
        for server, zone, n_zones, n_rrsets in self.tokens:
            if not server.online or len(server.zones()) != n_zones or \
                    len(zone._rrsets) != n_rrsets:
                self.capture()
                return self.levels is not None
        return True


class _FastPlan:
    """Precomputed context for the fused prober → platform → CDE corridor.

    :meth:`build` returns ``None`` unless every structural precondition of
    the fused probe path holds for this platform; the engine then keeps the
    real per-message path.  The preconditions are exactly the cases where
    the real path takes no other branch, so the fused replica below can
    reproduce its mutation sequence verbatim.
    """

    __slots__ = (
        "network", "clock", "stats", "prober", "prober_ip", "timeout",
        "retries", "platform", "caches", "n_caches", "cache_selector",
        "egress_selector", "egress_ips", "n_egress", "egress_profiles",
        "prober_profile", "ingress_profile", "server", "query_log",
        "ns_ip", "server_profile",
        # fast-path state
        "base_domain", "network_rng", "rng_gauss", "rng_random",
        "prober_randrange", "platform_randrange", "egress_randrange",
        "prober_getrandbits", "platform_getrandbits", "egress_getrandbits",
        "egress_bits",
        "probe_src", "probe_dst", "server_dst", "egress_src", "fast_links",
        "sel_kind", "sel_state", "sel_bits",
        "log_indexed", "suffix_tails", "zone", "template", "ns_key", "a_key",
        "corridor", "cold", "cold_walk_misses",
    )

    def __init__(self, world: SimulatedInternet, platform: ResolutionPlatform,
                 ingress_profile: LinkProfile, server_profile: LinkProfile,
                 prober_profile: LinkProfile,
                 egress_profiles: list[LinkProfile],
                 cold: Optional[_ColdChain]):
        self.network: Network = world.network
        self.clock = world.network.clock
        self.stats = world.network.stats
        self.prober = world.prober
        self.prober_ip: str = world.prober.prober_ip
        self.timeout: float = world.prober.timeout
        self.retries: int = world.prober.retries
        self.platform = platform
        self.caches: list[DnsCache] = platform.caches
        self.n_caches: int = len(platform.caches)
        self.cache_selector = platform.cache_selector
        self.egress_selector = platform.egress_selector
        self.egress_ips: list[str] = platform.config.egress_ips
        self.n_egress: int = len(platform.config.egress_ips)
        self.egress_profiles = egress_profiles
        self.prober_profile = prober_profile
        self.ingress_profile = ingress_profile
        self.server: AuthoritativeServer = world.cde.server
        self.query_log: QueryLog = world.cde.server.query_log
        self.ns_ip: str = world.cde.ns_ip
        self.server_profile = server_profile

        # -- fast-path precomputation -----------------------------------
        self.base_domain: DnsName = world.cde.base_domain
        rng = self.network._rng
        self.network_rng: Random = rng
        self.rng_gauss: Callable[[float, float], float] = rng.gauss
        self.rng_random: Callable[[], float] = rng.random
        self.prober_randrange: Callable[[int], int] = self.prober.rng.randrange
        self.platform_randrange: Callable[[int], int] = platform.rng.randrange
        # build() gated the selector type, so ``_rng`` is its only state.
        self.egress_randrange: Callable[[int], int] = \
            platform.egress_selector._rng.randrange
        # _check_inline_randbelow proved the getrandbits replay draw-exact.
        self.prober_getrandbits: Callable[[int], int] = \
            self.prober.rng.getrandbits
        self.platform_getrandbits: Callable[[int], int] = \
            platform.rng.getrandbits
        self.egress_getrandbits: Callable[[int], int] = \
            platform.egress_selector._rng.getrandbits
        self.egress_bits: int = self.n_egress.bit_length()
        self.probe_src = _link_params(prober_profile)
        self.probe_dst = _link_params(ingress_profile)
        self.server_dst = _link_params(server_profile)
        self.egress_src = [_link_params(p) for p in egress_profiles]
        self.fast_links: bool = (
            self.probe_src is not None and self.probe_dst is not None
            and self.server_dst is not None
            and all(p is not None for p in self.egress_src))
        # Type-gated cache-selector fast path: every stock selector's
        # ``select`` reduces to a cheap expression of state the corridor
        # holds (corridor queries always arrive from the prober's address).
        # 0 = generic call, 1 = round-robin, 2 = uniform-random (inline
        # randbelow), 3 = qname-hash (per-name memo), 4 = source-ip-hash
        # (one fixed index).
        selector = platform.cache_selector
        selector_type = type(selector)
        self.sel_kind: int = 0
        self.sel_state: Any = None
        self.sel_bits: int = 0
        if selector_type is RoundRobinSelector:
            self.sel_kind = 1
            self.sel_state = selector
        elif selector_type is UniformRandomSelector and _INLINE_RANDBELOW:
            self.sel_kind = 2
            self.sel_state = selector._rng.getrandbits
            self.sel_bits = self.n_caches.bit_length()
        elif selector_type is QnameHashSelector:
            self.sel_kind = 3
            self.sel_state = (selector._salt, {})
        elif selector_type is SourceIpHashSelector:
            self.sel_kind = 4
            self.sel_state = _stable_hash(
                selector._salt, self.prober_ip) % self.n_caches
        log = self.query_log
        self.log_indexed: bool = log.indexed
        # The suffix buckets above any corridor name are those of the base
        # domain's own ancestor chain — fixed list objects, resolved once.
        self.suffix_tails: list[list[int]] = [
            log._by_suffix.setdefault(ancestor, [])
            for ancestor in self.base_domain.ancestors(include_self=True)
        ] if log.indexed else []
        # Seeded from the lane-shared cold chain, or lazily by the first
        # successful slow upstream when the analytic capture declines.
        self.zone: Optional[Zone] = None
        self.template: Optional[_Template] = None
        self.ns_key: tuple[DnsName, RRType] = (self.base_domain, RRType.NS)
        self.a_key: Optional[tuple[DnsName, RRType]] = None
        self.corridor: list[Optional[_CorridorMemo]] = [None] * self.n_caches
        self.cold = cold
        # A cold cache misses _from_cache twice, then once per ancestor in
        # the authority walk; corridor names all have the same depth.
        self.cold_walk_misses: int = 2 + sum(
            1 for _ in self.base_domain.prepend("x").ancestors(
                include_self=True))
        if cold is not None and cold.valid():
            self.zone = cold.zone
            self.template = cold.template
            self.a_key = cold.a_key

    @classmethod
    def build(cls, world: SimulatedInternet, hosted: HostedPlatform,
              cold_chains: Optional[dict[tuple[str, ...], _ColdChain]] = None,
              ) -> Optional["_FastPlan"]:
        network = world.network
        prober = world.prober
        platform = hosted.platform
        config = platform.config
        server = world.cde.server
        if network.injector is not None:
            return None           # faults branch per attempt
        if prober.policy is not None:
            return None           # policy owns the retry loop
        if network.wire_fidelity:
            return None           # every hop must round-trip the codec
        if config.open_to is not None:
            return None           # closed resolver: access check branch
        if config.frontend_dedup_window > 0:
            return None           # dedup table branch in resolve_for_client
        if config.prefetch_horizon > 0:
            return None           # cache hits may trigger upstream refreshes
        if platform._offline_caches:
            return None           # failover branch in _pick_cache
        if type(platform.egress_selector) is not RandomEgressSelector:
            return None           # exactly one rng draw per send call
        if not server.online or server.rrl_rate is not None:
            return None
        if server.query_log.window is not None:
            return None           # inline record() does not replicate eviction
        ns_ip = world.cde.ns_ip
        if network.endpoint_at(ns_ip) is not server:
            return None
        if network.endpoint_at(config.ingress_ips[0]) is not platform:
            return None
        prober_profile = network.profile_of(prober.prober_ip)
        ingress_profile = network.profile_of(config.ingress_ips[0])
        server_profile = network.profile_of(ns_ip)
        egress_profiles = [network.profile_of(ip) for ip in config.egress_ips]
        if prober_profile is None or ingress_profile is None or \
                server_profile is None or any(
                    profile is None for profile in egress_profiles):
            return None
        # The chain from the root hints to the CDE is world state, so one
        # capture is shared by every plan in the lane (keyed by root hints
        # in case specs ever diverge on them).
        root_key = tuple(platform.engine.root_hint_ips)
        cold: Optional[_ColdChain] = None
        if cold_chains is not None:
            cold = cold_chains.get(root_key)
        if cold is None:
            cold = _ColdChain(world, root_key)
            if cold_chains is not None:
                cold_chains[root_key] = cold
        return cls(world, platform, ingress_profile, server_profile,
                   prober_profile,
                   [profile for profile in egress_profiles
                    if profile is not None], cold)


# cdelint: replica-of=repro.net.network.Network._traverse
def _leg_inline(plan: _FastPlan, src: _LegParams, dst: _LegParams
                ) -> tuple[bool, float]:
    """``Network._traverse`` inlined for the gated link models.

    Same draws, same order, same short-circuit: destination latency,
    destination loss, source latency, then source loss only when the
    message was not already lost.  The log-normal draw opens up
    ``Random.gauss`` too (Box–Muller with a spare), manually managing the
    ``gauss_next`` state on the network RNG — :func:`_check_inline_gauss`
    proved the replica state-exact at import time.
    """
    rng = plan.network_rng
    lognormal, median, sigma, rate = dst
    if lognormal:
        z = rng.gauss_next
        rng.gauss_next = None
        if z is None:
            x2pi = rng.random() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - rng.random()))
            z = _cos(x2pi) * g2rad
            rng.gauss_next = _sin(x2pi) * g2rad
        latency = median * exp(z * sigma)
    else:
        latency = median
    lost = rate > 0.0 and plan.rng_random() < rate
    lognormal, median, sigma, rate = src
    if lognormal:
        z = rng.gauss_next
        rng.gauss_next = None
        if z is None:
            x2pi = rng.random() * _TWOPI
            g2rad = _sqrt(-2.0 * _log(1.0 - rng.random()))
            z = _cos(x2pi) * g2rad
            rng.gauss_next = _sin(x2pi) * g2rad
        latency += median * exp(z * sigma)
    else:
        latency += median
    if not lost:
        lost = rate > 0.0 and plan.rng_random() < rate
    return lost, latency


# cdelint: replica-of=repro.net.network.Network._traverse
def _leg_generic(plan: _FastPlan, src: _LegParams, dst: _LegParams
                 ) -> tuple[bool, float]:
    """The same traversal drawing through ``Random.gauss`` itself."""
    gauss = plan.rng_gauss
    lognormal, median, sigma, rate = dst
    latency = median * exp(gauss(0.0, sigma)) if lognormal else median
    lost = rate > 0.0 and plan.rng_random() < rate
    lognormal, median, sigma, rate = src
    latency += median * exp(gauss(0.0, sigma)) if lognormal else median
    if not lost:
        lost = rate > 0.0 and plan.rng_random() < rate
    return lost, latency


_leg: Callable[[_FastPlan, _LegParams, _LegParams], tuple[bool, float]] = (
    _leg_inline if _INLINE_GAUSS else _leg_generic)


# cdelint: replica-of=repro.core.prober.DirectProber.probe
def _fused_probe(plan: _FastPlan, qname: DnsName, qtype: RRType) -> bool:
    """One direct probe through the fused corridor.

    Replicates ``DirectProber.probe`` → ``Network.query`` →
    ``ResolutionPlatform.resolve_for_client`` for the eligible case,
    preserving every RNG draw, clock advance and counter mutation, while
    building no messages.  Returns the delivery status — the only probe
    field the direct techniques consume.
    """
    clock = plan.clock
    stats = plan.stats
    plan.prober.queries_sent += 1
    # The outer query's message id is drawn but observed by no one (the
    # platform does not log client ids); the draw itself must still happen
    # to keep the "prober" stream aligned with the real path.
    if _INLINE_RANDBELOW:
        getrandbits = plan.prober_getrandbits
        while getrandbits(17) >= 65536:
            pass
    else:
        plan.prober_randrange(1 << 16)
    timeout = plan.timeout
    fast = plan.fast_links
    attempts = 0
    while attempts <= plan.retries:
        attempts += 1
        if attempts > 1:
            stats.retransmissions += 1
        sent_at = clock._now
        stats.messages_sent += 1
        if fast:
            assert plan.probe_src is not None and plan.probe_dst is not None
            lost, latency = _leg(plan, plan.probe_src, plan.probe_dst)
        else:
            lost, latency = plan.network._traverse(plan.prober_profile,
                                                   plan.ingress_profile)
        if lost:
            stats.requests_lost += 1
            clock._now = sent_at + timeout      # advance_to, never backward
            continue
        clock._now = sent_at + latency
        # The platform answers every eligible query (a SERVFAIL is still a
        # response), so the silent-drop branch cannot trigger here.
        _fused_resolve(plan, qname, qtype)
        if fast:
            assert plan.probe_src is not None and plan.probe_dst is not None
            lost, latency = _leg(plan, plan.probe_src, plan.probe_dst)
        else:
            lost, latency = plan.network._traverse(plan.prober_profile,
                                                   plan.ingress_profile)
        if lost:
            stats.responses_lost += 1
            deadline = sent_at + timeout
            if deadline > clock._now:           # max(now, deadline)
                clock._now = deadline
            continue
        clock._now += latency
        stats.messages_delivered += 1
        return True
    stats.timeouts += 1
    return False


# cdelint: replica-of=repro.core.prober.DirectProber.probe
def _fused_probe_flat(plan: _FastPlan, qname: DnsName, qtype: RRType) -> bool:
    """:func:`_fused_probe` with the probe legs fully flattened.

    One frame for the prober's attempt loop: the link-model draws run as
    the proven inline replicas with the leg parameters unpacked once
    before the loop (no per-leg call, no tuple packing).  Only selected
    when :data:`_FULL_FAST` holds and the plan's links are the gated
    models; the draw sequence is byte-for-byte the one
    :func:`_fused_probe` + :func:`_leg_inline` produce.
    """
    clock = plan.clock
    stats = plan.stats
    rng = plan.network_rng
    rng_random = rng.random
    plan.prober.queries_sent += 1
    # Discarded prober message-id draw (see _fused_probe).
    getrandbits = plan.prober_getrandbits
    while getrandbits(17) >= 65536:
        pass
    timeout = plan.timeout
    assert plan.probe_dst is not None and plan.probe_src is not None
    dst_ln, dst_med, dst_sig, dst_rate = plan.probe_dst
    src_ln, src_med, src_sig, src_rate = plan.probe_src
    retries = plan.retries
    attempts = 0
    while attempts <= retries:
        attempts += 1
        if attempts > 1:
            stats.retransmissions += 1
        sent_at = clock._now
        stats.messages_sent += 1
        # Request leg: destination draw first, then source (as _traverse).
        if dst_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            latency = dst_med * exp(z * dst_sig)
        else:
            latency = dst_med
        lost = dst_rate > 0.0 and rng_random() < dst_rate
        if src_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            latency += src_med * exp(z * src_sig)
        else:
            latency += src_med
        if not lost:
            lost = src_rate > 0.0 and rng_random() < src_rate
        if lost:
            stats.requests_lost += 1
            clock._now = sent_at + timeout      # advance_to, never backward
            continue
        clock._now = sent_at + latency
        _fused_resolve_flat(plan, qname, qtype)
        # Response leg: same draw order.
        if dst_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            latency = dst_med * exp(z * dst_sig)
        else:
            latency = dst_med
        lost = dst_rate > 0.0 and rng_random() < dst_rate
        if src_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            latency += src_med * exp(z * src_sig)
        else:
            latency += src_med
        if not lost:
            lost = src_rate > 0.0 and rng_random() < src_rate
        if lost:
            stats.responses_lost += 1
            deadline = sent_at + timeout
            if deadline > clock._now:           # max(now, deadline)
                clock._now = deadline
            continue
        clock._now += latency
        stats.messages_delivered += 1
        return True
    stats.timeouts += 1
    return False


# cdelint: replica-of=repro.resolver.platform.ResolutionPlatform.resolve_for_client
def _fused_resolve_flat(plan: _FastPlan, qname: DnsName,
                        qtype: RRType) -> None:
    """:func:`_fused_resolve` with the warm corridor fully flattened.

    Selector dispatch, membership gate, memo validation, the CDE
    transaction's draws/legs/log record and the answer put all run in this
    one frame; every rare shape (chain hit, cold cache, memo invalidation,
    structural surprise) delegates to the structured helpers from exactly
    the point the real code would reach them.  A lost transaction replays
    the real path's observable effect (timeout counted, resolution marked
    failed, no answer stored) without constructing the swallowed
    :class:`ResolutionError`.
    """
    platform = plan.platform
    pstats = platform.stats
    pstats.queries += 1
    platform._sequence += 1
    sel_kind = plan.sel_kind
    if sel_kind == 2:       # uniform-random: inline randbelow on its rng
        sel_rand = plan.sel_state
        n_caches = plan.n_caches
        sel_bits = plan.sel_bits
        cache_index = sel_rand(sel_bits)
        while cache_index >= n_caches:
            cache_index = sel_rand(sel_bits)
    elif sel_kind == 4:     # source-ip-hash: the prober is the only client
        cache_index = plan.sel_state
    elif sel_kind == 1:     # round-robin: arrival counter
        selector = plan.sel_state
        cache_index = selector._next % plan.n_caches
        selector._next += 1
    elif sel_kind == 3:     # qname-hash: one digest per distinct name
        salt, memo = plan.sel_state
        cache_index = memo.get(qname)
        if cache_index is None:
            memo[qname] = cache_index = _stable_hash(
                salt, str(qname).lower()) % plan.n_caches
    else:
        context = _obj_new(QueryContext)
        _obj_setattr(context, "__dict__",
                     {"qname": qname, "qtype": qtype,
                      "src_ip": plan.prober_ip,
                      "sequence": platform._sequence})
        cache_index = plan.cache_selector.select(context, plan.n_caches)
    cache = plan.caches[cache_index]
    clock = plan.clock
    clock._now += 0.0002        # intra-platform hop, as in resolve_for_client
    centries = cache._entries
    entry = centries.get((qname, qtype))
    if entry is not None:
        now = clock._now
        if now < entry.expires_at:
            # Live entry at the exact key: _answer_from's first get hits
            # (any kind ends the chain) — touch + both hit counters.
            entry.hits += 1
            entry.last_used = now
            cache.stats.hits += 1
            pstats.cache_hits += 1
            return
        _fused_resolve_chain(plan, cache, cache_index, qname, qtype)
        return
    if ((qname, _ANY) in centries
            or (qname, _CNAME) in centries
            or (qname, _NS) in centries):
        _fused_resolve_chain(plan, cache, cache_index, qname, qtype)
        return
    # Provable miss (see _fused_resolve): replay _answer_from's stats.
    cache.stats.misses += 2 if qtype is not _CNAME else 1
    pstats.cache_misses += 1
    template = plan.template
    memo2 = (plan.corridor[cache_index]
             if template is not None and qtype is RRType.A else None)
    warm = False
    if memo2 is not None:
        ns_entry, a_entry = memo2
        now = clock._now
        a_key = plan.a_key
        zone = plan.zone
        warm = (a_key is not None and zone is not None
                and centries.get(plan.ns_key) is ns_entry
                and now < ns_entry.expires_at
                and centries.get(a_key) is a_entry
                and now < a_entry.expires_at
                and zone._rrsets.get(template[0]) is template[1]
                and len(template[1].records) == template[2])
    if not warm:
        try:
            if not _fused_upstream(plan, cache, cache_index, qname, qtype):
                platform._resolve_upstream(cache, qname, qtype)
        except ResolutionError:
            pstats.failures += 1
        return
    # -- warm corridor: stat replay (see _fused_upstream) ------------------
    cstats = cache.stats
    cstats.misses += 3
    ns_entry.hits += 1
    ns_entry.last_used = now
    a_entry.hits += 1
    a_entry.last_used = now
    cstats.hits += 2
    # -- the CDE transaction, flattened (see _fused_cde_transaction) -------
    stats = plan.stats
    rng = plan.network_rng
    rng_random = rng.random
    pget = plan.platform_getrandbits
    msg_id = pget(17)
    while msg_id >= 65536:
        msg_id = pget(17)
    eget = plan.egress_getrandbits
    n_egress = plan.n_egress
    egress_bits = plan.egress_bits
    egress_index = eget(egress_bits)
    while egress_index >= n_egress:
        egress_index = eget(egress_bits)
    egress_ip = plan.egress_ips[egress_index]
    log = plan.query_log
    e_src = plan.egress_src[egress_index]
    s_dst = plan.server_dst
    assert e_src is not None and s_dst is not None
    s_ln, s_med, s_sig, s_rate = s_dst
    e_ln, e_med, e_sig, e_rate = e_src
    delivered = False
    t_attempts = 0
    while t_attempts <= _DEFAULT_RETRIES:
        t_attempts += 1
        if t_attempts > 1:
            stats.retransmissions += 1
        t_sent = clock._now
        stats.messages_sent += 1
        # Request leg: server-destination draw first, then egress source.
        if s_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            t_latency = s_med * exp(z * s_sig)
        else:
            t_latency = s_med
        t_lost = s_rate > 0.0 and rng_random() < s_rate
        if e_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            t_latency += e_med * exp(z * e_sig)
        else:
            t_latency += e_med
        if not t_lost:
            t_lost = e_rate > 0.0 and rng_random() < e_rate
        if t_lost:
            stats.requests_lost += 1
            clock._now = t_sent + _DEFAULT_TIMEOUT
            continue
        clock._now = t_sent + t_latency
        # The server logs every attempt whose request leg survived.
        timestamp = clock._now
        entry = _obj_new(LogEntry)
        _obj_setattr(entry, "__dict__",
                     {"timestamp": timestamp, "src_ip": egress_ip,
                      "qname": qname, "qtype": qtype, "msg_id": msg_id})
        if plan.log_indexed:
            position = len(log._entries)
            timestamps = log._timestamps
            if timestamps and timestamp < timestamps[-1]:
                log._monotonic = False
            timestamps.append(timestamp)
            bucket = log._by_qname.get(qname)
            if bucket is None:
                log._by_qname[qname] = bucket = []
            bucket.append(position)
            own = log._by_suffix.get(qname)
            if own is None:
                log._by_suffix[qname] = own = []
            own.append(position)
            for tail in plan.suffix_tails:
                tail.append(position)
        log._entries.append(entry)
        # Response leg.
        if s_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            t_latency = s_med * exp(z * s_sig)
        else:
            t_latency = s_med
        t_lost = s_rate > 0.0 and rng_random() < s_rate
        if e_ln:
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                x2pi = rng_random() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - rng_random()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            t_latency += e_med * exp(z * e_sig)
        else:
            t_latency += e_med
        if not t_lost:
            t_lost = e_rate > 0.0 and rng_random() < e_rate
        if t_lost:
            stats.responses_lost += 1
            deadline = t_sent + _DEFAULT_TIMEOUT
            if deadline > clock._now:
                clock._now = deadline
            continue
        clock._now += t_latency
        stats.messages_delivered += 1
        delivered = True
        break
    if not delivered:
        # The real path raises ResolutionError here and resolve_for_client
        # swallows it; the observable effect is just these two counters.
        stats.timeouts += 1
        pstats.failures += 1
        return
    pstats.upstream_queries += 1
    # -- answer put (see _fused_cde_transaction) ---------------------------
    ingested_at = clock._now
    _, wset, _, wrecords, ttl0 = template
    clamped = cache.clamp_ttl(ttl0)
    if clamped >= 0:
        records = []
        for record in wrecords:
            owned = _obj_new(ResourceRecord)
            _obj_setattr(owned, "__dict__",
                         {"name": qname, "rtype": record.rtype,
                          "ttl": clamped, "rdata": record.rdata,
                          "rclass": record.rclass})
            records.append(owned)
        stored = _obj_new(RRSet)
        stored.__dict__ = {"name": qname, "rtype": wset.rtype,
                           "rclass": wset.rclass, "records": records}
        centry = _obj_new(CacheEntry)
        centry.__dict__ = {"name": qname, "rtype": wset.rtype,
                           "kind": _POSITIVE, "stored_at": ingested_at,
                           "expires_at": ingested_at + clamped,
                           "rrset": stored, "soa": None, "hits": 0,
                           "last_used": ingested_at}
        cache._insert(centry, ingested_at)
        return
    stored = RRSet(qname, wset.rtype, wset.rclass)
    stored.records = [
        ResourceRecord(qname, record.rtype, clamped, record.rdata,
                       record.rclass)
        for record in wrecords
    ]
    cache._insert(CacheEntry(
        name=qname,
        rtype=wset.rtype,
        kind=EntryKind.POSITIVE,
        stored_at=ingested_at,
        expires_at=ingested_at + clamped,
        rrset=stored,
    ), ingested_at)


# cdelint: replica-of=repro.resolver.platform.ResolutionPlatform.resolve_for_client
def _fused_resolve(plan: _FastPlan, qname: DnsName, qtype: RRType) -> None:
    """``resolve_for_client`` minus response assembly (nobody reads it)."""
    platform = plan.platform
    pstats = platform.stats
    pstats.queries += 1
    platform._sequence += 1
    sel_kind = plan.sel_kind
    if sel_kind == 2:       # uniform-random: inline randbelow on its rng
        getrandbits = plan.sel_state
        n_caches = plan.n_caches
        sel_bits = plan.sel_bits
        cache_index = getrandbits(sel_bits)
        while cache_index >= n_caches:
            cache_index = getrandbits(sel_bits)
    elif sel_kind == 4:     # source-ip-hash: the prober is the only client
        cache_index = plan.sel_state
    elif sel_kind == 1:     # round-robin: arrival counter
        selector = plan.sel_state
        cache_index = selector._next % plan.n_caches
        selector._next += 1
    elif sel_kind == 3:     # qname-hash: one digest per distinct name
        salt, memo = plan.sel_state
        cache_index = memo.get(qname)
        if cache_index is None:
            memo[qname] = cache_index = _stable_hash(
                salt, str(qname).lower()) % plan.n_caches
    else:
        if _FAST_LAYOUT:
            # Layout-checked __dict__ construction
            # (see _check_dataclass_layout).
            context = _obj_new(QueryContext)
            _obj_setattr(context, "__dict__",
                         {"qname": qname, "qtype": qtype,
                          "src_ip": plan.prober_ip,
                          "sequence": platform._sequence})
        else:
            context = QueryContext(qname=qname, qtype=qtype,
                                   src_ip=plan.prober_ip,
                                   sequence=platform._sequence)
        cache_index = plan.cache_selector.select(context, plan.n_caches)
    cache = plan.caches[cache_index]
    clock = plan.clock
    clock._now += 0.0002        # intra-platform hop, as in resolve_for_client
    centries = cache._entries
    # Corridor names are freshly minted, so the chain gets at the name are
    # provable misses; verify the keys really are absent (this covers the
    # RFC 2308 NXDOMAIN check at (name, ANY) too) and bump the exact stats
    # the real gets would.  Any surprise → generic chain walk.
    if ((qname, qtype) not in centries
            and (qname, RRType.ANY) not in centries
            and (qname, RRType.CNAME) not in centries
            and (qname, RRType.NS) not in centries):
        # _answer_from's chain get + CNAME alias get (when qtype != CNAME).
        cache.stats.misses += 2 if qtype != RRType.CNAME else 1
        pstats.cache_misses += 1
        try:
            if not _fused_upstream(plan, cache, cache_index, qname, qtype):
                # Structural surprise: run the real resolution from exactly
                # the point the real code would (no mutations happened yet).
                # Re-serving the resolved chain through the cache is pure.
                platform._resolve_upstream(cache, qname, qtype)
        except ResolutionError:
            pstats.failures += 1
        return
    _fused_resolve_chain(plan, cache, cache_index, qname, qtype)


# cdelint: replica-of=repro.resolver.platform.ResolutionPlatform._answer_from
def _fused_resolve_chain(plan: _FastPlan, cache: DnsCache, cache_index: int,
                         qname: DnsName, qtype: RRType) -> None:
    """The generic CNAME-chain walk of ``_answer_from`` (rare path)."""
    platform = plan.platform
    pstats = platform.stats
    now = plan.clock._now
    current = qname
    for _ in range(MAX_ANSWER_CHAIN):
        entry = cache.get(current, qtype, now)
        if entry is not None:
            # Positive, NXDOMAIN and NODATA hits all end the chain; aging
            # the RRset for the response is pure and the prefetch hook is
            # gated off (prefetch_horizon == 0), so nothing else mutates.
            pstats.cache_hits += 1
            return
        if qtype != RRType.CNAME:
            alias = cache.get(current, RRType.CNAME, now)
            if alias is not None and alias.kind == EntryKind.POSITIVE:
                pstats.cache_hits += 1
                assert alias.rrset is not None
                target = alias.rrset.records[0].rdata
                assert isinstance(target, CnameRdata)
                current = target.target
                continue
        pstats.cache_misses += 1
        try:
            if not _fused_upstream(plan, cache, cache_index, current, qtype):
                platform._resolve_upstream(cache, current, qtype)
        except ResolutionError:
            pstats.failures += 1
        return
    return  # chain too long: SERVFAIL without a failures increment


# cdelint: replica-of=repro.resolver.platform.ResolutionPlatform._resolve_upstream
def _fused_upstream(plan: _FastPlan, cache: DnsCache, cache_index: int,
                    qname: DnsName, qtype: RRType) -> bool:
    """Fused ``_resolve_upstream`` for the single-authority CDE case.

    Returns ``False`` — having mutated nothing — when the cached authority
    walk would not land on exactly the CDE nameserver with a one-lookup
    authoritative answer; the caller then takes the generic path.  Raises
    :class:`ResolutionError` (like the real path) when every attempt to
    reach the server is lost.
    """
    now = plan.clock._now
    template = plan.template
    if template is not None and qtype is RRType.A:
        memo = plan.corridor[cache_index]
        if memo is not None:
            ns_entry, a_entry = memo
            centries = cache._entries
            a_key = plan.a_key
            zone = plan.zone
            assert a_key is not None and zone is not None
            # The memo stands while both corridor entries are the very
            # objects cached before and still live; the template while the
            # wildcard RRset object is unchanged.  Any replacement, expiry
            # or added record fails the check → slow path re-derives.
            if (centries.get(plan.ns_key) is ns_entry
                    and now < ns_entry.expires_at
                    and centries.get(a_key) is a_entry
                    and now < a_entry.expires_at
                    and zone._rrsets.get(template[0]) is template[1]
                    and len(template[1].records) == template[2]):
                # The warm corridor: replay the exact stat/recency mutations
                # of _from_cache (two misses at the fresh name),
                # _closest_known_authority (miss at the name's own NS key,
                # then hits on the memoized (base, NS) and (ns, A) entries)
                # and the answer put — without the dictionary walks, zone
                # lookup or intermediate RRSet copies.
                cstats = cache.stats
                cstats.misses += 3
                ns_entry.hits += 1
                ns_entry.last_used = now
                a_entry.hits += 1
                a_entry.last_used = now
                cstats.hits += 2
                _fused_cde_transaction(plan, cache, qname, qtype, template)
                return True
        elif not cache._entries:
            chain = plan.cold
            if chain is not None and chain.valid():
                # A re-capture inside valid() may have refreshed the chain;
                # re-sync the plan's view before replaying.
                template = chain.template
                zone = chain.zone
                if (template is not None and zone is not None
                        and zone._rrsets.get(template[0]) is template[1]
                        and len(template[1].records) == template[2]):
                    plan.zone = zone
                    plan.template = template
                    plan.a_key = chain.a_key
                    return _fused_upstream_cold(plan, cache, cache_index,
                                                qname, qtype, template)
    return _fused_upstream_slow(plan, cache, cache_index, qname, qtype)


def _fused_upstream_cold(plan: _FastPlan, cache: DnsCache, cache_index: int,
                         qname: DnsName, qtype: RRType,
                         template: _Template) -> bool:
    """Replay the captured referral chain into an empty cache.

    Every cache lookup on an empty cache is a miss, so the _from_cache and
    authority-walk gets collapse to one counter bump; the per-hop draws,
    clock advances, server-log records and referral-RRset puts then replay
    the real iterative descent exactly (glue answers every hop, so no
    intermediate cache reads happen).  Finishing warms the corridor memo
    directly — the slow path never runs for this cache.
    """
    cache.stats.misses += plan.cold_walk_misses
    clock = plan.clock
    stats = plan.stats
    fast = plan.fast_links
    chain = plan.cold
    assert chain is not None and chain.levels is not None
    for (server, zone_name, dst_params, dst_profile, ingest, level_log,
         tails) in chain.levels:
        if _INLINE_RANDBELOW:
            getrandbits = plan.platform_getrandbits
            msg_id = getrandbits(17)
            while msg_id >= 65536:
                msg_id = getrandbits(17)
            getrandbits = plan.egress_getrandbits
            egress_index = getrandbits(plan.egress_bits)
            while egress_index >= plan.n_egress:
                egress_index = getrandbits(plan.egress_bits)
        else:
            msg_id = plan.platform_randrange(1 << 16)
            egress_index = plan.egress_randrange(plan.n_egress)
        egress_ip = plan.egress_ips[egress_index]
        src_params = plan.egress_src[egress_index]
        delivered = False
        attempts = 0
        while attempts <= _DEFAULT_RETRIES:
            attempts += 1
            if attempts > 1:
                stats.retransmissions += 1
            sent_at = clock._now
            stats.messages_sent += 1
            if fast and dst_params is not None:
                assert src_params is not None
                lost, latency = _leg(plan, src_params, dst_params)
            else:
                lost, latency = plan.network._traverse(
                    plan.egress_profiles[egress_index], dst_profile)
            if lost:
                stats.requests_lost += 1
                clock._now = sent_at + _DEFAULT_TIMEOUT
                continue
            clock._now = sent_at + latency
            # Inlined QueryLog.record against this level's log; the suffix
            # buckets above the fresh qname are the tail lists captured
            # with the chain.
            timestamp = clock._now
            if _FAST_LAYOUT:
                entry = _obj_new(LogEntry)
                _obj_setattr(entry, "__dict__",
                             {"timestamp": timestamp, "src_ip": egress_ip,
                              "qname": qname, "qtype": qtype,
                              "msg_id": msg_id})
            else:
                entry = LogEntry(timestamp=timestamp, src_ip=egress_ip,
                                 qname=qname, qtype=qtype, msg_id=msg_id)
            if tails is not None:
                position = len(level_log._entries)
                timestamps = level_log._timestamps
                if timestamps and timestamp < timestamps[-1]:
                    level_log._monotonic = False
                timestamps.append(timestamp)
                bucket = level_log._by_qname.get(qname)
                if bucket is None:
                    level_log._by_qname[qname] = bucket = []
                bucket.append(position)
                own = level_log._by_suffix.get(qname)
                if own is None:
                    level_log._by_suffix[qname] = own = []
                own.append(position)
                for tail in tails:
                    tail.append(position)
                level_log._entries.append(entry)
            else:
                level_log.record(entry)
            if fast and dst_params is not None:
                assert src_params is not None
                lost, latency = _leg(plan, src_params, dst_params)
            else:
                lost, latency = plan.network._traverse(
                    plan.egress_profiles[egress_index], dst_profile)
            if lost:
                stats.responses_lost += 1
                deadline = sent_at + _DEFAULT_TIMEOUT
                if deadline > clock._now:
                    clock._now = deadline
                continue
            clock._now += latency
            stats.messages_delivered += 1
            delivered = True
            break
        if not delivered:
            stats.timeouts += 1
            raise ResolutionError(
                f"no authority for {qname} responded (zone {zone_name})")
        plan.platform.stats.upstream_queries += 1
        ingested_at = clock._now
        for rrset in ingest:
            # put_rrset, layout-checked: clamp, re-own the records at the
            # clamped TTL (with_ttl keeps each record's own name) and
            # insert the positive entry.
            clamped = cache.clamp_ttl(rrset.ttl)
            if _FAST_LAYOUT and clamped >= 0:
                records = []
                for record in rrset.records:
                    owned = _obj_new(ResourceRecord)
                    _obj_setattr(owned, "__dict__",
                                 {"name": record.name, "rtype": record.rtype,
                                  "ttl": clamped, "rdata": record.rdata,
                                  "rclass": record.rclass})
                    records.append(owned)
                clone = _obj_new(RRSet)
                clone.__dict__ = {"name": rrset.name, "rtype": rrset.rtype,
                                  "rclass": rrset.rclass, "records": records}
                centry = _obj_new(CacheEntry)
                centry.__dict__ = {"name": rrset.name, "rtype": rrset.rtype,
                                   "kind": _POSITIVE,
                                   "stored_at": ingested_at,
                                   "expires_at": ingested_at + clamped,
                                   "rrset": clone, "soa": None, "hits": 0,
                                   "last_used": ingested_at}
                cache._insert(centry, ingested_at)
            else:
                cache.put_rrset(rrset, ingested_at)
    _fused_cde_transaction(plan, cache, qname, qtype, template)
    # The referral puts above created this cache's corridor entries.
    ns_entry = cache._entries.get(plan.ns_key)
    a_key = plan.a_key
    if ns_entry is not None and a_key is not None:
        a_entry = cache._entries.get(a_key)
        if a_entry is not None:
            plan.corridor[cache_index] = (ns_entry, a_entry)
    return True


def _fused_cde_transaction(plan: _FastPlan, cache: DnsCache, qname: DnsName,
                           qtype: RRType, template: _Template) -> None:
    """One egress transaction to the CDE nameserver plus the answer put.

    Raises :class:`ResolutionError` (like the real path) when every
    attempt is lost.
    """
    # _try_servers: shuffling the one-candidate list draws nothing; the
    # query-id draw and the per-send egress draw happen in this order, once
    # per send call (retransmissions reuse both).
    if _INLINE_RANDBELOW:
        getrandbits = plan.platform_getrandbits
        msg_id = getrandbits(17)
        while msg_id >= 65536:
            msg_id = getrandbits(17)
        getrandbits = plan.egress_getrandbits
        n_egress = plan.n_egress
        egress_bits = plan.egress_bits
        egress_index = getrandbits(egress_bits)
        while egress_index >= n_egress:
            egress_index = getrandbits(egress_bits)
    else:
        msg_id = plan.platform_randrange(1 << 16)
        egress_index = plan.egress_randrange(plan.n_egress)
    egress_ip = plan.egress_ips[egress_index]

    clock = plan.clock
    stats = plan.stats
    log = plan.query_log
    fast = plan.fast_links
    src_params = plan.egress_src[egress_index]
    delivered = False
    attempts = 0
    while attempts <= _DEFAULT_RETRIES:
        attempts += 1
        if attempts > 1:
            stats.retransmissions += 1
        sent_at = clock._now
        stats.messages_sent += 1
        if fast:
            assert src_params is not None and plan.server_dst is not None
            lost, latency = _leg(plan, src_params, plan.server_dst)
        else:
            lost, latency = plan.network._traverse(
                plan.egress_profiles[egress_index], plan.server_profile)
        if lost:
            stats.requests_lost += 1
            clock._now = sent_at + _DEFAULT_TIMEOUT
            continue
        clock._now = sent_at + latency
        # AuthoritativeServer.handle_message logs every attempt whose
        # request leg survived — including those whose response is then
        # lost.  Inlined QueryLog.record: the suffix buckets above the
        # fresh qname are the precomputed base-domain tail lists.
        timestamp = clock._now
        if _FAST_LAYOUT:
            entry = _obj_new(LogEntry)
            _obj_setattr(entry, "__dict__",
                         {"timestamp": timestamp, "src_ip": egress_ip,
                          "qname": qname, "qtype": qtype, "msg_id": msg_id})
        else:
            entry = LogEntry(timestamp=timestamp, src_ip=egress_ip,
                             qname=qname, qtype=qtype, msg_id=msg_id)
        if plan.log_indexed:
            position = len(log._entries)
            timestamps = log._timestamps
            if timestamps and timestamp < timestamps[-1]:
                log._monotonic = False
            timestamps.append(timestamp)
            bucket = log._by_qname.get(qname)
            if bucket is None:
                log._by_qname[qname] = bucket = []
            bucket.append(position)
            own = log._by_suffix.get(qname)
            if own is None:
                log._by_suffix[qname] = own = []
            own.append(position)
            for tail in plan.suffix_tails:
                tail.append(position)
        log._entries.append(entry)
        if fast:
            assert src_params is not None and plan.server_dst is not None
            lost, latency = _leg(plan, src_params, plan.server_dst)
        else:
            lost, latency = plan.network._traverse(
                plan.egress_profiles[egress_index], plan.server_profile)
        if lost:
            stats.responses_lost += 1
            deadline = sent_at + _DEFAULT_TIMEOUT
            if deadline > clock._now:
                clock._now = deadline
            continue
        clock._now += latency
        stats.messages_delivered += 1
        delivered = True
        break
    if not delivered:
        stats.timeouts += 1
        zone = plan.zone
        assert zone is not None
        raise ResolutionError(
            f"no authority for {qname} responded (zone {zone.origin})")
    plan.platform.stats.upstream_queries += 1
    # _ingest_response + put_rrset, collapsed: synthesize the wildcard
    # answer re-owned to qname with the TTL already clamped — exactly the
    # RRSet ``group_rrsets(lookup.records) → put_rrset`` would store.
    ingested_at = clock._now
    _, wset, _, wrecords, ttl0 = template
    clamped = cache.clamp_ttl(ttl0)
    if _FAST_LAYOUT and clamped >= 0:
        # Layout-checked __dict__ construction; the real path would raise
        # on a negative TTL, so that (unreachable) case keeps it.
        records = []
        for record in wrecords:
            owned = _obj_new(ResourceRecord)
            _obj_setattr(owned, "__dict__",
                         {"name": qname, "rtype": record.rtype,
                          "ttl": clamped, "rdata": record.rdata,
                          "rclass": record.rclass})
            records.append(owned)
        stored = _obj_new(RRSet)
        stored.__dict__ = {"name": qname, "rtype": wset.rtype,
                           "rclass": wset.rclass, "records": records}
        centry = _obj_new(CacheEntry)
        centry.__dict__ = {"name": qname, "rtype": wset.rtype,
                           "kind": _POSITIVE, "stored_at": ingested_at,
                           "expires_at": ingested_at + clamped,
                           "rrset": stored, "soa": None, "hits": 0,
                           "last_used": ingested_at}
        cache._insert(centry, ingested_at)
        return
    stored = RRSet(qname, wset.rtype, wset.rclass)
    stored.records = [
        ResourceRecord(qname, record.rtype, clamped, record.rdata,
                       record.rclass)
        for record in wrecords
    ]
    cache._insert(CacheEntry(
        name=qname,
        rtype=wset.rtype,
        kind=EntryKind.POSITIVE,
        stored_at=ingested_at,
        expires_at=ingested_at + clamped,
        rrset=stored,
    ), ingested_at)


def _fused_upstream_slow(plan: _FastPlan, cache: DnsCache, cache_index: int,
                         qname: DnsName, qtype: RRType) -> bool:
    """Full fused upstream: gate with peeks, commit with real calls.

    This is the path every (platform, cache) pair takes while cold; on
    success it memoizes the corridor entries and the wildcard template so
    subsequent probes take :func:`_fused_upstream_fast`.
    """
    clock = plan.clock
    now = clock._now

    # -- pure gate: replay _closest_known_authority with stat-free peeks.
    authority_ips: list[str] = []
    for zone_name in qname.ancestors(include_self=True):
        ns_entry = cache.peek(zone_name, RRType.NS, now)
        if ns_entry is None or ns_entry.kind != EntryKind.POSITIVE:
            continue
        ips: list[str] = []
        assert ns_entry.rrset is not None
        for record in ns_entry.rrset:
            if not isinstance(record.rdata, NsRdata):
                return False
            address_entry = cache.peek(record.rdata.nsdname, RRType.A, now)
            if address_entry is not None and \
                    address_entry.kind == EntryKind.POSITIVE:
                assert address_entry.rrset is not None
                for a_record in address_entry.rrset:
                    ips.append(a_record.rdata.address)  # type: ignore[attr-defined]
        if ips:
            authority_ips = ips
            break
    if authority_ips != [plan.ns_ip]:
        return False            # cold cache or unexpected authority set

    # -- pure gate: the server must answer this in one authoritative lookup.
    zone = plan.server.zone_for(qname)
    if zone is None:
        return False
    lookup = zone.lookup(qname, qtype)
    if lookup.kind != LookupKind.ANSWER or not lookup.records:
        return False

    # -- committed: replay the real mutation sequence, in order. --

    # IterativeResolver._from_cache — the caller just missed, so both gets
    # miss again; the calls must still happen (they move cache stats).
    cache.get(qname, qtype, now)
    if qtype != RRType.CNAME:
        cache.get(qname, RRType.CNAME, now)
    # _closest_known_authority again, now with the mutating gets (stats,
    # recency touches, expired-entry deletion).  peek and get agree on
    # hit-or-miss at the same ``now``, so the walk stops where the gate did.
    walk_zone_name: Optional[DnsName] = None
    walk_ns_entry: Optional[CacheEntry] = None
    walk_a_entry: Optional[CacheEntry] = None
    walk_a_entries = 0
    for zone_name in qname.ancestors(include_self=True):
        ns_entry2 = cache.get(zone_name, RRType.NS, now)
        if ns_entry2 is None or ns_entry2.kind != EntryKind.POSITIVE:
            continue
        walk_ips: list[str] = []
        assert ns_entry2.rrset is not None
        for record in ns_entry2.rrset:
            assert isinstance(record.rdata, NsRdata)
            address_entry2 = cache.get(record.rdata.nsdname, RRType.A, now)
            if address_entry2 is not None and \
                    address_entry2.kind == EntryKind.POSITIVE:
                assert address_entry2.rrset is not None
                for a_record2 in address_entry2.rrset:
                    walk_ips.append(
                        a_record2.rdata.address)  # type: ignore[attr-defined]
                walk_a_entry = address_entry2
                walk_a_entries += 1
        if walk_ips:
            walk_zone_name = zone_name
            walk_ns_entry = ns_entry2
            break

    # _try_servers: shuffling the one-candidate list draws nothing; the
    # query-id draw and the per-send egress draw happen in this order, once
    # per send call (retransmissions reuse both).
    msg_id = plan.platform.rng.randrange(1 << 16)
    egress_index = plan.egress_selector.select(plan.ns_ip, plan.n_egress)
    egress_ip = plan.egress_ips[egress_index]
    src_profile = plan.egress_profiles[egress_index]
    network = plan.network
    stats = plan.stats
    delivered = False
    attempts = 0
    while attempts <= _DEFAULT_RETRIES:
        attempts += 1
        if attempts > 1:
            stats.retransmissions += 1
        sent_at = clock.now
        stats.messages_sent += 1
        lost, request_latency = network._traverse(src_profile,
                                                  plan.server_profile)
        if lost:
            stats.requests_lost += 1
            clock.advance_to(sent_at + _DEFAULT_TIMEOUT)
            continue
        clock.advance(request_latency)
        # AuthoritativeServer.handle_message logs every attempt whose
        # request leg survived — including those whose response is then
        # lost: the server did its work either way.  Retransmissions share
        # (src, msg_id, question), so transaction counting dedups them.
        plan.query_log.record(LogEntry(
            timestamp=clock.now, src_ip=egress_ip,
            qname=qname, qtype=qtype, msg_id=msg_id,
        ))
        lost, response_latency = network._traverse(src_profile,
                                                   plan.server_profile)
        if lost:
            stats.responses_lost += 1
            clock.advance_to(max(clock.now,
                                 sent_at + _DEFAULT_TIMEOUT))
            continue
        clock.advance(response_latency)
        stats.messages_delivered += 1
        delivered = True
        break
    if not delivered:
        stats.timeouts += 1
        raise ResolutionError(
            f"no authority for {qname} responded (zone {zone.origin})")
    plan.platform.stats.upstream_queries += 1
    # _ingest_response: cache exactly what the server's answer carries.
    # The zone synthesizes fresh (content-identical) records per lookup, so
    # the gate's lookup stands in for the answered attempt's.
    ingested_at = clock.now
    for rrset in group_rrsets(lookup.records):
        cache.put_rrset(rrset, ingested_at)

    # -- memoize the warm corridor for _fused_upstream_fast ----------------
    # Eligible only in the canonical shape: the walk stopped at the base
    # domain (the first ancestor every fresh corridor name shares), on a
    # single-record NS set resolved through exactly one address entry.
    if (walk_zone_name == plan.base_domain and walk_ns_entry is not None
            and walk_a_entry is not None and walk_a_entries == 1
            and len(walk_ns_entry.rrset.records) == 1  # type: ignore[union-attr]
            and authority_ips == [plan.ns_ip]):
        first = walk_ns_entry.rrset.records[0]  # type: ignore[union-attr]
        assert isinstance(first.rdata, NsRdata)
        plan.a_key = (first.rdata.nsdname, RRType.A)
        plan.corridor[cache_index] = (walk_ns_entry, walk_a_entry)
    if plan.template is None and qtype is RRType.A and \
            zone.origin == plan.base_domain:
        wkey = (plan.base_domain.prepend(WILDCARD_LABEL), RRType.A)
        wset = zone._rrsets.get(wkey)
        # Self-check: the real lookup's answer must be exactly the wildcard
        # synthesis this template would produce for qname.
        if wset is not None and wset.records and lookup.records == [
                ResourceRecord(qname, record.rtype, record.ttl,
                               record.rdata, record.rclass)
                for record in wset.records]:
            min_ttl = wset.records[0].ttl
            for record in wset.records:
                if record.ttl < min_ttl:
                    min_ttl = record.ttl
            plan.zone = zone
            plan.template = (wkey, wset, len(wset.records),
                             tuple(wset.records), min_ttl)
    return True


def _measure_direct_turns(lane: "ShardLane", hosted: HostedPlatform
                          ) -> Generator[None, None, PlatformMeasurement]:
    """``measure_direct`` as a resumable generator of probe batches.

    Yields between batches of :data:`BATCH_PROBES` probes so the engine can
    interleave lanes; the mutation sequence between two yields is exactly
    the sequential implementation's.
    """
    world = lane.world
    budget = lane.task.budget or MeasurementBudget()
    spec = hosted.spec
    prober = world.prober
    cde = world.cde
    before = prober.queries_sent
    tally_before = world.tally.snapshot()
    exposure_before = world.fault_exposure_snapshot()
    ingress_ip = hosted.platform.ingress_ips[0]
    plan = _FastPlan.build(world, hosted, lane.cold_chains)
    qtype = RRType.A

    # The fully flattened probe only when every inline replica verified
    # and the plan's links take the gated fast models.
    fused = (_fused_probe_flat
             if plan is not None and plan.fast_links and _FULL_FAST
             else _fused_probe)

    def probe_delivered(probe_name: DnsName) -> bool:
        if plan is not None:
            lane.fused_probes += 1
            return fused(plan, probe_name, qtype)
        lane.fallback_probes += 1
        return prober.probe(ingress_ip, probe_name, qtype).delivered

    # -- enumerate_adaptive(initial_q=8, confidence, max_q) ----------------
    confidence = budget.confidence
    max_q = budget.max_enumeration_queries
    name = cde.unique_name("enum")
    since = prober.network.clock.now
    sent = 0
    delivered = 0
    pending = 0     # probes since the engine last got a turn

    def send(count: int) -> Generator[None, None, None]:
        nonlocal sent, delivered, pending
        for _ in range(count):
            if probe_delivered(name):
                delivered += 1
            sent += 1
            pending += 1
            if pending >= BATCH_PROBES:
                pending = 0
                yield

    saved_budget = prober.retry_budget
    try:
        retry_budget: Optional[RetryBudget] = None
        if prober.policy is not None:
            retry_budget = RetryBudget.for_confidence(2, confidence,
                                                      prober.policy)
        prober.retry_budget = retry_budget
        yield from send(8)
        while sent < max_q:
            arrivals = cde.count_queries_for(name, since=since, qtype=qtype)
            needed = queries_for_confidence(arrivals + 1, confidence)
            if sent >= needed:
                break
            if retry_budget is not None and prober.policy is not None:
                grown = RetryBudget.for_confidence(arrivals + 1, confidence,
                                                   prober.policy)
                if grown.total > retry_budget.total:
                    retry_budget.total = grown.total
            yield from send(min(needed - sent, max_q - sent))
    finally:
        prober.retry_budget = saved_budget
    arrivals = cde.count_queries_for(name, since=since, qtype=qtype)
    estimate = CacheCountEstimate(
        estimate=estimate_from_occupancy(sent, arrivals) if arrivals else 0.0,
        lower_bound=arrivals,
        queries_sent=sent,
        arrivals=arrivals,
    )

    # -- discover_egress_ips(probes=_egress_probe_budget(spec, budget)) ----
    probes = _egress_probe_budget(spec, budget)
    if probes < 1:
        raise ValueError("need at least one probe")
    egress_since = prober.network.clock.now
    names = cde.unique_names(probes, prefix="egress")
    pending = 0
    for probe_name in names:
        probe_delivered(probe_name)
        pending += 1
        if pending >= BATCH_PROBES:
            pending = 0
            yield
    entries = cde.server.query_log.entries_for_any(names, since=egress_since)
    sources = {entry.src_ip for entry in entries}

    degradation = world.tally.delta(tally_before)
    return PlatformMeasurement(
        spec=spec,
        measured_caches=estimate.rounded,
        measured_egress=len(sources),
        queries_used=prober.queries_sent - before,
        technique="direct",
        attempts=degradation.attempts,
        retries=degradation.retries,
        gave_up=degradation.gave_up,
        fault_exposure=world.fault_exposure_delta(exposure_before),
    )


class ShardLane:
    """One shard advancing through scheduler turns in its own world.

    ``run_shard`` drives a single lane to completion; the in-process
    :class:`PipelinedEngine` interleaves many.  Busy time is accumulated
    around lane work only (construction and turns), so merged
    ``busy_seconds`` no longer double-counts orchestration or pool handoff
    overhead the way the old whole-function timing did.
    """

    def __init__(self, task: ShardTask):
        started = time.perf_counter()
        self.task = task
        self.fused_probes = 0
        self.fallback_probes = 0
        self.rows: list[PlatformMeasurement] = []
        #: Running counters mirroring what :meth:`outcome` reports, so a
        #: streaming driver may drain ``rows`` as they finish without
        #: changing any perf number the in-memory path would produce.
        self.platforms_done = 0
        self._indirect_queries = 0
        self.world = SimulatedInternet(task.config)
        #: Root-hints → captured referral chain, shared across the lane's
        #: platform plans (the chain is world state, not platform state).
        self.cold_chains: dict[tuple[str, ...], _ColdChain] = {}
        self._stats_before = snapshot_stats(self.world.network.stats)
        self._wire_before = wire_cache_counters()
        self._turns: Generator[None, None, None] = self._lane_turns()
        self._done = False
        self.busy_seconds = time.perf_counter() - started

    def _lane_turns(self) -> Generator[None, None, None]:
        budget = self.task.budget
        for spec in self.task.specs:
            hosted = self.world.add_platform_from_spec(spec)
            if spec.population == "open-resolvers":
                row = yield from _measure_direct_turns(self, hosted)
            else:
                # Indirect techniques ride applications with their own state
                # machines; they stay whole-platform turns.
                measure = MEASURES[spec.population]
                row = measure(self.world, hosted, budget)
            self.platforms_done += 1
            if row.technique != "direct":
                self._indirect_queries += row.queries_used
            self.rows.append(row)
            yield

    def drain_rows(self) -> list[PlatformMeasurement]:
        """Hand over (and forget) the rows finished since the last drain.

        Rows leave in lane order — the order :meth:`outcome` would have
        reported them in — so a streaming driver reassembles the exact
        in-memory result without the lane ever retaining it.
        """
        if not self.rows:
            return self.rows
        drained = self.rows
        self.rows = []
        return drained

    def step(self) -> bool:
        """Advance one turn; ``False`` once the lane has finished."""
        if self._done:
            return False
        started = time.perf_counter()
        try:
            next(self._turns)
        except StopIteration:
            self._done = True
        self.busy_seconds += time.perf_counter() - started
        return not self._done

    def run_to_completion(self) -> ShardOutcome:
        while self.step():
            pass
        return self.outcome()

    def outcome(self) -> ShardOutcome:
        if not self._done:
            raise RuntimeError("lane still has work pending")
        wire_hits, wire_misses = wire_cache_counters()
        perf = ShardPerf(
            shard_index=self.task.shard_index,
            platforms=self.platforms_done,
            wall_seconds=self.busy_seconds,
            # Methodology spend: direct probes plus the queries the indirect
            # techniques pushed through SMTP servers and browsers.
            queries_sent=self.world.prober.queries_sent
            + self._indirect_queries,
            stats=stats_delta(self._stats_before, self.world.network.stats),
            fused_probes=self.fused_probes,
            fallback_probes=self.fallback_probes,
            # The codec cache is process-global; with interleaved lanes the
            # delta is an attribution, not an exact per-lane count.
            wire_cache_hits=wire_hits - self._wire_before[0],
            wire_cache_misses=wire_misses - self._wire_before[1],
        )
        return ShardOutcome(shard_index=self.task.shard_index,
                            positions=self.task.positions,
                            rows=self.rows, perf=perf)


#: Per-lane bound on finished-but-undelivered rows in the streaming
#: scheduler.  A lane that runs this far ahead of the stripe frontier is
#: paused; the frontier's *owner* lane always has an empty buffer (its rows
#: are delivered the moment they finish), so pausing can never deadlock.
STREAM_BUFFER_ROWS = 8


class PipelinedEngine:
    """Round-robin turn scheduler over shard lanes (the in-process path)."""

    def __init__(self, tasks: list[ShardTask]):
        self.lanes = [ShardLane(task) for task in tasks]

    def run(self) -> list[ShardOutcome]:
        active = deque(self.lanes)
        while active:
            lane = active.popleft()
            if lane.step():
                active.append(lane)
        return [lane.outcome() for lane in self.lanes]

    def stream(self) -> Generator[tuple[int, PlatformMeasurement],
                                  None, None]:
        """Yield ``(position, row)`` in global spec order as rows finish.

        Lanes are independent worlds, so interleaving (and pausing) turns
        cannot change any lane's rows — the stream is byte-identical to
        :meth:`run` reassembled in spec order, while holding at most
        :data:`STREAM_BUFFER_ROWS` undelivered rows per lane.  After
        exhaustion every lane is finished and :meth:`outcomes` reports the
        same perf numbers the in-memory path would.
        """
        lanes = self.lanes
        buffers: list[deque[PlatformMeasurement]] = [
            deque() for _ in lanes]
        delivered = [0] * len(lanes)
        frontier = 0
        total = sum(len(lane.task.positions) for lane in lanes)
        active = deque(range(len(lanes)))
        yielded = 0
        while yielded < total:
            # Deliver every row available at the stripe frontier.
            progressed = True
            while progressed:
                progressed = False
                for index, lane in enumerate(lanes):
                    positions = lane.task.positions
                    if (delivered[index] < len(positions)
                            and positions[delivered[index]] == frontier
                            and buffers[index]):
                        yield frontier, buffers[index].popleft()
                        delivered[index] += 1
                        frontier += 1
                        yielded += 1
                        progressed = True
            if yielded >= total:
                break
            # Advance the scheduler: next unpaused lane takes a turn.
            for _ in range(len(active)):
                index = active.popleft()
                lane = lanes[index]
                positions = lane.task.positions
                owns_frontier = (delivered[index] < len(positions)
                                 and positions[delivered[index]] == frontier)
                if len(buffers[index]) >= STREAM_BUFFER_ROWS \
                        and not owns_frontier:
                    active.append(index)    # paused until the frontier moves
                    continue
                if lane.step():
                    active.append(index)
                buffers[index].extend(lane.drain_rows())
                break
        # Every row is out; spend the lanes' remaining (row-free) turns so
        # each generator finishes and ``outcomes()`` may be read.
        for lane in lanes:
            while lane.step():
                pass

    def outcomes(self) -> list[ShardOutcome]:
        """Per-lane outcomes once every lane has finished."""
        return [lane.outcome() for lane in self.lanes]
