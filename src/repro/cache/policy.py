"""Cache eviction policies.

When a :class:`~repro.cache.cache.DnsCache` reaches capacity it asks its
policy for a victim.  The paper notes that "different caches apply different
logic for deciding which records to cache" (Section II-A) — one of the
reasons multiple caches harden a platform against poisoning — so the policy
is pluggable and a per-cache fingerprintable property.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Protocol

from ..dns.name import DnsName
from ..dns.rrtype import RRType
from .entry import CacheEntry

Key = tuple[DnsName, RRType]


class EvictionPolicy(Protocol):
    name: str

    def choose_victim(self, entries: Iterable[CacheEntry],
                      rng: random.Random) -> Optional[Key]:
        """The key to evict, or ``None`` when no candidate exists."""


class LruPolicy:
    """Evict the least recently used entry."""

    name = "lru"

    def choose_victim(self, entries: Iterable[CacheEntry],
                      rng: random.Random) -> Optional[Key]:
        victim = min(entries, key=lambda entry: entry.last_used, default=None)
        return victim.key if victim else None


class LfuPolicy:
    """Evict the least frequently used entry (ties → older)."""

    name = "lfu"

    def choose_victim(self, entries: Iterable[CacheEntry],
                      rng: random.Random) -> Optional[Key]:
        victim = min(entries, key=lambda entry: (entry.hits, entry.stored_at),
                     default=None)
        return victim.key if victim else None


class FifoPolicy:
    """Evict the oldest entry regardless of use."""

    name = "fifo"

    def choose_victim(self, entries: Iterable[CacheEntry],
                      rng: random.Random) -> Optional[Key]:
        victim = min(entries, key=lambda entry: entry.stored_at, default=None)
        return victim.key if victim else None


class RandomPolicy:
    """Evict a uniformly random entry."""

    name = "random"

    def choose_victim(self, entries: Iterable[CacheEntry],
                      rng: random.Random) -> Optional[Key]:
        pool = list(entries)
        if not pool:
            return None
        return rng.choice(pool).key


POLICIES: dict[str, type] = {
    "lru": LruPolicy,
    "lfu": LfuPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown eviction policy {name!r}") from None
