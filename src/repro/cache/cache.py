"""The DNS cache.

:class:`DnsCache` stores positive RRsets and negative answers keyed by
(name, type), honours TTLs against virtual time, clamps TTLs to a
configurable [min, max] window (paper §II-C footnote: "Some DNS resolution
platforms enforce a minimal and a maximal TTL"), performs RFC 2308 negative
caching, and evicts via a pluggable policy when full.

Each cache instance carries a stable ``cache_id`` so that measurement code
can compare an enumeration result against ground truth.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional

from ..dns.name import DnsName
from ..dns.record import ResourceRecord, RRSet
from ..dns.rrtype import RRType
from ..net.rng import fallback_rng
from .entry import CacheEntry, EntryKind
from .policy import EvictionPolicy, LruPolicy

_cache_counter = itertools.count(1)

#: RFC 2308 caps the negative-answer TTL at 3 hours by convention.
DEFAULT_NEGATIVE_TTL_CAP = 10800


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


# cdelint: component=cache
class DnsCache:
    """One cache instance inside a resolution platform."""

    def __init__(self, cache_id: Optional[str] = None, capacity: int = 100_000,
                 min_ttl: int = 0, max_ttl: int = 604_800,
                 negative_ttl_cap: int = DEFAULT_NEGATIVE_TTL_CAP,
                 policy: Optional[EvictionPolicy] = None,
                 rng: Optional[random.Random] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if min_ttl < 0 or max_ttl < min_ttl:
            raise ValueError("need 0 <= min_ttl <= max_ttl")
        self.cache_id = cache_id or f"cache-{next(_cache_counter)}"
        self.capacity = capacity
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        self.negative_ttl_cap = negative_ttl_cap
        self.policy = policy or LruPolicy()
        self.rng = rng or fallback_rng("cache.DnsCache")
        self.stats = CacheStats()
        self._entries: dict[tuple[DnsName, RRType], CacheEntry] = {}
        #: Lower bound on the earliest ``expires_at`` among live entries.
        #: While ``now`` stays below it no entry can be expired, so inserts
        #: skip the O(n) purge scan.  Removals only raise the true minimum,
        #: so the bound stays valid without maintenance.
        self._next_expiry = float("inf")

    # -- TTL handling -----------------------------------------------------

    def clamp_ttl(self, ttl: int) -> int:
        """Apply the platform's minimum/maximum TTL window."""
        return min(max(ttl, self.min_ttl), self.max_ttl)

    # -- lookups -----------------------------------------------------------

    def get(self, name: DnsName, rtype: RRType, now: float) -> Optional[CacheEntry]:
        """The live entry for (name, rtype), or ``None`` on miss.

        An NXDOMAIN entry for the name answers any qtype, matching RFC 2308:
        a cached name error denies the whole name.
        """
        entry = self._entries.get((name, rtype))
        if entry is None or entry.is_expired(now):
            if entry is not None:
                del self._entries[entry.key]
                self.stats.expirations += 1
            # NXDOMAIN covers every qtype at the name.
            nx = self._entries.get((name, RRType.ANY))
            if nx is not None and nx.kind == EntryKind.NXDOMAIN:
                if nx.is_expired(now):
                    del self._entries[nx.key]
                    self.stats.expirations += 1
                else:
                    nx.touch(now)
                    self.stats.hits += 1
                    return nx
            self.stats.misses += 1
            return None
        entry.touch(now)
        self.stats.hits += 1
        return entry

    def peek(self, name: DnsName, rtype: RRType, now: float) -> Optional[CacheEntry]:
        """Like :meth:`get` but without touching stats or recency."""
        entry = self._entries.get((name, rtype))
        if entry is not None and not entry.is_expired(now):
            return entry
        nx = self._entries.get((name, RRType.ANY))
        if nx is not None and nx.kind == EntryKind.NXDOMAIN and not nx.is_expired(now):
            return nx
        return None

    def contains(self, name: DnsName, rtype: RRType, now: float) -> bool:
        return self.peek(name, rtype, now) is not None

    # -- insertion -------------------------------------------------------------

    def put_rrset(self, rrset: RRSet, now: float) -> CacheEntry:
        ttl = self.clamp_ttl(rrset.ttl)
        entry = CacheEntry(
            name=rrset.name,
            rtype=rrset.rtype,
            kind=EntryKind.POSITIVE,
            stored_at=now,
            expires_at=now + ttl,
            rrset=rrset.with_ttl(ttl),
        )
        self._insert(entry, now)
        return entry

    def put_nxdomain(self, name: DnsName, now: float,
                     soa: Optional[ResourceRecord] = None) -> CacheEntry:
        ttl = self._negative_ttl(soa)
        entry = CacheEntry(
            name=name,
            rtype=RRType.ANY,  # an NXDOMAIN denies every type at the name
            kind=EntryKind.NXDOMAIN,
            stored_at=now,
            expires_at=now + ttl,
            soa=soa,
        )
        self._insert(entry, now)
        return entry

    def put_nodata(self, name: DnsName, rtype: RRType, now: float,
                   soa: Optional[ResourceRecord] = None) -> CacheEntry:
        ttl = self._negative_ttl(soa)
        entry = CacheEntry(
            name=name,
            rtype=rtype,
            kind=EntryKind.NODATA,
            stored_at=now,
            expires_at=now + ttl,
            soa=soa,
        )
        self._insert(entry, now)
        return entry

    def _negative_ttl(self, soa: Optional[ResourceRecord]) -> int:
        if soa is not None:
            from ..dns.record import SoaRdata

            assert isinstance(soa.rdata, SoaRdata)
            ttl = min(soa.ttl, soa.rdata.minimum)
        else:
            ttl = self.negative_ttl_cap
        return self.clamp_ttl(min(ttl, self.negative_ttl_cap))

    def _insert(self, entry: CacheEntry, now: float) -> None:
        if now >= self._next_expiry:
            self._purge_expired(now)
        if entry.key not in self._entries and len(self._entries) >= self.capacity:
            victim = self.policy.choose_victim(self._entries.values(), self.rng)
            if victim is not None:
                del self._entries[victim]
                self.stats.evictions += 1
        self._entries[entry.key] = entry
        if entry.expires_at < self._next_expiry:
            self._next_expiry = entry.expires_at
        self.stats.insertions += 1

    # -- maintenance -----------------------------------------------------------

    def _purge_expired(self, now: float) -> None:
        expired = [key for key, entry in self._entries.items() if entry.is_expired(now)]
        for key in expired:
            del self._entries[key]
        self.stats.expirations += len(expired)
        self._next_expiry = min(
            (entry.expires_at for entry in self._entries.values()),
            default=float("inf"))

    def flush(self) -> None:
        self._entries.clear()
        self._next_expiry = float("inf")

    def remove(self, name: DnsName, rtype: RRType) -> None:
        self._entries.pop((name, rtype), None)

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[CacheEntry]:
        return list(self._entries.values())

    def __repr__(self) -> str:
        return (f"DnsCache({self.cache_id!r}, size={len(self._entries)}, "
                f"hit_rate={self.stats.hit_rate:.2f})")
