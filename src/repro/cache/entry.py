"""Cache entries.

A :class:`CacheEntry` is one cached RRset (or a negative answer) together
with its timing metadata.  Remaining TTL is computed against virtual time;
entries never mutate their stored records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..dns.name import DnsName
from ..dns.record import ResourceRecord, RRSet
from ..dns.rrtype import RRType


class EntryKind(enum.Enum):
    POSITIVE = "positive"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"


@dataclass
class CacheEntry:
    name: DnsName
    rtype: RRType
    kind: EntryKind
    stored_at: float
    expires_at: float
    rrset: Optional[RRSet] = None       # POSITIVE entries only
    soa: Optional[ResourceRecord] = None  # negative entries may carry the SOA
    hits: int = 0
    last_used: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.kind == EntryKind.POSITIVE and self.rrset is None:
            raise ValueError("positive cache entry requires an RRset")
        self.last_used = self.stored_at

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def remaining_ttl(self, now: float) -> int:
        """TTL left, floored at zero, truncated to whole seconds."""
        return max(0, int(self.expires_at - now))

    def aged_rrset(self, now: float) -> Optional[RRSet]:
        """The stored RRset with TTLs decremented by the entry's age."""
        if self.rrset is None:
            return None
        return self.rrset.with_ttl(self.remaining_ttl(now))

    def touch(self, now: float) -> None:
        self.hits += 1
        self.last_used = now

    @property
    def key(self) -> tuple[DnsName, RRType]:
        return (self.name, self.rtype)
