"""DNS cache substrate: entries, eviction policies, TTL semantics, profiles."""

from .cache import DEFAULT_NEGATIVE_TTL_CAP, CacheStats, DnsCache
from .entry import CacheEntry, EntryKind
from .policy import (
    POLICIES,
    EvictionPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from .software import (
    APPLIANCE_LIKE,
    BIND9_LIKE,
    PROFILES,
    UNBOUND_LIKE,
    WINDOWS_DNS_LIKE,
    CacheSoftwareProfile,
    profile_by_name,
)

__all__ = [
    "APPLIANCE_LIKE", "BIND9_LIKE", "CacheEntry", "CacheSoftwareProfile",
    "CacheStats", "DEFAULT_NEGATIVE_TTL_CAP", "DnsCache", "EntryKind",
    "EvictionPolicy", "FifoPolicy", "LfuPolicy", "LruPolicy", "POLICIES",
    "PROFILES", "RandomPolicy", "UNBOUND_LIKE", "WINDOWS_DNS_LIKE",
    "make_policy", "profile_by_name",
]
