"""Cache software profiles.

The paper motivates cache discovery partly by software inventory: "Caches on
DNS resolution platforms are often running different DNS software.  For
distribution and integration of patches it is important to know which
software the caches are running" (§II-C).  A :class:`CacheSoftwareProfile`
bundles the externally observable behavioural parameters that real resolver
implementations differ on — TTL clamping, negative-TTL handling, eviction —
and builds a :class:`~repro.cache.cache.DnsCache` configured accordingly.

The profiles below are modelled on the published defaults of well-known
implementations; :mod:`repro.core.fingerprint` infers the profile of a live
cache purely from its answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .cache import DnsCache
from .policy import make_policy


@dataclass(frozen=True)
class CacheSoftwareProfile:
    """Observable behavioural fingerprint of one cache implementation."""

    name: str
    min_ttl: int
    max_ttl: int
    negative_ttl_cap: int
    eviction_policy: str
    default_capacity: int

    def build_cache(self, cache_id: Optional[str] = None,
                    capacity: Optional[int] = None,
                    rng: Optional[random.Random] = None) -> DnsCache:
        return DnsCache(
            cache_id=cache_id,
            capacity=capacity or self.default_capacity,
            min_ttl=self.min_ttl,
            max_ttl=self.max_ttl,
            negative_ttl_cap=self.negative_ttl_cap,
            policy=make_policy(self.eviction_policy),
            rng=rng,
        )


#: BIND 9 defaults: max-cache-ttl one week, max-ncache-ttl 3 hours, LRU.
BIND9_LIKE = CacheSoftwareProfile(
    name="bind9-like",
    min_ttl=0,
    max_ttl=604_800,
    negative_ttl_cap=10_800,
    eviction_policy="lru",
    default_capacity=200_000,
)

#: Unbound defaults: cache-max-ttl one day, cache-min-ttl 0, neg cap 1 hour.
UNBOUND_LIKE = CacheSoftwareProfile(
    name="unbound-like",
    min_ttl=0,
    max_ttl=86_400,
    negative_ttl_cap=3_600,
    eviction_policy="lfu",
    default_capacity=100_000,
)

#: Windows DNS: MaxCacheTtl one day, MaxNegativeCacheTtl 15 minutes.
WINDOWS_DNS_LIKE = CacheSoftwareProfile(
    name="windows-dns-like",
    min_ttl=0,
    max_ttl=86_400,
    negative_ttl_cap=900,
    eviction_policy="fifo",
    default_capacity=50_000,
)

#: A forwarding appliance that enforces a TTL floor (common in CPE devices).
APPLIANCE_LIKE = CacheSoftwareProfile(
    name="appliance-like",
    min_ttl=60,
    max_ttl=86_400,
    negative_ttl_cap=600,
    eviction_policy="random",
    default_capacity=10_000,
)

PROFILES: dict[str, CacheSoftwareProfile] = {
    profile.name: profile
    for profile in (BIND9_LIKE, UNBOUND_LIKE, WINDOWS_DNS_LIKE, APPLIANCE_LIKE)
}


def profile_by_name(name: str) -> CacheSoftwareProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown cache software profile {name!r}") from None
