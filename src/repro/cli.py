"""Command-line front end (``repro-cde``).

The paper promises "We make our tools available for public use"; this CLI is
that surface for the simulated testbed.  Subcommands:

* ``demo``      — build a world, one platform, run the full study.
* ``enumerate`` — cache enumeration against a platform you describe.
* ``table1``    — regenerate Table I from a fresh SMTP collection.
* ``figures``   — regenerate the Figure 3/4/6 series for small populations.
* ``census``    — population census; ``--stream`` runs the bounded-memory
  pipeline with chunked NDJSON export and ``--resume`` checkpoints.
* ``analysis``  — print the §V-B coupon-collector planning table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.analysis import (
    expected_queries_coupon,
    init_validate_success,
    queries_for_confidence,
)


def _cmd_demo(args: argparse.Namespace) -> int:
    from .study import build_world, report_to_dict, to_json

    world = build_world(seed=args.seed)
    hosted = world.add_platform(
        n_ingress=args.ingress, n_caches=args.caches, n_egress=args.egress,
        selector=args.selector,
    )
    report = world.study(hosted)
    if args.json:
        print(to_json(report_to_dict(report)))
        return 0
    print(f"platform: {hosted.spec.name} "
          f"(truth: {args.caches} caches, {args.egress} egress IPs)")
    print(f"measured caches:   {report.cache_count}")
    print(f"measured egress:   {report.n_egress_ips}")
    print(f"ingress clusters:  {report.n_ingress_clusters}")
    print(f"queries spent:     {report.queries_sent}")
    for note in report.notes:
        print(f"note: {note}")
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    from .core.enumeration import enumerate_direct, enumerate_two_phase
    from .study import build_world

    world = build_world(seed=args.seed)
    hosted = world.add_platform(
        n_ingress=1, n_caches=args.caches, n_egress=max(1, args.caches // 2),
        selector=args.selector,
    )
    ingress_ip = hosted.platform.ingress_ips[0]
    direct = enumerate_direct(world.cde, world.prober, ingress_ip, q=args.q)
    print(f"direct:    q={args.q}  arrivals(omega)={direct.arrivals}  "
          f"-> {direct.cache_count} caches")
    two_phase = enumerate_two_phase(world.cde, world.prober, ingress_ip,
                                    seeds=args.seeds)
    print(f"two-phase: N={args.seeds}  validate-arrivals="
          f"{two_phase.validate_arrivals}  -> estimate "
          f"{two_phase.estimate.estimate:.2f}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .study import (
        TABLE1_PAPER_ROWS,
        build_world,
        format_table,
        generate_population,
        run_smtp_collection,
    )

    world = build_world(seed=args.seed)
    specs = generate_population("email-servers", args.domains,
                                seed=args.seed, max_egress=10, max_caches=4)
    result = run_smtp_collection(world, specs)
    paper = dict(TABLE1_PAPER_ROWS)
    rows = [(label, f"{100 * measured:.1f}%", f"{100 * paper[label]:.1f}%")
            for label, measured in result.table1_rows()]
    print(format_table(["Query type", "Measured", "Paper"], rows,
                       title=f"Table I ({result.domains_probed} domains)"))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .core.resilient import RETRY_PROFILES
    from .net.faults import FAULT_PROFILES
    from .study import (
        build_world,
        format_bubbles,
        format_cdf_series,
        format_perf,
        format_ratio_breakdown,
        format_resilience,
        measurements_csv,
        regenerate_all,
        resilience_summary,
        table1_csv,
    )
    from .study.figures import DEFAULT_CAPS

    if args.workers is not None and args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.fault_profile not in FAULT_PROFILES:
        print(f"error: unknown --fault-profile {args.fault_profile!r} "
              f"(known: {', '.join(sorted(FAULT_PROFILES))})",
              file=sys.stderr)
        return 2
    if args.retry_profile not in RETRY_PROFILES:
        print(f"error: unknown --retry-profile {args.retry_profile!r} "
              f"(known: {', '.join(sorted(RETRY_PROFILES))})",
              file=sys.stderr)
        return 2
    world = build_world(seed=args.seed,
                        fault_profile=args.fault_profile,
                        retry_profile=args.retry_profile)
    sizes = {population: args.count
             for population in ("open-resolvers", "email-servers",
                                "ad-network")}
    data = regenerate_all(world, sizes=sizes, caps=DEFAULT_CAPS,
                          table1_domains=max(20, args.count),
                          seed=args.seed, workers=args.workers)
    print(format_cdf_series(data.egress_series(),
                            xs=[1, 2, 5, 11, 20, 40],
                            title="Figure 3: egress IPs per platform (CDF)",
                            x_label="egress IPs"))
    print()
    print(format_cdf_series(data.cache_series(), xs=[1, 2, 3, 4, 8, 12],
                            title="Figure 4: caches per platform (CDF)",
                            x_label="caches"))
    print()
    print(format_ratio_breakdown(data.ratio_breakdowns(),
                                 title="Figure 6: IP/cache ratio categories"))
    print()
    print(format_perf(data.perf))
    all_rows = [row for rows in data.measurements.values() for row in rows]
    degradation = resilience_summary(all_rows)
    if (degradation.degraded_platforms or degradation.fault_exposure
            or args.fault_profile != "none" or args.retry_profile != "none"):
        print()
        print(format_resilience(
            degradation,
            title=f"measurement degradation (faults={args.fault_profile}, "
                  f"retry={args.retry_profile})"))
    if args.bubbles:
        for population, figure in (("open-resolvers", "Figure 5"),
                                   ("email-servers", "Figure 7"),
                                   ("ad-network", "Figure 8")):
            print()
            print(format_bubbles(data.bubbles(population),
                                 title=f"{figure}: {population}"))
    if args.out:
        import pathlib

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "measurements.csv").write_text(measurements_csv(data))
        (out_dir / "table1.csv").write_text(table1_csv(data))
        print(f"\nwrote {out_dir}/measurements.csv and {out_dir}/table1.csv")
    return 0


def _cmd_ttlcheck(args: argparse.Namespace) -> int:
    from .core import check_ttl_consistency, naive_ttl_study_would_misreport
    from .study import build_world

    world = build_world(seed=args.seed)
    hosted = world.add_platform(n_ingress=1, n_caches=args.caches,
                                n_egress=1, max_ttl=args.max_ttl)
    report = check_ttl_consistency(world.cde, world.prober,
                                   hosted.platform.ingress_ips[0],
                                   record_ttl=args.ttl)
    print(f"measured caches:       {report.measured_caches}")
    print(f"arrivals within TTL:   {report.arrivals_within_ttl}")
    print(f"arrivals after expiry: {report.arrivals_after_expiry}")
    print(f"verdict:               {report.verdict.value}")
    warning = naive_ttl_study_would_misreport(report)
    if warning:
        print(warning)
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    from .cache.software import profile_by_name
    from .core import fingerprint_platform
    from .resolver import PlatformConfig, ResolutionPlatform
    from .study import build_world

    world = build_world(seed=args.seed)
    pool = world.platform_allocator.allocate_pool(2)
    config = PlatformConfig(
        name="fp-target", ingress_ips=[pool.allocate()],
        egress_ips=[pool.allocate()], n_caches=1,
        software_profiles=[profile_by_name(args.software)],
    )
    platform = ResolutionPlatform(config, world.network,
                                  world.hierarchy.root_hints)
    platform.attach()
    results = fingerprint_platform(world.cde, world.prober,
                                   config.ingress_ips[0], samples=1)
    observation = results[0].observation
    candidates = results[0].candidates
    print(f"observed max-TTL clamp: {observation.observed_max_ttl}")
    print(f"observed min-TTL floor: {observation.observed_min_ttl}")
    if len(candidates) > 1:
        # Disambiguate via the negative-TTL cap bracket.
        from .core import observe_negative_ttl

        bracket = observe_negative_ttl(world.cde, world.prober,
                                       config.ingress_ips[0])
        observation.negative_ttl_bracket = bracket
        print(f"negative-TTL bracket:   {bracket}")
        from .cache.software import PROFILES

        candidates = [name_ for name_, profile in PROFILES.items()
                      if observation.matches(profile)]
    print(f"candidates: {', '.join(candidates) or '(none)'}")
    if len(candidates) == 1:
        print(f"identified: {candidates[0]}")
    return 0


def _cmd_edns(args: argparse.Namespace) -> int:
    from .core import survey_edns_adoption
    from .study import build_world

    world = build_world(seed=args.seed)
    rng = world.rng_factory.stream("edns-cli")
    ingress_ips = []
    for _ in range(args.platforms):
        hosted = world.add_platform(n_ingress=1, n_caches=1, n_egress=1)
        if rng.random() > args.adoption:
            hosted.platform.config.edns_payload_size = None
        ingress_ips.append(hosted.platform.ingress_ips[0])
    survey = survey_edns_adoption(world.cde, world.prober, ingress_ips)
    print(f"surveyed {survey.surveyed} platforms; "
          f"{survey.supporting} answer with EDNS "
          f"({survey.adoption_rate:.0%})")
    for size, count in sorted(survey.size_histogram().items()):
        print(f"  advertised payload {size}: {count}")
    return 0


def _cmd_multipool(args: argparse.Namespace) -> int:
    from .core import map_ingress_to_clusters
    from .study import build_world

    world = build_world(seed=args.seed)
    shapes = [(args.ingress_per_pool, args.caches_per_pool, 1)
              for _ in range(args.pools)]
    platform = world.add_multipool_platform(pool_shapes=shapes)
    print(f"platform: {platform.n_pools} pools, "
          f"{len(platform.ingress_ips)} ingress IPs, "
          f"{platform.total_caches} caches total (all hidden)")
    result = map_ingress_to_clusters(world.cde, world.prober,
                                     platform.ingress_ips,
                                     n_hint=args.caches_per_pool)
    print(f"clustering discovered {result.n_clusters} cache pools:")
    for cluster in result.clusters:
        truth = platform.pool_of(cluster.member_ips[0])
        print(f"  cluster {cluster.cluster_id}: {cluster.member_ips} "
              f"(truth: {truth})")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """Fast end-to-end self-verification of the toolkit (~2 s)."""
    from .core import (
        enumerate_by_timing,
        enumerate_direct,
        enumerate_indirect_cname,
        map_ingress_to_clusters,
        discover_egress_ips,
        queries_for_confidence,
    )
    from .study import build_world

    world = build_world(seed=args.seed, lossy_platforms=False)
    hosted = world.add_platform(n_ingress=2, n_caches=3, n_egress=2)
    ingress = hosted.platform.ingress_ips[0]
    budget = queries_for_confidence(3, 0.999)
    checks = []

    direct = enumerate_direct(world.cde, world.prober, ingress, q=budget)
    checks.append(("direct census", direct.arrivals == 3))
    timing = enumerate_by_timing(world.cde, world.prober, ingress,
                                 probes=budget)
    checks.append(("timing census", timing.miss_latency_count == 3))
    browser = world.make_browser_prober(hosted)
    cname = enumerate_indirect_cname(world.cde, browser, q=budget)
    checks.append(("cname bypass", cname.arrivals == 3))
    egress = discover_egress_ips(world.cde, world.prober, ingress, probes=24)
    checks.append(("egress census", egress.n_egress == 2))
    clusters = map_ingress_to_clusters(world.cde, world.prober,
                                       hosted.platform.ingress_ips)
    checks.append(("ingress clustering", clusters.n_clusters == 1))

    failed = 0
    for label, passed in checks:
        print(f"[{'ok' if passed else 'FAIL'}] {label}")
        failed += not passed
    if failed:
        print(f"{failed} check(s) failed")
        return 1
    print("all checks passed")
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    """Population census: in-memory or streaming bounded-memory pipeline."""
    from .net.faults import FAULT_PROFILES
    from .study import WorldConfig, format_table
    from .study.census import MemoryBudgetExceeded, run_census

    if args.count < 1:
        print("error: --count must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.fault_profile not in FAULT_PROFILES:
        print(f"error: unknown --fault-profile {args.fault_profile!r} "
              f"(known: {', '.join(sorted(FAULT_PROFILES))})",
              file=sys.stderr)
        return 2
    if args.resume and not args.out:
        print("error: --resume requires --out", file=sys.stderr)
        return 2
    config = WorldConfig(seed=args.seed, fault_profile=args.fault_profile)
    caps = {"max_caches": args.max_caches, "max_ingress": args.max_ingress,
            "max_egress": args.max_egress}
    try:
        result = run_census(
            population=args.population,
            count=args.count,
            seed=args.seed,
            workers=args.workers,
            n_shards=args.shards,
            config=config,
            stream=args.stream,
            simulate=args.simulate,
            out_dir=args.out,
            chunk_size=args.chunk_size,
            resume=args.resume,
            max_rss_mb=args.max_rss_mb,
            spec_caps=caps,
        )
    except MemoryBudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    aggregates = result.aggregates
    mode = ("simulated" if args.simulate
            else "streaming" if args.stream else "in-memory")
    print(f"census: {aggregates.rows} platforms ({mode} pipeline)")
    print(format_table(
        ["group", "n", "exact", "MAE", "bias"],
        [(label, str(n), exact, mae, bias)
         for label, n, exact, mae, bias in aggregates.accuracy.rows()],
        title="accuracy"))
    ledger = aggregates.ledger.to_dict()
    print(f"budget ledger: {ledger['spent_queries']} of "
          f"{ledger['budget_queries']} planned queries "
          f"({100 * aggregates.ledger.utilisation:.1f}% utilisation, "
          f"{ledger['chunks']} chunks)")
    if result.perf is not None:
        print(f"throughput: {result.perf.platforms_per_second:.1f} "
              f"platforms/s on {result.perf.workers} workers")
    print(f"peak RSS: {result.peak_rss_mb:.1f} MiB")
    if args.out:
        note = (f" ({result.skipped_rows} rows resumed from checkpoint)"
                if result.skipped_rows else "")
        print(f"wrote {result.written_rows} rows to {args.out}{note}")
    return 0


def _cmd_analysis(args: argparse.Namespace) -> int:
    print("n caches | E[X]=n*H_n | q for 99% | init/validate success (N=2n)")
    for n in args.n:
        expected = expected_queries_coupon(n)
        budget = queries_for_confidence(n, 0.99)
        success = init_validate_success(2 * n, n)
        print(f"{n:8d} | {expected:10.1f} | {budget:9d} | "
              f"{success:.1f} of {2 * n}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cde",
        description="Caches Discovery and Enumeration toolkit "
                    "(DSN 2017 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="full study of one platform")
    demo.add_argument("--ingress", type=int, default=2)
    demo.add_argument("--caches", type=int, default=4)
    demo.add_argument("--egress", type=int, default=3)
    demo.add_argument("--selector", default="uniform-random")
    demo.add_argument("--json", action="store_true",
                      help="emit the report as JSON")
    demo.set_defaults(func=_cmd_demo)

    enum = sub.add_parser("enumerate", help="cache enumeration techniques")
    enum.add_argument("--caches", type=int, default=4)
    enum.add_argument("--selector", default="uniform-random")
    enum.add_argument("-q", type=int, default=64)
    enum.add_argument("--seeds", type=int, default=32)
    enum.set_defaults(func=_cmd_enumerate)

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--domains", type=int, default=200)
    table1.set_defaults(func=_cmd_table1)

    figures = sub.add_parser("figures", help="regenerate Figures 3-8")
    figures.add_argument("--count", type=int, default=30,
                         help="platforms per population")
    figures.add_argument("--workers", type=int, default=None,
                         help="measure through the sharded parallel engine "
                              "on N worker processes (0 = in-process shards; "
                              "omit for the sequential pipeline)")
    figures.add_argument("--fault-profile", default="none",
                         help="named fault profile to measure under "
                              "(seed-deterministic; see repro.net.faults."
                              "FAULT_PROFILES; default: none)")
    figures.add_argument("--retry-profile", default="none",
                         help="named retry/backoff policy for the probers "
                              "(see repro.core.resilient.RETRY_PROFILES; "
                              "default: none)")
    figures.add_argument("--bubbles", action="store_true",
                         help="also print the Figure 5/7/8 bubble tables")
    figures.add_argument("--out", default=None,
                         help="directory for CSV exports")
    figures.set_defaults(func=_cmd_figures)

    census = sub.add_parser(
        "census", help="population census (streaming bounded-memory mode)")
    census.add_argument("--population", default="open-resolvers",
                        help="population model to census")
    census.add_argument("--count", type=int, default=100,
                        help="platforms to census")
    census.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = in-process engine)")
    census.add_argument("--shards", type=int, default=None,
                        help="shard count (default: engine default)")
    census.add_argument("--stream", action="store_true",
                        help="bounded-memory pipeline: rows stream through "
                             "online aggregation and chunked NDJSON export")
    census.add_argument("--simulate", action="store_true",
                        help="synthetic deterministic rows, no worlds "
                             "(scale/pipeline testing)")
    census.add_argument("--out", default=None,
                        help="directory for the chunked NDJSON export")
    census.add_argument("--chunk-size", type=int, default=1000,
                        help="rows per export chunk (checkpoint unit)")
    census.add_argument("--resume", action="store_true",
                        help="resume an interrupted census from the last "
                             "complete chunk in --out")
    census.add_argument("--max-rss-mb", type=float, default=None,
                        help="abort (keeping the checkpoint) if peak RSS "
                             "crosses this many MiB")
    census.add_argument("--fault-profile", default="none",
                        help="named fault profile (see repro.net.faults)")
    census.add_argument("--max-caches", type=int, default=8,
                        help="population cap: caches per platform")
    census.add_argument("--max-ingress", type=int, default=4,
                        help="population cap: ingress IPs per platform")
    census.add_argument("--max-egress", type=int, default=8,
                        help="population cap: egress IPs per platform")
    census.set_defaults(func=_cmd_census)

    analysis = sub.add_parser("analysis", help="coupon-collector table")
    analysis.add_argument("n", type=int, nargs="*",
                          default=[1, 2, 4, 8, 16, 32])
    analysis.set_defaults(func=_cmd_analysis)

    ttlcheck = sub.add_parser("ttlcheck",
                              help="TTL-consistency differentiator (§II-C.1)")
    ttlcheck.add_argument("--caches", type=int, default=3)
    ttlcheck.add_argument("--ttl", type=int, default=600)
    ttlcheck.add_argument("--max-ttl", type=int, default=None,
                          help="platform max-TTL clamp (simulates violators)")
    ttlcheck.set_defaults(func=_cmd_ttlcheck)

    fingerprint = sub.add_parser("fingerprint",
                                 help="cache software fingerprinting (§II-C)")
    fingerprint.add_argument("--software", default="unbound-like",
                             help="profile the hidden cache actually runs")
    fingerprint.set_defaults(func=_cmd_fingerprint)

    edns = sub.add_parser("edns", help="EDNS adoption survey (§II-C)")
    edns.add_argument("--platforms", type=int, default=30)
    edns.add_argument("--adoption", type=float, default=0.8,
                      help="true adoption rate to simulate")
    edns.set_defaults(func=_cmd_edns)

    multipool = sub.add_parser(
        "multipool", help="ingress→cache-pool clustering demo (§IV-B1b)")
    multipool.add_argument("--pools", type=int, default=3)
    multipool.add_argument("--ingress-per-pool", type=int, default=2)
    multipool.add_argument("--caches-per-pool", type=int, default=2)
    multipool.set_defaults(func=_cmd_multipool)

    selftest = sub.add_parser("selftest",
                              help="fast end-to-end self-verification")
    selftest.set_defaults(func=_cmd_selftest)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
