"""The upper DNS hierarchy: a root server and TLD servers.

Iterative resolution needs somewhere to start.  :class:`RootHierarchy`
builds a root zone and per-TLD zones on their own authoritative servers,
registers them on the network, and exposes :meth:`delegate` so that any
component (the CDE infrastructure, the population generators' victim
domains) can hang a child zone under a TLD with proper NS+glue.
"""

from __future__ import annotations

from typing import Optional

from ..dns.name import ROOT, DnsName, name as make_name
from ..dns.record import a_record, ns_record, soa_record
from ..dns.zone import Zone
from ..net.network import LinkProfile, Network
from .authoritative import AuthoritativeServer

#: Delegation NS/glue TTLs: long, like real TLD zones.
DELEGATION_TTL = 172_800


class RootHierarchy:
    """Root + TLD authoritative infrastructure."""

    def __init__(self, network: Network, root_ip: str = "198.41.0.4",
                 profile: Optional[LinkProfile] = None):
        self.network = network
        self.root_ip = root_ip
        self._profile = profile
        self._tld_servers: dict[DnsName, AuthoritativeServer] = {}
        self._tld_ips: dict[DnsName, str] = {}
        self._next_tld_ip = 0

        self.root_zone = Zone(ROOT)
        self.root_zone.add_record(soa_record(
            ROOT, make_name("a.root-servers.net"), make_name("nstld.verisign-grs.com"),
        ))
        self.root_server = AuthoritativeServer("root")
        self.root_server.add_zone(self.root_zone)
        network.register(root_ip, self.root_server, profile)

    @property
    def root_hints(self) -> list[str]:
        return [self.root_ip]

    # -- TLD management ----------------------------------------------------

    def ensure_tld(self, tld: str | DnsName) -> AuthoritativeServer:
        """Create (or return) the authoritative server for a TLD."""
        tld_name = make_name(tld) if isinstance(tld, str) else tld
        if len(tld_name) != 1:
            raise ValueError(f"{tld_name} is not a TLD")
        server = self._tld_servers.get(tld_name)
        if server is not None:
            return server

        server_ip = f"192.5.{self._next_tld_ip // 256}.{self._next_tld_ip % 256 + 1}"
        self._next_tld_ip += 1
        ns_name = make_name(f"ns.gtld-servers-{tld_name}.net")

        tld_zone = Zone(tld_name)
        tld_zone.add_record(soa_record(
            tld_name, ns_name, make_name(f"hostmaster.{tld_name}"),
        ))
        server = AuthoritativeServer(f"tld-{tld_name}")
        server.add_zone(tld_zone)
        self.network.register(server_ip, server, self._profile)
        self._tld_servers[tld_name] = server
        self._tld_ips[tld_name] = server_ip

        # Delegate the TLD from the root.
        self.root_zone.add_record(
            ns_record(tld_name, ns_name, ttl=DELEGATION_TTL))
        self.root_zone.add_record(
            a_record(ns_name, server_ip, ttl=DELEGATION_TTL))
        return server

    def tld_server(self, tld: str | DnsName) -> Optional[AuthoritativeServer]:
        tld_name = make_name(tld) if isinstance(tld, str) else tld
        return self._tld_servers.get(tld_name)

    def tld_zone(self, tld: str | DnsName) -> Zone:
        server = self.ensure_tld(tld)
        return server.zones()[-1] if len(server.zones()) == 1 else server.zones()[0]

    # -- child delegation ----------------------------------------------------

    def delegate(self, domain: str | DnsName, ns_name: str | DnsName,
                 ns_ip: str) -> None:
        """Add NS+glue for ``domain`` in its TLD zone.

        The caller is responsible for registering an authoritative server
        for the child zone at ``ns_ip``.
        """
        domain_name = make_name(domain) if isinstance(domain, str) else domain
        if len(domain_name) < 2:
            raise ValueError(f"{domain_name} is not below a TLD")
        nsd = make_name(ns_name) if isinstance(ns_name, str) else ns_name
        tld = DnsName(domain_name.labels[-1:])
        server = self.ensure_tld(tld)
        zone = server.zone_for(domain_name)
        assert zone is not None
        zone.add_record(ns_record(domain_name, nsd, ttl=DELEGATION_TTL))
        if nsd.is_subdomain_of(zone.origin):
            zone.add_record(a_record(nsd, ns_ip, ttl=DELEGATION_TTL))
        else:
            # Out-of-bailiwick nameserver: publish glue at the root so the
            # walk can still find it (simplified sibling-glue handling).
            host_tld = DnsName(nsd.labels[-1:])
            host_server = self.ensure_tld(host_tld)
            host_zone = host_server.zone_for(nsd)
            assert host_zone is not None
            host_zone.add_record(a_record(nsd, ns_ip, ttl=DELEGATION_TTL))
