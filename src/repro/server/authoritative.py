"""Authoritative nameservers.

An :class:`AuthoritativeServer` serves one or more zones, answers per the
zone lookup semantics, and logs every arriving query to its
:class:`~repro.server.querylog.QueryLog`.

Two behavioural switches matter to the paper's techniques:

* ``minimal_responses`` — when True, a CNAME answer contains *only* the
  CNAME record, forcing the querying cache to resolve the target itself.
  The CNAME-chain bypass (§IV-B2a) counts caches on those follow-up target
  queries, so the CDE nameservers run with this enabled.
* referral generation — the names-hierarchy bypass (§IV-B2b) counts the
  *referral* queries each cache must make to the parent before it learns
  the delegation; the parent serves NS+glue exactly as the paper's zone
  fragments describe.
"""

from __future__ import annotations

from typing import Optional

from ..dns.edns import maybe_truncate
from ..dns.message import DnsMessage
from ..dns.name import DnsName
from ..dns.record import ResourceRecord
from ..dns.rrtype import RCode, RRType
from ..dns.zone import LookupKind, Zone
from ..net.network import Network
from .querylog import LogEntry, QueryLog


# cdelint: component=authoritative(logs-source)
class AuthoritativeServer:
    """A nameserver authoritative for a set of zones."""

    def __init__(self, server_id: str, minimal_responses: bool = False,
                 edns_payload_size: Optional[int] = 4096,
                 rrl_rate: Optional[float] = None, rrl_burst: int = 10,
                 indexed_log: bool = True,
                 log_window: Optional[int] = None):
        self.server_id = server_id
        self.minimal_responses = minimal_responses
        self.edns_payload_size = edns_payload_size
        self.query_log = QueryLog(indexed=indexed_log, window=log_window)
        self._zones: list[Zone] = []
        self.online = True  # resilience experiments may take servers down
        #: Response rate limiting: at most ``rrl_rate`` responses/second per
        #: client address, with a burst allowance; excess queries are
        #: silently dropped (BIND RRL ``slip 0`` style).  ``None`` disables.
        self.rrl_rate = rrl_rate
        self.rrl_burst = rrl_burst
        self._rrl_tokens: dict[str, tuple[float, float]] = {}
        self.rrl_dropped = 0

    # -- zone management -------------------------------------------------

    def add_zone(self, zone: Zone) -> None:
        self._zones.append(zone)
        # Keep the most specific origin first for the best-match search.
        self._zones.sort(key=lambda z: len(z.origin), reverse=True)

    def zones(self) -> list[Zone]:
        return list(self._zones)

    def zone_for(self, qname: DnsName) -> Optional[Zone]:
        """The most specific zone containing ``qname``."""
        for zone in self._zones:
            if qname.is_subdomain_of(zone.origin):
                return zone
        return None

    # -- the Endpoint protocol ----------------------------------------------

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: Network) -> Optional[DnsMessage]:
        if not self.online:
            return None
        if message.is_response or message.question is None:
            return None
        if self.rrl_rate is not None and \
                not self._rrl_allow(src_ip, network.clock.now):
            self.rrl_dropped += 1
            return None
        self.query_log.record(LogEntry(
            timestamp=network.clock.now,
            src_ip=src_ip,
            qname=message.qname,
            qtype=message.qtype,
            msg_id=message.msg_id,
        ))
        response = self.respond(message)
        return maybe_truncate(message, response, self.edns_payload_size)

    def _rrl_allow(self, src_ip: str, now: float) -> bool:
        """Token bucket per client address."""
        assert self.rrl_rate is not None
        tokens, last = self._rrl_tokens.get(src_ip, (float(self.rrl_burst),
                                                     now))
        tokens = min(float(self.rrl_burst),
                     tokens + (now - last) * self.rrl_rate)
        if tokens < 1.0:
            self._rrl_tokens[src_ip] = (tokens, now)
            return False
        self._rrl_tokens[src_ip] = (tokens - 1.0, now)
        return True

    # -- answer construction -----------------------------------------------

    def respond(self, query: DnsMessage) -> DnsMessage:
        """Build the authoritative response for ``query``."""
        zone = self.zone_for(query.qname)
        if zone is None:
            refused = query.make_response(RCode.REFUSED)
            refused.edns_payload_size = self._negotiated_payload(query)
            return refused

        result = zone.lookup(query.qname, query.qtype)
        response = query.make_response()
        response.edns_payload_size = self._negotiated_payload(query)

        if result.kind == LookupKind.ANSWER:
            response.authoritative = True
            response.add_answer(result.records)
        elif result.kind == LookupKind.CNAME:
            response.authoritative = True
            response.add_answer(result.records)
            if not self.minimal_responses:
                self._chase_cname_in_zone(zone, result.records[0], query, response)
        elif result.kind == LookupKind.REFERRAL:
            response.authoritative = False
            response.add_authority(result.authority)
            response.add_additional(result.additional)
        elif result.kind == LookupKind.NODATA:
            response.authoritative = True
            if result.soa is not None:
                response.add_authority([result.soa])
        else:  # NXDOMAIN
            response.authoritative = True
            response.rcode = RCode.NXDOMAIN
            if result.soa is not None:
                response.add_authority([result.soa])
        return response

    def _negotiated_payload(self, query: DnsMessage) -> Optional[int]:
        if query.edns_payload_size is None or self.edns_payload_size is None:
            return None
        return self.edns_payload_size

    def _chase_cname_in_zone(self, zone: Zone, cname_record: "ResourceRecord",
                             query: DnsMessage, response: DnsMessage,
                             max_depth: int = 8) -> None:
        """Append in-zone CNAME targets to the answer (full responses only)."""
        from ..dns.record import CnameRdata

        depth = 0
        current = cname_record
        while depth < max_depth:
            depth += 1
            assert isinstance(current.rdata, CnameRdata)
            target = current.rdata.target
            if not target.is_subdomain_of(zone.origin):
                return
            if zone.delegation_point_for(target) is not None:
                return
            result = zone.lookup(target, query.qtype)
            if result.kind == LookupKind.ANSWER:
                response.add_answer(result.records)
                return
            if result.kind == LookupKind.CNAME:
                response.add_answer(result.records)
                current = result.records[0]
                continue
            return
