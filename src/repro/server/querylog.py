"""Nameserver query logs.

The entire measurement methodology of the paper consumes exactly one data
source: the queries arriving at the CDE-controlled nameservers.  "Our study
proceeds by observing and counting the number of queries arriving at our
nameservers" (§IV-A).  :class:`QueryLog` records each arrival and offers the
counting/grouping primitives the enumeration and mapping techniques need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..dns.name import DnsName
from ..dns.rrtype import RRType


@dataclass(frozen=True)
class LogEntry:
    timestamp: float
    src_ip: str
    qname: DnsName
    qtype: RRType
    msg_id: int = 0


class QueryLog:
    """Append-only log with counting helpers."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self._marks: dict[str, int] = {}

    def record(self, entry: LogEntry) -> None:
        self._entries.append(entry)

    # -- marks: named positions for incremental reads -----------------------

    def mark(self, label: str) -> None:
        """Remember the current end of the log under ``label``."""
        self._marks[label] = len(self._entries)

    def since_mark(self, label: str) -> list[LogEntry]:
        return self._entries[self._marks.get(label, 0):]

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entries(self, qname: Optional[DnsName] = None,
                qtype: Optional[RRType] = None,
                src_ip: Optional[str] = None,
                since: Optional[float] = None,
                predicate: Optional[Callable[[LogEntry], bool]] = None
                ) -> list[LogEntry]:
        """Filtered view of the log; all filters are conjunctive."""
        result = []
        for entry in self._entries:
            if qname is not None and entry.qname != qname:
                continue
            if qtype is not None and entry.qtype != qtype:
                continue
            if src_ip is not None and entry.src_ip != src_ip:
                continue
            if since is not None and entry.timestamp < since:
                continue
            if predicate is not None and not predicate(entry):
                continue
            result.append(entry)
        return result

    def count(self, qname: Optional[DnsName] = None,
              qtype: Optional[RRType] = None,
              since: Optional[float] = None) -> int:
        return len(self.entries(qname=qname, qtype=qtype, since=since))

    def count_transactions(self, qname: Optional[DnsName] = None,
                           qtype: Optional[RRType] = None,
                           since: Optional[float] = None) -> int:
        """Entries deduplicated by (source, message id, question).

        A resolver that loses our response retransmits the *same* DNS
        message, so raw arrival counts inflate under packet loss; distinct
        transactions are the quantity the enumeration techniques need.
        """
        seen = {
            (entry.src_ip, entry.msg_id, entry.qname, entry.qtype)
            for entry in self.entries(qname=qname, qtype=qtype, since=since)
        }
        return len(seen)

    def count_under(self, suffix: DnsName, since: Optional[float] = None,
                    dedupe: bool = True) -> int:
        """Queries whose qname falls at or under ``suffix``.

        Deduplicates retransmissions (same source, message id and question)
        by default — see :meth:`count_transactions`.
        """
        matching = self.entries(
            since=since,
            predicate=lambda entry: entry.qname.is_subdomain_of(suffix),
        )
        if not dedupe:
            return len(matching)
        return len({(entry.src_ip, entry.msg_id, entry.qname, entry.qtype)
                    for entry in matching})

    def sources(self, qname: Optional[DnsName] = None,
                suffix: Optional[DnsName] = None,
                since: Optional[float] = None) -> set[str]:
        """Distinct source IPs seen — the paper's egress-IP census input."""
        predicate = None
        if suffix is not None:
            predicate = lambda entry: entry.qname.is_subdomain_of(suffix)  # noqa: E731
        return {
            entry.src_ip
            for entry in self.entries(qname=qname, since=since, predicate=predicate)
        }

    def qtype_histogram(self, since: Optional[float] = None) -> dict[RRType, int]:
        histogram: dict[RRType, int] = {}
        for entry in self.entries(since=since):
            histogram[entry.qtype] = histogram.get(entry.qtype, 0) + 1
        return histogram

    def clear(self) -> None:
        self._entries.clear()
        self._marks.clear()
