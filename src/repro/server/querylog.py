"""Nameserver query logs.

The entire measurement methodology of the paper consumes exactly one data
source: the queries arriving at the CDE-controlled nameservers.  "Our study
proceeds by observing and counting the number of queries arriving at our
nameservers" (§IV-A).  :class:`QueryLog` records each arrival and offers the
counting/grouping primitives the enumeration and mapping techniques need.

Counting is the measurement hot path: a population sweep interrogates the
log a handful of times per platform, and with one shared log the naive
full-scan implementation turns sweeps quadratic.  The log therefore keeps
two incremental indexes (built as entries are recorded):

* **by qname** — exact-name lookups (``entries(qname=...)``, ``count``,
  ``count_transactions``, ``sources(qname=...)``) touch only that name's
  entries;
* **by suffix** — every entry is indexed under each ancestor of its qname,
  so ``count_under``/``sources(suffix=...)`` touch only the subtree.

Within any index bucket (and the log itself) timestamps are nondecreasing
— the simulated clock never runs backwards — so ``since`` filters bisect
instead of scanning.  Should an out-of-order timestamp ever be recorded,
the log detects it and falls back to linear ``since`` filtering.

``QueryLog(indexed=False)`` preserves the original full-scan behaviour;
the scaling benches use it to measure exactly what the indexes buy.

**Ring-buffer mode** (``QueryLog(window=N)``) bounds memory for streaming
censuses: only the most recent ``N`` entries stay live.  Positions are
*global* (they keep counting past evictions), the backing lists compact
amortized-O(1), and index buckets prune their dead prefixes lazily, so the
full indexed query API — ``count``/``count_under``/``sources``/
``entries_for_any`` — answers identically to an unbounded log as long as
every entry a query touches is still inside the window.  The census
pipeline sizes the window above any single platform's probe horizon, which
is all the measurement techniques ever look back across (probe names are
unique and queries carry ``since`` cutoffs).  ``window=None`` (the
default) never evicts and is byte-identical to the seed behaviour.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..dns.name import DnsName
from ..dns.rrtype import RRType

#: Dead-prefix length beyond which a ring-mode index bucket is compacted.
#: Compaction pays O(live) to drop O(dead); requiring dead >= live/2 (and a
#: small floor) makes the cost amortized O(1) per recorded entry.
_BUCKET_COMPACT_FLOOR = 32


@dataclass(frozen=True)
class LogEntry:
    timestamp: float
    src_ip: str
    qname: DnsName
    qtype: RRType
    msg_id: int = 0


class QueryLog:
    """Append-only log with counting helpers (optionally a ring buffer)."""

    def __init__(self, indexed: bool = True,
                 window: Optional[int] = None) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be a positive entry count")
        self._entries: list[LogEntry] = []
        self._marks: dict[str, int] = {}
        self.indexed = indexed
        self.window = window
        #: Entry positions per exact qname / per qname ancestor (incl. self).
        #: Positions are global: they never shift when the ring compacts.
        self._by_qname: dict[DnsName, list[int]] = {}
        self._by_suffix: dict[DnsName, list[int]] = {}
        #: Timestamps parallel to ``_entries`` (for ``since`` bisection).
        self._timestamps: list[float] = []
        self._monotonic = True
        #: Global position of ``_entries[0]`` (>0 once the ring compacted).
        self._origin = 0
        #: Global position of the oldest *live* entry (== evicted count).
        self._head = 0

    def record(self, entry: LogEntry) -> None:
        if self.indexed:
            position = self._origin + len(self._entries)
            if self._timestamps and entry.timestamp < self._timestamps[-1]:
                self._monotonic = False
            self._timestamps.append(entry.timestamp)
            self._by_qname.setdefault(entry.qname, []).append(position)
            for ancestor in entry.qname.ancestors(include_self=True):
                self._by_suffix.setdefault(ancestor, []).append(position)
        self._entries.append(entry)
        if self.window is not None and len(self) > self.window:
            self._evict_oldest()

    # -- ring-buffer bookkeeping --------------------------------------------

    @property
    def total_recorded(self) -> int:
        """Entries ever recorded, evicted ones included."""
        return self._origin + len(self._entries)

    @property
    def evicted(self) -> int:
        """Entries dropped by the ring (always 0 without a window)."""
        return self._head

    def _evict_oldest(self) -> None:
        """Advance the live head by one and groom the indexes behind it."""
        entry = self._entries[self._head - self._origin]
        self._head += 1
        if self.indexed:
            self._prune_bucket(self._by_qname, entry.qname)
            for ancestor in entry.qname.ancestors(include_self=True):
                self._prune_bucket(self._by_suffix, ancestor)
        # Compact the backing lists once the dead prefix has grown to the
        # window size — O(window) work every `window` evictions.
        dead = self._head - self._origin
        if dead >= (self.window or 0):
            del self._entries[:dead]
            if self.indexed:
                del self._timestamps[:dead]
            self._origin = self._head

    def _prune_bucket(self, index: dict[DnsName, list[int]],
                      key: DnsName) -> None:
        """Drop a bucket's dead prefix when it dominates the bucket."""
        bucket = index.get(key)
        if bucket is None:
            return
        dead = bisect_left(bucket, self._head)
        if dead == len(bucket):
            del index[key]
        elif dead >= _BUCKET_COMPACT_FLOOR and dead * 2 >= len(bucket):
            del bucket[:dead]

    # -- marks: named positions for incremental reads -----------------------

    def mark(self, label: str) -> None:
        """Remember the current end of the log under ``label``."""
        self._marks[label] = self._origin + len(self._entries)

    def since_mark(self, label: str) -> list[LogEntry]:
        start = max(self._marks.get(label, 0), self._head) - self._origin
        return self._entries[start:]

    # -- index plumbing -----------------------------------------------------

    def _positions_since(self, positions: list[int],
                         since: Optional[float]) -> Iterable[int]:
        """The live subset of ``positions`` at/after ``since``.

        Positions inside an index bucket are in record order, hence their
        timestamps are nondecreasing while the clock is monotonic — the
        ``since`` cutoff is a bisection, not a scan.  In ring mode the
        bucket may still carry a dead prefix; a second bisection skips it.
        """
        start = bisect_left(positions, self._head) if self._head else 0
        if since is None:
            return positions[start:] if start else positions
        if not self._monotonic:
            origin = self._origin
            return (p for p in positions[start:]
                    if self._entries[p - origin].timestamp >= since)
        origin = self._origin
        cut = bisect_left(positions, since, lo=start,
                          key=lambda p: self._timestamps[p - origin])
        return positions[cut:]

    def _scan_start(self, since: Optional[float]) -> int:
        """First live list index at/after ``since`` for whole-log walks."""
        live = self._head - self._origin
        if since is None or not self.indexed or not self._monotonic:
            return live
        return max(live, bisect_left(self._timestamps, since))

    def _candidates(self, qname: Optional[DnsName],
                    since: Optional[float]) -> Iterable[LogEntry]:
        """Entries narrowed by the cheapest applicable index."""
        if self.indexed and qname is not None:
            positions = self._by_qname.get(qname)
            if positions is None:
                return ()
            origin = self._origin
            return (self._entries[p - origin]
                    for p in self._positions_since(positions, since))
        start = self._scan_start(since)
        return self._entries[start:] if start else self._entries

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return self._origin + len(self._entries) - self._head

    def __iter__(self) -> Iterator[LogEntry]:
        live = self._head - self._origin
        return iter(self._entries[live:] if live else self._entries)

    def entries(self, qname: Optional[DnsName] = None,
                qtype: Optional[RRType] = None,
                src_ip: Optional[str] = None,
                since: Optional[float] = None,
                predicate: Optional[Callable[[LogEntry], bool]] = None
                ) -> list[LogEntry]:
        """Filtered view of the log; all filters are conjunctive."""
        narrowed = self.indexed and qname is not None
        result = []
        for entry in self._candidates(qname, since):
            if not narrowed:
                if qname is not None and entry.qname != qname:
                    continue
                if since is not None and entry.timestamp < since:
                    continue
            if qtype is not None and entry.qtype != qtype:
                continue
            if src_ip is not None and entry.src_ip != src_ip:
                continue
            if predicate is not None and not predicate(entry):
                continue
            result.append(entry)
        return result

    def entries_under(self, suffix: DnsName,
                      since: Optional[float] = None) -> list[LogEntry]:
        """Entries whose qname falls at or under ``suffix``."""
        if self.indexed:
            positions = self._by_suffix.get(suffix)
            if positions is None:
                return []
            origin = self._origin
            return [self._entries[p - origin]
                    for p in self._positions_since(positions, since)]
        return self.entries(
            since=since,
            predicate=lambda entry: entry.qname.is_subdomain_of(suffix))

    def entries_for_any(self, qnames: Iterable[DnsName],
                        since: Optional[float] = None,
                        under: bool = False) -> list[LogEntry]:
        """Entries matching *any* of ``qnames``, in log order.

        With ``under=True`` a qname matches its whole subtree (the probe
        names of the indirect techniques pick up ``_dmarc.<name>``-style
        descendants).  This is the egress-census primitive: one indexed
        union instead of a full-log predicate scan per probe batch.
        """
        if not self.indexed:
            wanted = set(qnames)
            if under:
                def predicate(entry: LogEntry) -> bool:
                    qname = entry.qname
                    while len(qname) > 0:
                        if qname in wanted:
                            return True
                        qname = qname.parent
                    return False
            else:
                def predicate(entry: LogEntry) -> bool:
                    return entry.qname in wanted
            return self.entries(since=since, predicate=predicate)
        index = self._by_suffix if under else self._by_qname
        positions: set[int] = set()
        for qname in qnames:
            bucket = index.get(qname)
            if bucket:
                positions.update(self._positions_since(bucket, since))
        origin = self._origin
        return [self._entries[p - origin] for p in sorted(positions)]

    def count(self, qname: Optional[DnsName] = None,
              qtype: Optional[RRType] = None,
              src_ip: Optional[str] = None,
              since: Optional[float] = None,
              predicate: Optional[Callable[[LogEntry], bool]] = None) -> int:
        """Number of entries passing the same filters as :meth:`entries`."""
        return len(self.entries(qname=qname, qtype=qtype, src_ip=src_ip,
                                since=since, predicate=predicate))

    def count_transactions(self, qname: Optional[DnsName] = None,
                           qtype: Optional[RRType] = None,
                           since: Optional[float] = None) -> int:
        """Entries deduplicated by (source, message id, question).

        A resolver that loses our response retransmits the *same* DNS
        message, so raw arrival counts inflate under packet loss; distinct
        transactions are the quantity the enumeration techniques need.
        """
        seen = {
            (entry.src_ip, entry.msg_id, entry.qname, entry.qtype)
            for entry in self.entries(qname=qname, qtype=qtype, since=since)
        }
        return len(seen)

    def count_under(self, suffix: DnsName, since: Optional[float] = None,
                    dedupe: bool = True) -> int:
        """Queries whose qname falls at or under ``suffix``.

        Deduplicates retransmissions (same source, message id and question)
        by default — see :meth:`count_transactions`.
        """
        matching = self.entries_under(suffix, since=since)
        if not dedupe:
            return len(matching)
        return len({(entry.src_ip, entry.msg_id, entry.qname, entry.qtype)
                    for entry in matching})

    def sources(self, qname: Optional[DnsName] = None,
                suffix: Optional[DnsName] = None,
                since: Optional[float] = None) -> set[str]:
        """Distinct source IPs seen — the paper's egress-IP census input."""
        if suffix is not None:
            matching: Iterable[LogEntry] = self.entries_under(suffix,
                                                              since=since)
            if qname is not None:
                matching = (entry for entry in matching
                            if entry.qname == qname)
            return {entry.src_ip for entry in matching}
        return {entry.src_ip
                for entry in self.entries(qname=qname, since=since)}

    def qtype_histogram(self, since: Optional[float] = None) -> dict[RRType, int]:
        histogram: dict[RRType, int] = {}
        for entry in self.entries(since=since):
            histogram[entry.qtype] = histogram.get(entry.qtype, 0) + 1
        return histogram

    def clear(self) -> None:
        self._entries.clear()
        self._marks.clear()
        self._by_qname.clear()
        self._by_suffix.clear()
        self._timestamps.clear()
        self._monotonic = True
        self._origin = 0
        self._head = 0
