"""Authoritative-server substrate: zone serving and query logging."""

from .authoritative import AuthoritativeServer
from .hierarchy import DELEGATION_TTL, RootHierarchy
from .querylog import LogEntry, QueryLog

__all__ = ["AuthoritativeServer", "DELEGATION_TTL", "LogEntry", "QueryLog",
           "RootHierarchy"]
