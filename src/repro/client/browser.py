"""Web browsers with local DNS caches.

Paper §IV-B: "The local caches include caches in operating systems, caches
in stub resolvers, caches in web browsers and web proxies; for instance, a
local cache within the browsers, such as Internet Explorer or the stub DNS
resolver's cache within the operating systems, such as Windows8."

:class:`Browser` models the two client-side cache layers that the bypass
techniques must defeat:

* the browser's own host cache, which ignores record TTLs and pins each
  resolution for a fixed period (Chrome ~60 s, IE historically much longer);
* the OS stub resolver's cache underneath it
  (:class:`~repro.resolver.stub.StubResolver`).

``fetch()`` resolves a URL's hostname through both layers, which is all the
measurement cares about; the HTTP exchange itself is abstracted to a
latency charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from .proxy import WebProxy

from ..dns.errors import ResolutionError
from ..dns.name import DnsName, name as make_name
from ..dns.rrtype import RCode, RRType
from ..net.network import Network
from ..resolver.stub import StubResolver


@dataclass
class FetchResult:
    hostname: DnsName
    resolved: bool
    address: Optional[str]
    dns_rtt: float
    from_browser_cache: bool
    from_os_cache: bool


@dataclass
class _HostCacheEntry:
    address: Optional[str]  # None caches a resolution failure
    expires_at: float


class Browser:
    """A browser on one client host."""

    #: Chrome-like fixed host-cache lifetime (seconds), independent of TTL.
    DEFAULT_HOST_CACHE_SECONDS = 60.0

    def __init__(self, host_ip: str, stub: StubResolver, network: Network,
                 host_cache_seconds: float = DEFAULT_HOST_CACHE_SECONDS,
                 proxy: Optional["WebProxy"] = None):
        self.host_ip = host_ip
        self.stub = stub
        self.network = network
        self.host_cache_seconds = host_cache_seconds
        #: Optional shared :class:`~repro.client.proxy.WebProxy`; when set,
        #: hostname resolution happens at the proxy, not at this host.
        self.proxy = proxy
        self._host_cache: dict[DnsName, _HostCacheEntry] = {}
        self.fetches = 0

    def fetch(self, url: str) -> FetchResult:
        """Navigate to ``url``; only the DNS side effects are modelled."""
        self.fetches += 1
        hostname = self._hostname_of(url)
        now = self.network.clock.now

        cached = self._host_cache.get(hostname)
        if cached is not None and now < cached.expires_at:
            return FetchResult(hostname, cached.address is not None,
                               cached.address, 0.0, True, False)

        if self.proxy is not None:
            resolution = self.proxy.resolve(hostname)
            self._host_cache[hostname] = _HostCacheEntry(
                resolution.address,
                self.network.clock.now + self.host_cache_seconds)
            return FetchResult(hostname, resolution.address is not None,
                               resolution.address, resolution.rtt,
                               False, resolution.from_proxy_cache)

        try:
            answer = self.stub.query(hostname, RRType.A)
        except ResolutionError:
            self._host_cache[hostname] = _HostCacheEntry(
                None, now + self.host_cache_seconds)
            return FetchResult(hostname, False, None, 0.0, False, False)

        address = answer.addresses[0] if answer.addresses else None
        resolved = answer.rcode == RCode.NOERROR and address is not None
        self._host_cache[hostname] = _HostCacheEntry(
            address if resolved else None,
            self.network.clock.now + self.host_cache_seconds,
        )
        return FetchResult(hostname, resolved, address, answer.rtt,
                           False, answer.from_local_cache)

    def clear_host_cache(self) -> None:
        self._host_cache.clear()

    @staticmethod
    def _hostname_of(url: str) -> DnsName:
        rest = url.split("://", 1)[-1]
        host = rest.split("/", 1)[0].split(":", 1)[0]
        return make_name(host)
