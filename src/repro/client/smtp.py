"""SMTP servers that trigger DNS lookups on bounce generation.

Paper §III-B: "We establish an SMTP session to each SMTP email server [...]
over which we sent an email message to a non-existing email-box in the
target domain.  Upon receipt of email messages, the SMTP servers trigger DNS
requests via the local recursive resolvers in order to locate or to
authenticate the originator of the email message.  Since the destination is
a non-existing recipient, the receiving email server must generate a
Delivery Status Notification (DSN, or bounce) message [RFC5321]."

:class:`SmtpServer` models one enterprise mail server: it accepts a message,
runs its configured sender-authentication checks (each one a real DNS lookup
through the enterprise's resolution platform), and, for unknown recipients,
performs the MX/A lookups needed to route the bounce.  The per-mechanism
lookup mix is what regenerates the paper's Table I.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..dns.errors import ResolutionError
from ..dns.name import DnsName, name as make_name
from ..dns.rrtype import RRType
from ..resolver.stub import StubResolver


@dataclass(frozen=True)
class SmtpAuthPolicy:
    """Which sender-verification mechanisms this server runs.

    Field defaults match no checks; the population generator draws each flag
    with the marginal frequency the paper measured (Table I).
    """

    checks_spf_txt: bool = False      # modern SPF, published in TXT
    checks_spf_legacy: bool = False   # obsolete SPF qtype 99 [RFC7208]
    checks_adsp: bool = False         # ADSP (with DKIM)
    checks_dkim: bool = False         # DKIM key fetch
    checks_dmarc: bool = False        # DMARC policy
    resolves_bounce_mx: bool = False  # MX/A of the sender for the DSN

    @classmethod
    def draw(cls, rng: random.Random,
             fractions: Optional[dict[str, float]] = None) -> "SmtpAuthPolicy":
        """Draw a policy with the paper's Table I marginal frequencies."""
        f = fractions or TABLE1_FRACTIONS
        return cls(
            checks_spf_txt=rng.random() < f["spf_txt"],
            checks_spf_legacy=rng.random() < f["spf_legacy"],
            checks_adsp=rng.random() < f["adsp"],
            checks_dkim=rng.random() < f["dkim"],
            checks_dmarc=rng.random() < f["dmarc"],
            resolves_bounce_mx=rng.random() < f["bounce_mx"],
        )


#: Marginal per-mechanism frequencies reported in Table I of the paper.
TABLE1_FRACTIONS = {
    "spf_txt": 0.696,
    "spf_legacy": 0.142,
    "adsp": 0.02,
    "dkim": 0.003,
    "dmarc": 0.353,
    "bounce_mx": 0.304,
}

#: DKIM selector used when fetching a key (any selector works for counting).
DKIM_SELECTOR = "default"


@dataclass
class DeliveryAttempt:
    """Record of one received message and the lookups it caused."""

    mail_from: str
    rcpt_to: str
    bounced: bool
    lookups: list[tuple[DnsName, RRType]] = field(default_factory=list)


class SmtpServer:
    """One enterprise mail server with its local resolver."""

    def __init__(self, domain: str | DnsName, host_ip: str,
                 stub: StubResolver, policy: SmtpAuthPolicy,
                 mailbox_names: Optional[set[str]] = None):
        self.domain = make_name(domain) if isinstance(domain, str) else domain
        self.host_ip = host_ip
        self.stub = stub
        self.policy = policy
        self.mailboxes = mailbox_names if mailbox_names is not None else {"postmaster"}
        self.attempts: list[DeliveryAttempt] = []

    # -- the SMTP surface -------------------------------------------------

    def receive_message(self, mail_from: str, rcpt_to: str) -> DeliveryAttempt:
        """Accept a message; run auth checks; bounce unknown recipients.

        ``mail_from`` is ``user@sender.domain``; all DNS lookups derive from
        the sender domain, which is how the CDE smuggles probe names into
        the enterprise's resolution platform.
        """
        sender_domain = make_name(mail_from.rsplit("@", 1)[-1])
        local_part = rcpt_to.rsplit("@", 1)[0]
        attempt = DeliveryAttempt(mail_from=mail_from, rcpt_to=rcpt_to,
                                  bounced=local_part not in self.mailboxes)
        self._run_auth_checks(sender_domain, attempt)
        if attempt.bounced:
            self._route_bounce(sender_domain, attempt)
        self.attempts.append(attempt)
        return attempt

    # -- lookup machinery ---------------------------------------------------

    def _lookup(self, qname: DnsName, qtype: RRType,
                attempt: DeliveryAttempt) -> None:
        attempt.lookups.append((qname, qtype))
        try:
            self.stub.query(qname, qtype)
        except ResolutionError:
            pass  # verification failures do not stop bounce processing

    def _run_auth_checks(self, sender_domain: DnsName,
                         attempt: DeliveryAttempt) -> None:
        policy = self.policy
        if policy.checks_spf_txt:
            self._lookup(sender_domain, RRType.TXT, attempt)
        if policy.checks_spf_legacy:
            self._lookup(sender_domain, RRType.SPF, attempt)
        if policy.checks_dmarc:
            self._lookup(sender_domain.prepend("_dmarc"), RRType.TXT, attempt)
        if policy.checks_adsp:
            self._lookup(sender_domain.prepend("_adsp", "_domainkey"),
                         RRType.TXT, attempt)
        if policy.checks_dkim:
            self._lookup(sender_domain.prepend(DKIM_SELECTOR, "_domainkey"),
                         RRType.TXT, attempt)

    def _route_bounce(self, sender_domain: DnsName,
                      attempt: DeliveryAttempt) -> None:
        """Find where to deliver the DSN: the sender's MX, then its A."""
        if not self.policy.resolves_bounce_mx:
            return
        self._lookup(sender_domain, RRType.MX, attempt)
        self._lookup(sender_domain, RRType.A, attempt)
