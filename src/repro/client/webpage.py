"""Ad-network data collection (paper §III-C).

"We used an ad-network to collect data from the resolvers used by web
clients. [...] we embedded our script (which is a combination of Javascript
and HTML) in an ad network page [...] wrapped in an iframe [...].  When
downloading the web page, the Javascript causes the browser to navigate to
our URLs, which generates DNS requests to our CDE infrastructure. [...] Out
of 12K clients, approximately 1:50 of the executions resulted in tests that
completed successfully."

:class:`AdCampaign` models that pipeline: impressions arrive from browser
clients (each behind its ISP's resolution platform); each impression loads
the measurement script with probability ``script_load_rate`` (the AJAX
callback confirming "page loaded and functional"), and a loaded script runs
to completion — the test "ran as a pop-under and needed several minutes" —
with probability ``completion_rate``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from .browser import Browser
from ..net.rng import fallback_rng

#: Paper: ~1 in 50 executions completed the full (several-minute) test.
PAPER_COMPLETION_RATE = 1.0 / 50.0


@dataclass
class Impression:
    """One ad served to one client browser."""

    browser: Browser
    script_loaded: bool
    completed: bool
    fetched_urls: list[str] = field(default_factory=list)


@dataclass
class CampaignStats:
    impressions: int = 0
    scripts_loaded: int = 0
    completed: int = 0

    @property
    def completion_rate(self) -> float:
        return self.completed / self.impressions if self.impressions else 0.0


class AdCampaign:
    """Serves the measurement iframe through an ad network."""

    def __init__(self, script_load_rate: float = 0.95,
                 completion_rate: float = PAPER_COMPLETION_RATE,
                 rng: Optional[random.Random] = None):
        if not 0 < script_load_rate <= 1 or not 0 < completion_rate <= 1:
            raise ValueError("rates must be in (0, 1]")
        self.script_load_rate = script_load_rate
        self.completion_rate = completion_rate
        self.rng = rng or fallback_rng("client.AdCampaign")
        self.stats = CampaignStats()

    def serve(self, browser: Browser,
              test_script: Callable[[Browser], list[str]]) -> Impression:
        """Serve one impression; run ``test_script`` when it survives.

        ``test_script`` receives the browser and returns the URLs it
        fetched; it is only invoked for impressions that load *and*
        complete, mirroring the paper's successful-test filter.
        """
        self.stats.impressions += 1
        script_loaded = self.rng.random() < self.script_load_rate
        if script_loaded:
            self.stats.scripts_loaded += 1
        completed = script_loaded and self.rng.random() < self.completion_rate
        impression = Impression(browser=browser, script_loaded=script_loaded,
                                completed=completed)
        if completed:
            self.stats.completed += 1
            impression.fetched_urls = test_script(browser)
        return impression

    def expected_completions(self, impressions: int) -> float:
        return impressions * self.script_load_rate * self.completion_rate
