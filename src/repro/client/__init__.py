"""Indirect-prober substrates: browsers, ad-network machinery, SMTP servers."""

from .browser import Browser, FetchResult
from .proxy import ProxyResolution, WebProxy
from .smtp import (
    DKIM_SELECTOR,
    TABLE1_FRACTIONS,
    DeliveryAttempt,
    SmtpAuthPolicy,
    SmtpServer,
)
from .webpage import PAPER_COMPLETION_RATE, AdCampaign, CampaignStats, Impression

__all__ = [
    "AdCampaign", "Browser", "CampaignStats", "DKIM_SELECTOR",
    "DeliveryAttempt", "FetchResult", "Impression", "PAPER_COMPLETION_RATE",
    "ProxyResolution", "SmtpAuthPolicy", "SmtpServer", "TABLE1_FRACTIONS",
    "WebProxy",
]
