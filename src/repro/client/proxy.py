"""Web proxies with shared DNS caches.

Paper §IV-B lists the local caches an indirect probe must traverse: "caches
in operating systems, caches in stub resolvers, caches in web browsers and
web proxies".  The first three are per-client; a web proxy is *shared* — an
enterprise's browsers all resolve through it, so one client's lookup
shields every other client's repeat.

:class:`WebProxy` models that layer: it owns a stub resolver (with the
proxy host's OS cache) and fields hostname resolutions for any number of
:class:`~repro.client.browser.Browser` instances configured to use it.
The bypass techniques must (and do) defeat this layer too, since the q
probe names stay distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dns.errors import ResolutionError
from ..dns.name import DnsName
from ..dns.rrtype import RCode, RRType
from ..resolver.stub import StubResolver


@dataclass
class ProxyResolution:
    address: Optional[str]
    rtt: float
    from_proxy_cache: bool


class WebProxy:
    """A shared forward proxy; only its DNS behaviour is modelled."""

    def __init__(self, name: str, stub: StubResolver):
        self.name = name
        self.stub = stub
        self.resolutions = 0
        self.cache_hits = 0

    @property
    def host_ip(self) -> str:
        return self.stub.host_ip

    def resolve(self, hostname: DnsName) -> ProxyResolution:
        """Resolve on behalf of a client browser."""
        self.resolutions += 1
        try:
            answer = self.stub.query(hostname, RRType.A)
        except ResolutionError:
            return ProxyResolution(address=None, rtt=0.0,
                                   from_proxy_cache=False)
        if answer.from_local_cache:
            self.cache_hits += 1
        address = answer.addresses[0] if answer.addresses else None
        if answer.rcode != RCode.NOERROR:
            address = None
        return ProxyResolution(address=address, rtt=answer.rtt,
                               from_proxy_cache=answer.from_local_cache)
