"""Address-provenance and cache-identity facts (the cdetopo layer).

The paper's CDE techniques hinge on a correct ingress→cache mapping, and
the population-realism roadmap deliberately breaks it: transparent
forwarders spoof-forward the client source address, ISP frontends share
one cache across many ingress identities, NATed pools rewrite egress
addresses.  Before the component zoo grows, every resolver/server class
must *declare* what it does to the identities cache counting depends on,
and the declarations must be proven against the code.  This module
extracts the static facts the CDE020–CDE022 rules prove that contract
with — all config-independent pure functions of a file's bytes, so they
live in the content-hash-keyed summary cache and replay warm:

* **Address sites** (:class:`AddrSite`) — source/egress addresses
  escaping into upstream ``Network.query`` sends or ``QueryLog``
  records.  Each site classifies the address's *origin*: a parameter
  flowing through unchanged is a spoof-preserve (the transparent-
  forwarder signature); a ``self``-rooted value is a rewrite (the
  platform's own identity replaces the client's).  Sites carry a
  def-use witness in the cdeflow hop format (``name@line``).
* **Cache sites** (:class:`CacheSite`) — which component owns each
  cache object (``self.<cache attr> = ...``) and where a cache value is
  passed into another component's constructor.  Two ingress identities
  sharing one cache object is exactly the bias the paper's counting is
  blind to.
* **TTL sites** (:class:`TtlSite`) — arithmetic that could *extend* a
  stored TTL (additive self-reference, ``max(...)`` folds, configured
  ``with_ttl`` rewrites).  Honest caches only ever count down.

Components declare their contract with ``# cdelint:
component=<role>(attrs)`` markers on class definitions (or a
``[tool.cdelint] components`` table); :func:`module_components` binds
the markers, and the rules check declared roles against extracted
behaviour.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterator, Optional

from .astutil import dotted_name

#: The component-role taxonomy (docs/STATIC_ANALYSIS.md).  Roles name
#: what the component *is* on the resolution path; attributes name what
#: it is allowed to *do* to addresses, caches and logs.
COMPONENT_ROLES = frozenset({
    "anycast-ingress", "authoritative", "cache", "client", "forwarder",
    "frontend", "nat-pool", "recursive", "transparent-forwarder",
})

COMPONENT_ATTRS = frozenset({
    "logs-source", "owns-cache", "rewrites-source", "shared-cache",
    "spoofs-source",
})

#: AddrSite kinds that send a query upstream (vs. logging/registration).
FORWARD_KINDS = frozenset({"spoof-forward", "rewrite-forward"})


@dataclass(frozen=True, order=True)
class AddrSite:
    """One source/egress address escaping into a send, log or binding."""

    line: int
    col: int
    kind: str   # "spoof-forward" | "rewrite-forward" | "log-source"
                # | "log-rewrite" | "register" | "register-many"
    src: str    # origin key: "param:src_ip", "attr:self.listen_ip", ...
    dest: str   # sink: "query", the log constructor name, "register"
    hops: tuple[str, ...]   # def-use witness ("src_ip@63", "query@63")

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.kind, self.src, self.dest,
                list(self.hops)]

    @classmethod
    def from_json(cls, raw: list[object]) -> "AddrSite":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   kind=str(raw[2]), src=str(raw[3]), dest=str(raw[4]),
                   hops=tuple(str(h) for h in raw[5]))  # type: ignore[union-attr]


@dataclass(frozen=True, order=True)
class CacheSite:
    """One cache-ownership or cache-passing site."""

    line: int
    col: int
    kind: str   # "own" (self.<attr> = <cache value>) | "pass" (ctor arg)
    attr: str   # owned attribute ("self.cache") or constructor name
    value: str  # value descriptor: "param:cache", "call:DnsCache", dotted

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.kind, self.attr, self.value]

    @classmethod
    def from_json(cls, raw: list[object]) -> "CacheSite":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   kind=str(raw[2]), attr=str(raw[3]), value=str(raw[4]))


@dataclass(frozen=True, order=True)
class TtlSite:
    """One TTL-arithmetic site that could extend a stored TTL."""

    line: int
    col: int
    kind: str    # "extend" (additive/max self-reference) | "rewrite"
    target: str  # the TTL-ish target dotted path, or "with_ttl"
    detail: str  # short human label

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.kind, self.target, self.detail]

    @classmethod
    def from_json(cls, raw: list[object]) -> "TtlSite":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   kind=str(raw[2]), target=str(raw[3]), detail=str(raw[4]))


@dataclass(frozen=True, order=True)
class ComponentDecl:
    """One class and its (possibly empty) component declaration."""

    name: str                  # dotted class path within the module
    line: int
    role: str                  # "" when the class carries no marker
    attrs: tuple[str, ...]

    def to_json(self) -> list[object]:
        return [self.name, self.line, self.role, list(self.attrs)]

    @classmethod
    def from_json(cls, raw: list[object]) -> "ComponentDecl":
        return cls(name=str(raw[0]), line=int(raw[1]),  # type: ignore[arg-type]
                   role=str(raw[2]),
                   attrs=tuple(str(a) for a in raw[3]))  # type: ignore[union-attr]


@dataclass(frozen=True)
class TopoFacts:
    """The cdetopo slice of one function's summary."""

    addr: tuple[AddrSite, ...]
    caches: tuple[CacheSite, ...]
    ttls: tuple[TtlSite, ...]


# ---------------------------------------------------------------------------
# component markers
# ---------------------------------------------------------------------------

_COMPONENT_RE = re.compile(
    r"#\s*cdelint:\s*component\s*=\s*(?P<role>[A-Za-z][A-Za-z-]*)"
    r"\s*(?:\((?P<attrs>[^)]*)\))?"
)


def parse_component_markers(
    source: str,
) -> dict[int, tuple[str, tuple[str, ...]]]:
    """``# cdelint: component=<role>(attrs)`` comments, by line number."""
    markers: dict[int, tuple[str, tuple[str, ...]]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return markers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _COMPONENT_RE.search(token.string)
        if match is None:
            continue
        attrs = tuple(sorted(
            part.strip() for part in (match.group("attrs") or "").split(",")
            if part.strip()
        ))
        markers[token.start[0]] = (match.group("role"), attrs)
    return markers


def parse_component_table(
    entries: tuple[str, ...],
) -> dict[str, tuple[str, tuple[str, ...]]]:
    """``ClassName=role(attrs)`` config entries as name -> (role, attrs)."""
    table: dict[str, tuple[str, tuple[str, ...]]] = {}
    for entry in entries:
        name, _, decl = entry.partition("=")
        match = re.fullmatch(
            r"(?P<role>[A-Za-z][A-Za-z-]*)\s*(?:\((?P<attrs>[^)]*)\))?",
            decl.strip())
        if match is None:
            raise ValueError(
                f"[tool.cdelint] components entry {entry!r} is not "
                f"'ClassName=role(attr, ...)'")
        attrs = tuple(sorted(
            part.strip() for part in (match.group("attrs") or "").split(",")
            if part.strip()
        ))
        table[name.strip()] = (match.group("role"), attrs)
    return table


def module_components(
    tree: ast.Module,
    markers: dict[int, tuple[str, tuple[str, ...]]],
) -> dict[str, ComponentDecl]:
    """Every class in the module with its bound component marker.

    A marker binds on the ``class`` line or the line above it (mirroring
    the replica-of convention).  Unmarked classes are recorded with an
    empty role so the rules can tell "undeclared component" apart from
    "not a class at all".
    """

    def visit(node: ast.AST, prefix: str) -> Iterator[ComponentDecl]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                path = f"{prefix}.{child.name}" if prefix else child.name
                role, attrs = (markers.get(child.lineno)
                               or markers.get(child.lineno - 1)
                               or ("", ()))
                yield ComponentDecl(name=path, line=child.lineno,
                                    role=role, attrs=attrs)
                yield from visit(child, path)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                path = f"{prefix}.{child.name}" if prefix else child.name
                yield from visit(child, path)
            else:
                yield from visit(child, prefix)

    return {decl.name: decl for decl in visit(tree, "")}


def effective_contract(
    decl: ComponentDecl,
    table: dict[str, tuple[str, tuple[str, ...]]],
) -> tuple[str, tuple[str, ...]]:
    """The contract in force for a class: its in-source marker, else its
    ``[tool.cdelint] components`` table entry, else ``("", ())``."""
    if decl.role:
        return decl.role, decl.attrs
    simple = decl.name.rsplit(".", 1)[-1]
    if simple in table:
        return table[simple]
    return "", ()


def owning_class(qualname: str,
                 components: dict[str, ComponentDecl]) -> Optional[str]:
    """The longest declared class path that is a proper prefix of
    ``qualname`` (handles methods and defs nested inside methods)."""
    parts = qualname.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in components:
            return candidate
    return None


# ---------------------------------------------------------------------------
# fact extraction
# ---------------------------------------------------------------------------

def _receiver(expr: ast.expr) -> tuple[Optional[str], str]:
    """``(root_name, dotted)`` of a value chain; subscripts render as
    ``[]``, root ``None`` when not anchored at a simple name."""
    parts: list[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append("[]")
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return node.id, _join(parts)
        else:
            parts.append("<expr>")
            return None, _join(parts)


def _join(parts: list[str]) -> str:
    rendered = ""
    for part in reversed(parts):
        if part == "[]":
            rendered += "[]"
        elif rendered:
            rendered += "." + part
        else:
            rendered = part
    return rendered


def _param_names(func: ast.AST) -> frozenset[str]:
    args = getattr(func, "args", None)
    if args is None:
        return frozenset()
    names = [a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return frozenset(names)


def _cache_ish(segment: str) -> bool:
    """Whether one dotted segment names a cache *object* (``cache``,
    ``local_cache``) — counts (``n_caches``) and derived identifiers
    (``cache_id``, ``cache_selector``) are deliberately excluded."""
    if segment.startswith("n_"):
        return False
    return (segment in ("cache", "caches")
            or segment.endswith("_cache") or segment.endswith("_caches"))


def _ttl_ish(dotted: str) -> bool:
    return any("ttl" in segment or "expires" in segment
               for segment in dotted.replace("[]", "").split("."))


def _callee_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class _TopoWalker:
    """Own-body walk harvesting address, cache and TTL sites."""

    def __init__(self, func: ast.AST):
        from .effects import _walk_own

        self.params = _param_names(func)
        self.assigns: dict[str, ast.expr] = {}
        self.addr: list[AddrSite] = []
        self.caches: list[CacheSite] = []
        self.ttls: list[TtlSite] = []

        nodes = list(_walk_own(func))
        for node in nodes:        # bindings first: order-independent chase
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assigns.setdefault(target.id, node.value)
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                  and isinstance(node.target, ast.Name)):
                self.assigns.setdefault(node.target.id, node.value)
        for node in nodes:
            if isinstance(node, ast.Call):
                self._handle_call(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._handle_assign(target, node.value, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._handle_assign(node.target, node.value, node)
            elif isinstance(node, ast.AugAssign):
                self._handle_augassign(node)

    # -- address origins ----------------------------------------------------

    def _addr_origin(
        self, expr: ast.expr, seen: frozenset[str],
    ) -> Optional[tuple[str, str, tuple[str, ...]]]:
        """``(origin, src, hops)`` of an address expression.

        ``origin`` is ``"preserve"`` when the value is rooted in a
        non-``self`` parameter (the caller's address flows through) and
        ``"rewrite"`` when it is rooted in ``self`` (the component's own
        identity replaces it).
        """
        if isinstance(expr, ast.Name):
            hop = (f"{expr.id}@{expr.lineno}",)
            if expr.id in self.params and expr.id != "self":
                return "preserve", f"param:{expr.id}", hop
            bound = self.assigns.get(expr.id)
            if bound is not None and expr.id not in seen:
                chased = self._addr_origin(bound, seen | {expr.id})
                if chased is not None:
                    origin, src, hops = chased
                    return origin, src, hop + hops
            return None
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            root, dotted = _receiver(expr)
            if root is None:
                return None
            hop = (f"{dotted}@{expr.lineno}",)
            if root == "self":
                return "rewrite", f"attr:{dotted}", hop
            if root in self.params:
                return "preserve", f"param:{dotted}", hop
            return None
        return None

    # -- calls --------------------------------------------------------------

    def _handle_call(self, node: ast.Call) -> None:
        callee = _callee_name(node.func)
        if (isinstance(node.func, ast.Attribute) and callee == "query"
                and len(node.args) >= 3):
            origin = self._addr_origin(node.args[0], frozenset())
            if origin is not None:
                kind, src, hops = origin
                self.addr.append(AddrSite(
                    line=node.lineno, col=node.col_offset,
                    kind=("spoof-forward" if kind == "preserve"
                          else "rewrite-forward"),
                    src=src, dest="query",
                    hops=hops + (f"query@{node.lineno}",)))
        if (isinstance(node.func, ast.Attribute)
                and callee in ("register", "register_many")):
            if any(isinstance(arg, ast.Name) and arg.id == "self"
                   for arg in node.args):
                self.addr.append(AddrSite(
                    line=node.lineno, col=node.col_offset,
                    kind=("register" if callee == "register"
                          else "register-many"),
                    src="attr:self", dest=callee,
                    hops=(f"{callee}@{node.lineno}",)))
        if callee.endswith("LogEntry"):
            for keyword in node.keywords:
                if keyword.arg is None or not (
                        keyword.arg == "src_ip"
                        or keyword.arg.endswith("_ip")):
                    continue
                origin = self._addr_origin(keyword.value, frozenset())
                if origin is not None:
                    kind, src, hops = origin
                    self.addr.append(AddrSite(
                        line=node.lineno, col=node.col_offset,
                        kind=("log-source" if kind == "preserve"
                              else "log-rewrite"),
                        src=src, dest=callee,
                        hops=hops + (f"{callee}@{node.lineno}",)))
        if callee[:1].isupper():
            self._handle_ctor(node, callee)
        if callee == "with_ttl" and isinstance(node.func, ast.Attribute):
            self._handle_with_ttl(node)

    def _handle_ctor(self, node: ast.Call, callee: str) -> None:
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            if not isinstance(value, (ast.Name, ast.Attribute,
                                      ast.Subscript)):
                continue
            root, dotted = _receiver(value)
            if root is None:
                continue
            segments = dotted.replace("[]", "").split(".")
            if not (any(_cache_ish(seg) for seg in segments)
                    or self._cache_value(value, frozenset()) is not None):
                continue
            self.caches.append(CacheSite(
                line=node.lineno, col=node.col_offset, kind="pass",
                attr=callee, value=dotted))

    # -- cache ownership ----------------------------------------------------

    def _cache_value(self, value: ast.expr,
                     seen: frozenset[str]) -> Optional[str]:
        """Descriptor when ``value`` is (conservatively) a cache object."""
        if isinstance(value, ast.Name):
            if value.id in self.params and _cache_ish(value.id):
                return f"param:{value.id}"
            bound = self.assigns.get(value.id)
            if bound is not None and value.id not in seen:
                return self._cache_value(bound, seen | {value.id})
            return None
        if isinstance(value, ast.BoolOp):
            for part in value.values:
                descriptor = self._cache_value(part, seen)
                if descriptor is not None:
                    return descriptor
            return None
        if isinstance(value, ast.Call):
            callee = _callee_name(value.func)
            if callee.endswith("Cache") or "build_cache" in callee:
                return f"call:{callee}"
        return None

    def _handle_assign(self, target: ast.expr, value: ast.expr,
                       node: ast.AST) -> None:
        if isinstance(target, (ast.Name, ast.Attribute)):
            self._maybe_ttl_assign(target, value, node)
        if not isinstance(target, ast.Attribute):
            return
        root, dotted = _receiver(target)
        if root != "self" or not _cache_ish(dotted.split(".")[-1]):
            return
        descriptor = self._cache_value(value, frozenset())
        if descriptor is not None:
            self.caches.append(CacheSite(
                line=getattr(node, "lineno", target.lineno),
                col=getattr(node, "col_offset", target.col_offset),
                kind="own", attr=dotted, value=descriptor))

    # -- TTL arithmetic -----------------------------------------------------

    def _maybe_ttl_assign(self, target: ast.expr, value: ast.expr,
                          node: ast.AST) -> None:
        dotted = dotted_name(target)
        if dotted is None or not _ttl_ish(dotted):
            return
        for sub in ast.walk(value):
            if (isinstance(sub, ast.BinOp)
                    and isinstance(sub.op, (ast.Add, ast.Mult))):
                for side in (sub.left, sub.right):
                    if dotted_name(side) == dotted:
                        self.ttls.append(TtlSite(
                            line=getattr(node, "lineno", target.lineno),
                            col=getattr(node, "col_offset", 0),
                            kind="extend", target=dotted,
                            detail="additive self-reference"))
                        return
            if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                    and sub.func.id == "max"):
                if any(dotted_name(arg) == dotted for arg in sub.args):
                    self.ttls.append(TtlSite(
                        line=getattr(node, "lineno", target.lineno),
                        col=getattr(node, "col_offset", 0),
                        kind="extend", target=dotted,
                        detail="max() fold over the stored value"))
                    return

    def _handle_augassign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.Add, ast.Mult)):
            return
        dotted = dotted_name(node.target)
        if dotted is None or not _ttl_ish(dotted):
            return
        op = "+=" if isinstance(node.op, ast.Add) else "*="
        self.ttls.append(TtlSite(
            line=node.lineno, col=node.col_offset, kind="extend",
            target=dotted, detail=f"augmented '{op}'"))

    def _handle_with_ttl(self, node: ast.Call) -> None:
        if len(node.args) != 1 or node.keywords:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant):
            self.ttls.append(TtlSite(
                line=node.lineno, col=node.col_offset, kind="rewrite",
                target="with_ttl", detail=f"constant TTL {arg.value!r}"))
            return
        if isinstance(arg, ast.Attribute):
            root, dotted = _receiver(arg)
            if root == "self":
                self.ttls.append(TtlSite(
                    line=node.lineno, col=node.col_offset, kind="rewrite",
                    target="with_ttl",
                    detail=f"configured TTL {dotted}"))

    # -- result -------------------------------------------------------------

    def facts(self) -> TopoFacts:
        return TopoFacts(
            addr=tuple(sorted(set(self.addr))),
            caches=tuple(sorted(set(self.caches))),
            ttls=tuple(sorted(set(self.ttls))),
        )


def extract_topo_facts(func: ast.AST) -> TopoFacts:
    """The cdetopo facts of one function's own body."""
    return _TopoWalker(func).facts()


# ---------------------------------------------------------------------------
# the --topology report
# ---------------------------------------------------------------------------

TOPOLOGY_SCHEMA_VERSION = 1


def build_topology(summaries: "dict[str, object]",
                   config: "object") -> dict:
    """The proven component graph as a deterministic JSON document.

    One entry per class in a :attr:`LintConfig.component_paths` module
    that either declares a role or exhibits address/cache behaviour.
    ``ingress`` means the component registers itself on the network;
    ``egress`` means an upstream send is reachable from its methods
    through the name-bound call graph (so a frontend that delegates to a
    platform still shows egress reachability).
    """
    from .callgraph import CallGraph
    from .config import path_matches_any

    graph = CallGraph(summaries.values())
    table = parse_component_table(config.components)
    entries = []
    for rel in sorted(summaries):
        if not path_matches_any(rel, config.component_paths):
            continue
        summary = summaries[rel]
        components = dict(getattr(summary, "components", {}))
        by_class: dict[str, list] = {name: [] for name in components}
        for func in summary.functions:
            owner = owning_class(func.qualname, components)
            if owner is not None:
                by_class[owner].append(func)
        for name in sorted(components):
            decl = components[name]
            role, attrs = decl.role, decl.attrs
            if not role and name.rsplit(".", 1)[-1] in table:
                role, attrs = table[name.rsplit(".", 1)[-1]]
            funcs = by_class[name]
            addr = [site for func in funcs for site in func.addr]
            caches = [site for func in funcs for site in func.caches]
            if not role and not addr and not caches:
                continue
            method_keys = [f"{rel}::{func.qualname}" for func in funcs]
            reachable = graph.reachable_with_chains(method_keys)
            egress = False
            for key in reachable:
                node = graph.nodes[key]
                if any(site.kind in FORWARD_KINDS
                       for site in node.summary.addr):
                    egress = True
                    break
            entries.append({
                "component": name,
                "module": rel,
                "role": role or "undeclared",
                "attrs": sorted(attrs),
                "ingress": any(site.kind in ("register", "register-many")
                               for site in addr),
                "shares_ingress": any(site.kind == "register-many"
                                      for site in addr),
                "egress": egress,
                "forwards": sorted({site.kind for site in addr
                                    if site.kind in FORWARD_KINDS}),
                "logs": sorted({site.kind for site in addr
                                if site.kind.startswith("log-")}),
                "caches": sorted({site.attr for site in caches
                                  if site.kind == "own"}),
            })
    entries.sort(key=lambda e: (e["module"], e["component"]))
    return {
        "schema_version": TOPOLOGY_SCHEMA_VERSION,
        "tool": "cdetopo",
        "components": entries,
    }


def render_topology_human(doc: dict) -> str:
    """The topology document as a fixed-width table."""
    rows = [("component", "role", "ingress", "egress", "caches", "address")]
    for entry in doc["components"]:
        ingress = "shared" if entry["shares_ingress"] else (
            "yes" if entry["ingress"] else "-")
        address = ",".join(entry["forwards"] + entry["logs"]) or "-"
        rows.append((
            entry["component"],
            entry["role"] + ("(" + ",".join(entry["attrs"]) + ")"
                             if entry["attrs"] else ""),
            ingress,
            "yes" if entry["egress"] else "-",
            ",".join(entry["caches"]) or "-",
            address,
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(f"cdetopo: {len(doc['components'])} component(s)")
    return "\n".join(lines)


def collect_summaries(paths: "list[str]", config: "object",
                      cache_dir: "str | None" = None
                      ) -> "dict[str, object]":
    """Stage-1 of the engine, standalone: content-hash every file, parse
    and summarise only cache misses, and return the summary map (the
    ``--topology`` front end; warm runs replay facts without parsing)."""
    from pathlib import Path

    from .cache import AnalysisCache, content_hash
    from .engine import _parse, _relativize, iter_python_files

    cache = AnalysisCache(Path(cache_dir)) if cache_dir is not None else None
    summaries: dict[str, object] = {}
    for path in iter_python_files([Path(p) for p in paths], config):
        rel = _relativize(path)
        source = path.read_text(encoding="utf-8")
        sha = content_hash(source)
        summary = cache.lookup_summary(rel, sha) if cache else None
        if summary is None:
            from .callgraph import summarize_module
            module = _parse(path, rel, source)
            summary = summarize_module(module)
            if cache:
                cache.store_summary(rel, sha, summary)
        summaries[rel] = summary
    if cache:
        cache.save()
    return summaries
