"""Rule base class, registry and project-wide context.

Rules register themselves via the :func:`register` decorator at import
time (importing :mod:`repro.lint.rules` pulls in every rule module).  A
rule sees one module at a time through :meth:`Rule.check_module`;
whole-program rules (the shard-purity call-graph walk) additionally
implement :meth:`Rule.check_project`, which runs once after every module
has been parsed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Type

from .callgraph import CallGraph, ModuleSummary, summarize_module
from .config import LintConfig
from .effects import Effect, EffectAnalysis
from .findings import Finding
from .module import ModuleInfo


@dataclass
class ProjectContext:
    """Everything a rule may consult beyond the module it is checking.

    Per-module rules see parsed :class:`ModuleInfo` objects; project
    rules run on :class:`ModuleSummary` objects alone (via :attr:`graph`
    and :attr:`effects`), which is what makes warm cache runs possible —
    on a warm run :attr:`modules` holds only the files that were actually
    re-parsed, while :attr:`summaries` always covers the whole tree.
    """

    config: LintConfig
    modules: list[ModuleInfo] = field(default_factory=list)
    #: Whole-tree module summaries, keyed by rel path (cache-restorable).
    summaries: dict[str, ModuleSummary] = field(default_factory=dict)
    #: Simple names of project callables whose return annotation is a
    #: set type — used by CDE003 to flag iteration over their results.
    set_returning_callables: frozenset[str] = frozenset()
    #: Cached effect signatures from a previous run (same binding
    #: fingerprint), plus the rel paths re-summarised this run; when both
    #: are set, effect propagation touches only the dirty subgraph.
    cached_signatures: Optional[dict[str, frozenset[Effect]]] = None
    dirty_rels: Optional[frozenset[str]] = None
    #: CDE015 verdict replay: findings cached under the run's sync digest
    #: (set by the engine on a warm hit), and the freshly computed
    #: findings the rule hands back for storing (pre-suppression, so the
    #: CDE014 accounting is byte-identical cold vs warm).
    cached_sync: Optional[list[Finding]] = None
    computed_sync: Optional[list[Finding]] = None
    _graph: Optional[CallGraph] = field(default=None, repr=False)
    _effects: Optional[EffectAnalysis] = field(default=None, repr=False)

    def module_by_suffix(self, suffix: str) -> ModuleInfo | None:
        for module in self.modules:
            if ("/" + module.rel).endswith("/" + suffix.lstrip("/")):
                return module
        return None

    @property
    def graph(self) -> CallGraph:
        """The project call graph, built lazily from summaries."""
        if self._graph is None:
            summaries = self.summaries or {
                module.rel: summarize_module(module)
                for module in self.modules
            }
            self._graph = CallGraph(summaries.values())
        return self._graph

    @property
    def effects(self) -> EffectAnalysis:
        """Fixed-point effect signatures, built lazily over :attr:`graph`."""
        if self._effects is None:
            self._effects = EffectAnalysis.build(
                self.graph,
                cached=self.cached_signatures,
                dirty_rels=self.dirty_rels,
            )
        return self._effects


class Rule:
    """Base class for cdelint rules."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    #: Rules with ``default_enabled = False`` (audit modes like CDE014)
    #: run only when explicitly selected, never in a default run.
    default_enabled: bool = True

    def check_module(
        self, module: ModuleInfo, ctx: ProjectContext
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: ModuleInfo, node: ast.AST, message: str,
                symbol: str = "") -> Finding:
        return Finding(
            path=module.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            symbol=symbol,
        )

    def finding_at(self, rel: str, line: int, col: int, message: str,
                   symbol: str = "") -> Finding:
        """A finding at a summary-recorded location (no AST in hand)."""
        return Finding(
            path=rel, line=line, col=col, rule_id=self.rule_id,
            message=message, symbol=symbol,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, Type[Rule]]:
    """Registered rules, importing the bundled rule set on first use."""
    from . import rules as _rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


def instantiate(selected: Iterable[str] | None = None,
                disabled: Iterable[str] = ()) -> list[Rule]:
    """Rule instances for a run, honouring ``--select`` and config disables."""
    registry = all_rules()
    if selected is not None:
        wanted = [rule_id.upper() for rule_id in selected]
        unknown = [rule_id for rule_id in wanted if rule_id not in registry]
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        return [registry[rule_id]() for rule_id in wanted]
    skip = {rule_id.upper() for rule_id in disabled}
    return [cls() for rule_id, cls in registry.items()
            if rule_id not in skip and cls.default_enabled]
