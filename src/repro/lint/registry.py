"""Rule base class, registry and project-wide context.

Rules register themselves via the :func:`register` decorator at import
time (importing :mod:`repro.lint.rules` pulls in every rule module).  A
rule sees one module at a time through :meth:`Rule.check_module`;
whole-program rules (the shard-purity call-graph walk) additionally
implement :meth:`Rule.check_project`, which runs once after every module
has been parsed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Type

from .config import LintConfig
from .findings import Finding
from .module import ModuleInfo


@dataclass
class ProjectContext:
    """Everything a rule may consult beyond the module it is checking."""

    config: LintConfig
    modules: list[ModuleInfo] = field(default_factory=list)
    #: Simple names of project callables whose return annotation is a
    #: set type — used by CDE003 to flag iteration over their results.
    set_returning_callables: frozenset[str] = frozenset()

    def module_by_suffix(self, suffix: str) -> ModuleInfo | None:
        for module in self.modules:
            if ("/" + module.rel).endswith("/" + suffix.lstrip("/")):
                return module
        return None


class Rule:
    """Base class for cdelint rules."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check_module(
        self, module: ModuleInfo, ctx: ProjectContext
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: ModuleInfo, node: ast.AST, message: str,
                symbol: str = "") -> Finding:
        return Finding(
            path=module.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            symbol=symbol,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, Type[Rule]]:
    """Registered rules, importing the bundled rule set on first use."""
    from . import rules as _rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


def instantiate(selected: Iterable[str] | None = None,
                disabled: Iterable[str] = ()) -> list[Rule]:
    """Rule instances for a run, honouring ``--select`` and config disables."""
    registry = all_rules()
    if selected is not None:
        wanted = [rule_id.upper() for rule_id in selected]
        unknown = [rule_id for rule_id in wanted if rule_id not in registry]
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        return [registry[rule_id]() for rule_id in wanted]
    skip = {rule_id.upper() for rule_id in disabled}
    return [cls() for rule_id, cls in registry.items() if rule_id not in skip]
