"""Canonical effect-trace extraction for cdesync (CDE015/CDE016).

A *trace* is a loop/branch-structured tree describing every observable
effect a function body can perform, in program order: attribute and
container mutations (with their resolved receiver chains), calls (with
resolved receiver chains, so the matcher can classify them), RNG-idiom
folds, and constructed-``__dict__`` layouts.  Traces are deliberately
**config-independent** — receiver chains are resolved against local
aliases only, and classification (which chain is an RNG draw, which
attribute is observable state) happens at match time in
:mod:`repro.lint.sync` — so a trace is a pure function of the file's
bytes and can live in the content-hash-keyed summary cache.

Node encoding (JSON-ready nested lists)::

    ["seq", [node, ...]]          ordered composition
    ["alt", [node, ...]]          one of the arms (if/else, and/or, ifexp)
    ["loop", node]                zero-or-more repetitions of the body
    ["while", node, node]         test node, body node (test re-runs per lap)
    ["try", node, [node, ...]]    body, handlers
    ["ret"] / ["raise"]           jump to normal / exception exit
    ["brk"] / ["cont"]            loop control
    ["call", [chain...], line]    call through resolved receiver chain
    ["mut", [chain...], line]     attribute/container mutation
    ["rb", [chain...], line]      rejection-sampling fold (randbelow idiom)
    ["gauss", line]               inlined Box-Muller fold (one gauss draw)
    ["layout", cls, [fields...], line]   constructed ``__dict__`` literal

Two idiom folds keep fused code comparable to the structured original:
the ``getrandbits``-retry loop (``x = f(k)`` / ``while x >= n: x = f(k)``,
or the discarded-draw ``while f(k) >= n: pass``) folds to one ``rb``
node, mirroring ``Random._randbelow``; and the inlined Box-Muller block
(``z = rng.gauss_next; rng.gauss_next = None; if z is None: ...``) folds
to one ``gauss`` node, mirroring a single ``Random.gauss`` call.

The module also parses ``# cdelint: replica-of=<dotted.path>`` markers
(on the ``def`` line or the line above) and per-module dataclass field
orders, both consumed by the CDE015/CDE016 rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Any, Optional

#: JSON-shaped trace node (nested lists; see module docstring).
TraceNode = list[Any]

#: Container/object methods that mutate their receiver in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "insert", "extend", "update",
    "setdefault", "pop", "popitem", "popleft", "clear", "remove",
    "discard", "sort", "reverse",
})

#: Methods whose *result* aliases the receiver's container slot
#: (``bucket = log._by_qname.setdefault(qname, [])`` makes ``bucket`` an
#: alias of the ``_by_qname`` container for later mutation labelling).
#: ``get`` is deliberately absent: a ``.get`` result is typically a
#: *stored object* (a cache entry), and method calls on it — ``touch``,
#: ``aged_rrset`` — are observable effects in their own right, not
#: container plumbing.
_ALIASING_METHODS = frozenset({"setdefault"})

_REPLICA_RE = re.compile(
    r"#\s*cdelint:\s*replica-of\s*=\s*(?P<target>[A-Za-z0-9_.]+)"
)


def _is_empty_setdefault(method: str, node: ast.Call) -> bool:
    """``d.setdefault(key, [])`` with an empty-literal default.

    Materialising an empty slot is idempotent warming, not an observable
    mutation: the slot's contents are exactly what a later lazy
    ``setdefault`` on the real path would create, so eager index warming
    (the cold-chain capture) stays trace-equivalent to lazy recording.
    """
    if method != "setdefault" or len(node.args) != 2:
        return False
    default = node.args[1]
    if isinstance(default, (ast.List, ast.Set)) and not default.elts:
        return True
    if isinstance(default, ast.Dict) and not default.keys:
        return True
    if (isinstance(default, ast.Call) and not default.args
            and not default.keywords and isinstance(default.func, ast.Name)
            and default.func.id in ("list", "dict", "set", "deque")):
        return True
    return False


def parse_replica_markers(source: str) -> dict[int, str]:
    """``# cdelint: replica-of=<dotted.path>`` comments, by line number."""
    markers: dict[int, str] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return markers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _REPLICA_RE.search(token.string)
        if match is not None:
            markers[token.start[0]] = match.group("target")
    return markers


def replica_marker_for(markers: dict[int, str],
                       func: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    """The marker bound to ``func``: on its ``def`` line or the line above."""
    return markers.get(func.lineno) or markers.get(func.lineno - 1, "")


def module_dataclass_fields(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Ordered field names of every ``@dataclass``-decorated class."""
    out: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
            continue
        names: list[str] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                if _is_classvar(stmt.annotation):
                    continue
                names.append(stmt.target.id)
        out[node.name] = tuple(names)
    return out


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return isinstance(target, ast.Name) and target.id == "dataclass"


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return isinstance(target, ast.Name) and target.id == "ClassVar"


def module_object_aliases(tree: ast.Module) -> tuple[frozenset[str],
                                                     frozenset[str]]:
    """Module-level aliases of ``object.__new__`` / ``object.__setattr__``."""
    new_names: set[str] = set()
    setattr_names: set[str] = set()
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = stmt.value
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "object"):
            if value.attr == "__new__":
                new_names.add(target.id)
            elif value.attr == "__setattr__":
                setattr_names.add(target.id)
    return frozenset(new_names), frozenset(setattr_names)


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------

class _Extractor:
    """One function body -> trace tree, with local alias resolution."""

    def __init__(self, objnew: frozenset[str], objsetattr: frozenset[str]):
        self.objnew = objnew
        self.objsetattr = objsetattr
        #: local name -> resolved receiver chain (lists of attr names).
        self.env: dict[str, list[str]] = {}
        #: local name -> class simple name (``x = _obj_new(Cls)``).
        self.cls_env: dict[str, str] = {}

    # -- chain resolution ---------------------------------------------------

    def chain_of(self, node: ast.expr) -> Optional[list[str]]:
        """Receiver chain with local aliases expanded; ``None`` if opaque.

        Subscripts are transparent (``plan.corridor[i].x`` keeps the
        ``corridor`` element in the chain) and calls resolve through
        their function expression (``d.setdefault(k, []).append(v)``
        roots ``append`` at the ``d`` container).
        """
        if isinstance(node, ast.Name):
            alias = self.env.get(node.id)
            return list(alias) if alias is not None else [node.id]
        if isinstance(node, ast.Attribute):
            base = self.chain_of(node.value)
            if base is None:
                return None
            base.append(node.attr)
            return base
        if isinstance(node, ast.Subscript):
            return self.chain_of(node.value)
        if isinstance(node, ast.Call):
            return self.chain_of(node.func)
        return None

    # -- expressions (evaluation order) -------------------------------------

    def expr(self, node: Optional[ast.expr], out: list[TraceNode]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self.call(node, out)
            return
        if isinstance(node, ast.BoolOp):
            self.expr(node.values[0], out)
            for value in node.values[1:]:
                arm: list[TraceNode] = []
                self.expr(value, arm)
                if arm:
                    out.append(["alt", [["seq", arm], ["seq", []]]])
            return
        if isinstance(node, ast.IfExp):
            self.expr(node.test, out)
            body: list[TraceNode] = []
            orelse: list[TraceNode] = []
            self.expr(node.body, body)
            self.expr(node.orelse, orelse)
            if body or orelse:
                out.append(["alt", [["seq", body], ["seq", orelse]]])
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            self.comprehension(node, out)
            return
        if isinstance(node, ast.Lambda):
            return  # a def, not a call
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child, out)

    def comprehension(self, node: ast.expr, out: list[TraceNode]) -> None:
        generators = node.generators  # type: ignore[attr-defined]
        self.expr(generators[0].iter, out)
        body: list[TraceNode] = []
        for gen in generators:
            if gen is not generators[0]:
                self.expr(gen.iter, body)
            for cond in gen.ifs:
                self.expr(cond, body)
        if isinstance(node, ast.DictComp):
            self.expr(node.key, body)
            self.expr(node.value, body)
        else:
            self.expr(node.elt, body)  # type: ignore[attr-defined]
        if body:
            out.append(["loop", ["seq", body]])

    def call(self, node: ast.Call, out: list[TraceNode]) -> None:
        # Receiver-of-receiver calls run first (setdefault(...).append).
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Call):
            self.call(func.value, out)
        for arg in node.args:
            self.expr(arg.value if isinstance(arg, ast.Starred) else arg, out)
        for keyword in node.keywords:
            self.expr(keyword.value, out)
        # _obj_setattr(x, "__dict__", {...}) -> layout node.
        if (isinstance(func, ast.Name) and func.id in self.objsetattr
                and len(node.args) == 3):
            target, attr, value = node.args
            if (isinstance(attr, ast.Constant)
                    and attr.value == "__dict__"
                    and isinstance(value, ast.Dict)):
                self.layout(target, value, node.lineno, out)
                return
            if isinstance(attr, ast.Constant) and isinstance(attr.value, str):
                chain = self.chain_of(target)
                if chain is not None:
                    out.append(["mut", chain + [attr.value], node.lineno])
                return
        chain = self.chain_of(func)
        if chain is None:
            return
        if chain[-1] in MUTATING_METHODS and len(chain) >= 2:
            if not _is_empty_setdefault(chain[-1], node):
                out.append(["mut", chain[:-1], node.lineno])
            return
        out.append(["call", chain, node.lineno])

    def layout(self, target: ast.expr, value: ast.Dict, line: int,
               out: list[TraceNode]) -> None:
        keys = [key.value for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)]
        if len(keys) != len(value.keys):
            return
        for item in value.values:
            self.expr(item, out)
        cls = ""
        if isinstance(target, ast.Name):
            cls = self.cls_env.get(target.id, "")
        out.append(["layout", cls, keys, line])

    # -- statements ---------------------------------------------------------

    def block(self, stmts: list[ast.stmt]) -> TraceNode:
        out: list[TraceNode] = []
        index = 0
        while index < len(stmts):
            consumed = self.fold_randbelow(stmts, index, out)
            if consumed:
                index += consumed
                continue
            consumed = self.fold_gauss(stmts, index, out)
            if consumed:
                index += consumed
                continue
            self.stmt(stmts[index], out)
            index += 1
        return ["seq", out]

    def fold_randbelow(self, stmts: list[ast.stmt], index: int,
                       out: list[TraceNode]) -> int:
        """``x = f(k); while x >= n: x = f(k)`` or ``while f(k) >= n: pass``."""
        stmt = stmts[index]
        # Discarded-draw shape.
        if (isinstance(stmt, ast.While)
                and _compare_ge_call(stmt.test) is not None
                and len(stmt.body) == 1
                and isinstance(stmt.body[0], ast.Pass)):
            call = _compare_ge_call(stmt.test)
            assert call is not None
            chain = self.chain_of(call.func)
            if chain is not None:
                out.append(["rb", chain, stmt.lineno])
                return 1
        # Retained-draw shape.
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
                and index + 1 < len(stmts)):
            name = stmt.targets[0].id
            nxt = stmts[index + 1]
            if (isinstance(nxt, ast.While)
                    and _compare_ge_name(nxt.test) == name
                    and len(nxt.body) == 1
                    and isinstance(nxt.body[0], ast.Assign)
                    and len(nxt.body[0].targets) == 1
                    and isinstance(nxt.body[0].targets[0], ast.Name)
                    and nxt.body[0].targets[0].id == name
                    and isinstance(nxt.body[0].value, ast.Call)):
                chain = self.chain_of(stmt.value.func)
                if chain is not None:
                    out.append(["rb", chain, stmt.lineno])
                    self.env.pop(name, None)
                    return 2
        return 0

    def fold_gauss(self, stmts: list[ast.stmt], index: int,
                   out: list[TraceNode]) -> int:
        """Inlined Box-Muller: ``z = *.gauss_next; *.gauss_next = None;
        if z is None: <refill>`` folds to one ``gauss`` node."""
        if index + 2 >= len(stmts):
            return 0
        first, second, third = stmts[index:index + 3]
        if not (isinstance(first, ast.Assign) and len(first.targets) == 1
                and isinstance(first.targets[0], ast.Name)
                and isinstance(first.value, ast.Attribute)
                and first.value.attr == "gauss_next"):
            return 0
        name = first.targets[0].id
        if not (isinstance(second, ast.Assign) and len(second.targets) == 1
                and isinstance(second.targets[0], ast.Attribute)
                and second.targets[0].attr == "gauss_next"):
            return 0
        if not (isinstance(third, ast.If)
                and isinstance(third.test, ast.Compare)
                and isinstance(third.test.left, ast.Name)
                and third.test.left.id == name
                and len(third.test.ops) == 1
                and isinstance(third.test.ops[0], ast.Is)):
            return 0
        out.append(["gauss", first.lineno])
        self.env.pop(name, None)
        return 3

    def stmt(self, node: ast.stmt, out: list[TraceNode]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return
        if isinstance(node, ast.Expr):
            self.expr(node.value, out)
            return
        if isinstance(node, ast.Assign):
            self.assign(node, out)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.expr(node.value, out)
                self.mut_target(node.target, node.lineno, out)
                if isinstance(node.target, ast.Name):
                    self.rebind(node.target.id, node.value)
            return
        if isinstance(node, ast.AugAssign):
            self.expr(node.value, out)
            self.mut_target(node.target, node.lineno, out)
            if isinstance(node.target, ast.Name):
                self.env.pop(node.target.id, None)
            return
        if isinstance(node, ast.If):
            self.expr(node.test, out)
            out.append(["alt", [self.block(node.body),
                                self.block(node.orelse)]])
            return
        if isinstance(node, ast.While):
            test: list[TraceNode] = []
            self.expr(node.test, test)
            body = self.block(node.body)
            out.append(["while", ["seq", test], body])
            if node.orelse:
                out.append(self.block(node.orelse))
            return
        if isinstance(node, ast.For):
            self.expr(node.iter, out)
            chain = self.chain_of(node.iter)
            if isinstance(node.target, ast.Name):
                if chain is not None:
                    self.env[node.target.id] = chain
                else:
                    self.env.pop(node.target.id, None)
            out.append(["loop", self.block(node.body)])
            if node.orelse:
                out.append(self.block(node.orelse))
            return
        if isinstance(node, ast.Try):
            body = self.block(node.body + node.orelse)
            handlers = [self.block(handler.body)
                        for handler in node.handlers]
            out.append(["try", body, handlers])
            if node.finalbody:
                out.append(self.block(node.finalbody))
            return
        if isinstance(node, ast.With):
            for item in node.items:
                self.expr(item.context_expr, out)
            out.append(self.block(node.body))
            return
        if isinstance(node, ast.Return):
            self.expr(node.value, out)
            out.append(["ret"])
            return
        if isinstance(node, ast.Raise):
            self.expr(node.exc, out)
            self.expr(node.cause, out)
            out.append(["raise"])
            return
        if isinstance(node, ast.Break):
            out.append(["brk"])
            return
        if isinstance(node, ast.Continue):
            out.append(["cont"])
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self.mut_target(target, node.lineno, out)
            return
        if isinstance(node, ast.Assert):
            self.expr(node.test, out)
            return
        if isinstance(node, ast.Match):  # pragma: no cover - repo uses none
            self.expr(node.subject, out)
            out.append(["alt", [self.block(case.body)
                                for case in node.cases]])
            return
        for child in ast.iter_child_nodes(node):  # pragma: no cover
            if isinstance(child, ast.expr):
                self.expr(child, out)

    def assign(self, node: ast.Assign, out: list[TraceNode]) -> None:
        self.expr(node.value, out)
        # ``x.__dict__ = {...}`` -> layout node.
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and target.attr == "__dict__"
                    and isinstance(node.value, ast.Dict)):
                self.layout(target.value, node.value, node.lineno, out)
                return
        subscript_roots: list[list[str]] = []
        for target in node.targets:
            self.mut_target(target, node.lineno, out)
            if isinstance(target, ast.Subscript):
                root = self.chain_of(target.value)
                if root is not None:
                    subscript_roots.append(root)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if subscript_roots:
                    # ``d[k] = x = v``: x aliases the container slot.
                    self.env[target.id] = list(subscript_roots[0])
                else:
                    self.rebind(target.id, node.value)
            elif isinstance(target, (ast.Tuple, ast.List)):
                chain = (self.chain_of(node.value)
                         if isinstance(node.value, (ast.Name, ast.Attribute))
                         else None)
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        if chain is not None:
                            self.env[elt.id] = list(chain)
                        else:
                            self.env.pop(elt.id, None)

    def rebind(self, name: str, value: ast.expr) -> None:
        if isinstance(value, (ast.Name, ast.Attribute)):
            chain = self.chain_of(value)
            if chain is not None:
                self.env[name] = chain
                self.cls_env.pop(name, None)
                return
        if isinstance(value, ast.Call):
            func = value.func
            # ``x = _obj_new(Cls)`` binds x's class for layout auditing.
            if (isinstance(func, ast.Name) and func.id in self.objnew
                    and value.args):
                cls_chain = self.chain_of(value.args[0])
                if cls_chain:
                    self.env.pop(name, None)
                    self.cls_env[name] = cls_chain[-1]
                    return
            chain = self.chain_of(func)
            if (chain is not None and len(chain) >= 2
                    and chain[-1] in _ALIASING_METHODS):
                self.env[name] = chain[:-1]
                self.cls_env.pop(name, None)
                return
        self.env.pop(name, None)
        self.cls_env.pop(name, None)

    def mut_target(self, target: ast.expr, line: int,
                   out: list[TraceNode]) -> None:
        if isinstance(target, ast.Attribute):
            chain = self.chain_of(target)
            if chain is not None:
                out.append(["mut", chain, line])
        elif isinstance(target, ast.Subscript):
            self.expr(target.slice, out)
            chain = self.chain_of(target.value)
            if chain is not None:
                out.append(["mut", chain, line])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, (ast.Attribute, ast.Subscript)):
                    self.mut_target(elt, line, out)


def _compare_ge_call(test: ast.expr) -> Optional[ast.Call]:
    if (isinstance(test, ast.Compare) and isinstance(test.left, ast.Call)
            and len(test.ops) == 1 and isinstance(test.ops[0], ast.GtE)):
        return test.left
    return None


def _compare_ge_name(test: ast.expr) -> Optional[str]:
    if (isinstance(test, ast.Compare) and isinstance(test.left, ast.Name)
            and len(test.ops) == 1 and isinstance(test.ops[0], ast.GtE)):
        return test.left.id
    return None


def extract_trace(func: ast.FunctionDef | ast.AsyncFunctionDef,
                  objnew: frozenset[str] = frozenset(),
                  objsetattr: frozenset[str] = frozenset()) -> TraceNode:
    """The trace tree of ``func``'s own body (nested defs excluded)."""
    extractor = _Extractor(objnew, objsetattr)
    return extractor.block(func.body)


def has_effect_nodes(node: TraceNode) -> bool:
    """Whether a trace holds any effect leaf (pure traces are not stored)."""
    kind = node[0]
    if kind in ("call", "mut", "rb", "gauss", "layout"):
        return True
    if kind in ("seq", "alt"):
        return any(has_effect_nodes(child) for child in node[1])
    if kind == "loop":
        return has_effect_nodes(node[1])
    if kind == "while":
        return has_effect_nodes(node[1]) or has_effect_nodes(node[2])
    if kind == "try":
        return (has_effect_nodes(node[1])
                or any(has_effect_nodes(h) for h in node[2]))
    return False
