"""``--fix`` — mechanical autofixes for CDE003 / CDE005 / CDE006 / CDE018.

The fixer is driven by the *rules*: it runs the normal lint pass (so
path scoping, configuration and suppression comments are honoured
exactly), then maps each finding of a fixable rule back to its AST node
and rewrites the source with position-anchored text edits:

* CDE003 — wrap the flagged set-valued iterable in ``sorted(...)``.
* CDE005 — replace the mutable default with ``None``, widen an existing
  annotation to ``T | None``, and insert an
  ``if <param> is None: <param> = <original>`` guard after the
  docstring.
* CDE006 — annotate parameters whose literal default makes the type
  unambiguous (``bool``/``int``/``float``/``str``/``bytes``), and add
  ``-> None`` when the body provably returns no value.
* CDE018 — rewrite a placeholder-free f-string to a plain literal, and
  unroll a statement-level ``NAME.extend(<genexp>)`` into an explicit
  ``for``/``append`` loop (no generator frame per probe).  Hot-loop
  allocations that need judgement — real f-string formatting, constant
  displays worth interning on the plan — are left for the human.

Every fix is best-effort and conservative: anything the fixer cannot
rewrite safely (single-line function bodies, non-literal defaults,
non-inferable annotations) is left for the human.  Applying the fixer
twice is a no-op by construction — each rewrite removes the finding that
triggered it — and a file whose rewritten text fails to re-parse is
discarded untouched.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .config import LintConfig
from .engine import _relativize, iter_python_files, run_lint
from .findings import Finding

#: Rules the autofixer knows how to rewrite.
FIXABLE_RULES = ("CDE003", "CDE005", "CDE006", "CDE018")


@dataclass(frozen=True)
class _Edit:
    """Replace ``source[start:end]`` with ``text`` (insert when start==end)."""

    start: int
    end: int
    text: str
    #: Tiebreak for same-position inserts: lower order applied first in
    #: the final text.
    order: int = 0


@dataclass
class FileFix:
    """The planned rewrite of one file."""

    path: Path
    rel: str
    original: str
    fixed: str
    notes: tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return self.fixed != self.original

    def diff(self) -> str:
        return "".join(difflib.unified_diff(
            self.original.splitlines(keepends=True),
            self.fixed.splitlines(keepends=True),
            fromfile=self.rel, tofile=self.rel,
        ))


class _Locator:
    """Maps (line, col) findings back to AST nodes and text offsets."""

    def __init__(self, source: str, tree: ast.Module):
        self.source = source
        self.tree = tree
        self.line_starts = [0]
        for line in source.splitlines(keepends=True):
            self.line_starts.append(self.line_starts[-1] + len(line))

    def offset(self, line: int, col: int) -> int:
        return self.line_starts[line - 1] + col

    def node_span(self, node: ast.AST) -> tuple[int, int]:
        return (
            self.offset(node.lineno, node.col_offset),
            self.offset(node.end_lineno, node.end_col_offset),
        )

    def segment(self, node: ast.AST) -> str:
        start, end = self.node_span(node)
        return self.source[start:end]

    def function_defs(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [node for node in ast.walk(self.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


# ---------------------------------------------------------------------------
# CDE003: sorted() wrapping
# ---------------------------------------------------------------------------

def _iterables_at(loc: _Locator, line: int, col: int) -> Optional[ast.expr]:
    for node in ast.walk(loc.tree):
        candidates: list[ast.expr] = []
        if isinstance(node, ast.For):
            candidates.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            candidates.extend(gen.iter for gen in node.generators)
        for candidate in candidates:
            if (candidate.lineno, candidate.col_offset) == (line, col):
                return candidate
    return None


def _fix_cde003(loc: _Locator, finding: Finding,
                edits: list[_Edit], notes: list[str]) -> None:
    iterable = _iterables_at(loc, finding.line, finding.col)
    if iterable is None:
        return
    start, end = loc.node_span(iterable)
    edits.append(_Edit(start, start, "sorted("))
    edits.append(_Edit(end, end, ")"))
    notes.append(f"{finding.path}:{finding.line}: wrapped set iterable "
                 f"in sorted(...)")


# ---------------------------------------------------------------------------
# CDE005: None-and-construct defaults
# ---------------------------------------------------------------------------

def _default_owner(
    loc: _Locator, line: int, col: int,
) -> Optional[tuple[ast.FunctionDef | ast.AsyncFunctionDef,
                    ast.arg, ast.expr]]:
    """The (function, parameter, default) owning the default at a position."""
    for func in loc.function_defs():
        args = func.args
        positional = args.posonlyargs + args.args
        paired = list(zip(positional[len(positional) - len(args.defaults):],
                          args.defaults))
        paired.extend(
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        )
        for arg, default in paired:
            if (default.lineno, default.col_offset) == (line, col):
                return func, arg, default
    return None


def _body_insertion_point(
    loc: _Locator, func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Optional[tuple[int, str]]:
    """(offset, indent) before the first non-docstring body statement.

    ``None`` when the body shares a line with the signature (single-line
    defs are left for the human)."""
    body = list(func.body)
    first = body[0]
    if (isinstance(first, ast.Expr) and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str) and len(body) > 1):
        first = body[1]
    if first.lineno == func.lineno:
        return None  # def f(x=[]): return x
    line_start = loc.line_starts[first.lineno - 1]
    indent = loc.source[line_start:loc.offset(first.lineno,
                                              first.col_offset)]
    if indent.strip():
        return None  # statement does not start its own line
    return line_start, indent


def _fix_cde005(loc: _Locator, finding: Finding,
                edits: list[_Edit], notes: list[str]) -> None:
    owner = _default_owner(loc, finding.line, finding.col)
    if owner is None:
        return
    func, arg, default = owner
    insertion = _body_insertion_point(loc, func)
    if insertion is None:
        return
    guard_offset, indent = insertion
    default_src = loc.segment(default)
    if "\n" in default_src:
        return  # multi-line default: leave for the human
    start, end = loc.node_span(default)
    edits.append(_Edit(start, end, "None"))
    if arg.annotation is not None:
        ann_src = loc.segment(arg.annotation)
        if "None" not in ann_src and not ann_src.startswith("Optional"):
            a_start, a_end = loc.node_span(arg.annotation)
            edits.append(_Edit(a_start, a_end, f"{ann_src} | None"))
    guard = (f"{indent}if {arg.arg} is None:\n"
             f"{indent}    {arg.arg} = {default_src}\n")
    # Same-position guards stack in parameter order via the order key.
    edits.append(_Edit(guard_offset, guard_offset, guard,
                       order=arg.col_offset + 1000 * arg.lineno))
    notes.append(f"{finding.path}:{finding.line}: default {default_src!r} of "
                 f"{func.name}({arg.arg}) rewritten to None-and-construct")


# ---------------------------------------------------------------------------
# CDE006: inferable annotations
# ---------------------------------------------------------------------------

def _literal_type(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    if not isinstance(node, ast.Constant):
        return None
    value = node.value
    if isinstance(value, bool):  # bool before int: True is an int
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, bytes):
        return "bytes"
    return None


def _returns_no_value(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    from .effects import _walk_own

    for node in _walk_own(func):
        if isinstance(node, ast.Return) and node.value is not None:
            return False
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return False
    return True


def _signature_colon(loc: _Locator,
                     func: ast.FunctionDef | ast.AsyncFunctionDef,
                     ) -> Optional[int]:
    """Offset of the ``:`` ending the signature (no return annotation)."""
    start = loc.offset(func.lineno, func.col_offset)
    source = loc.source
    index = source.index("(", start)
    depth = 0
    while index < len(source):
        char = source[index]
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth == 0:
                break
        elif char in "\"'":
            quote = char
            index += 1
            while index < len(source) and source[index] != quote:
                index += 2 if source[index] == "\\" else 1
        index += 1
    else:
        return None
    index += 1
    while index < len(source) and source[index] in " \t\r\n\\":
        index += 1
    if index < len(source) and source[index] == ":":
        return index
    return None


def _fix_cde006(loc: _Locator, finding: Finding,
                edits: list[_Edit], notes: list[str]) -> None:
    func = next(
        (f for f in loc.function_defs()
         if (f.lineno, f.col_offset) == (finding.line, finding.col)),
        None,
    )
    if func is None:
        return
    args = func.args
    positional = args.posonlyargs + args.args
    paired = list(zip(positional[len(positional) - len(args.defaults):],
                      args.defaults))
    paired.extend(
        (arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is not None
    )
    annotated: list[str] = []
    for arg, default in paired:
        if arg.annotation is not None:
            continue
        inferred = _literal_type(default)
        if inferred is None:
            continue
        arg_end = loc.offset(arg.end_lineno, arg.end_col_offset)
        default_start, _ = loc.node_span(default)
        edits.append(_Edit(arg_end, default_start, f": {inferred} = "))
        annotated.append(f"{arg.arg}: {inferred}")
    if func.returns is None and _returns_no_value(func):
        colon = _signature_colon(loc, func)
        if colon is not None:
            edits.append(_Edit(colon, colon, " -> None"))
            annotated.append("-> None")
    if annotated:
        notes.append(f"{finding.path}:{finding.line}: annotated {func.name}"
                     f"({', '.join(annotated)})")


# ---------------------------------------------------------------------------
# CDE018: hoistable hot-loop allocations
# ---------------------------------------------------------------------------

def _constant_fstring_at(loc: _Locator, line: int,
                         col: int) -> Optional[ast.JoinedStr]:
    """The placeholder-free JoinedStr at a position, if any."""
    for node in ast.walk(loc.tree):
        if (isinstance(node, ast.JoinedStr)
                and (node.lineno, node.col_offset) == (line, col)
                and all(isinstance(value, ast.Constant)
                        for value in node.values)):
            return node
    return None


def _extend_stmt_at(
    loc: _Locator, line: int, col: int,
) -> Optional[tuple[ast.Expr, ast.Call, ast.GeneratorExp]]:
    """The ``<recv>.extend(<genexp>)`` statement whose genexp sits at a
    position — the shape CDE018's unroll fix handles."""
    for node in ast.walk(loc.tree):
        if not (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr == "extend"
                and len(call.args) == 1 and not call.keywords):
            continue
        genexp = call.args[0]
        if (isinstance(genexp, ast.GeneratorExp)
                and (genexp.lineno, genexp.col_offset) == (line, col)):
            return node, call, genexp
    return None


def _fix_cde018(loc: _Locator, finding: Finding,
                edits: list[_Edit], notes: list[str]) -> None:
    fstring = _constant_fstring_at(loc, finding.line, finding.col)
    if fstring is not None:
        text = "".join(
            value.value for value in fstring.values
            if isinstance(value, ast.Constant)
            and isinstance(value.value, str))
        start, end = loc.node_span(fstring)
        edits.append(_Edit(start, end, repr(text)))
        notes.append(f"{finding.path}:{finding.line}: placeholder-free "
                     f"f-string rewritten as a plain literal")
        return
    owner = _extend_stmt_at(loc, finding.line, finding.col)
    if owner is None:
        return
    stmt, call, genexp = owner
    if len(genexp.generators) != 1:
        return  # nested generators: leave for the human
    gen = genexp.generators[0]
    if gen.is_async:
        return
    line_start = loc.line_starts[stmt.lineno - 1]
    indent = loc.source[line_start:loc.offset(stmt.lineno, stmt.col_offset)]
    if indent.strip():
        return  # statement does not start its own line
    receiver = loc.segment(call.func.value)  # type: ignore[attr-defined]
    if "\n" in receiver:
        return
    lines = [f"{indent}for {loc.segment(gen.target)} "
             f"in {loc.segment(gen.iter)}:"]
    inner = indent + "    "
    for test in gen.ifs:
        lines.append(f"{inner}if {loc.segment(test)}:")
        inner += "    "
    lines.append(f"{inner}{receiver}.append({loc.segment(genexp.elt)})")
    start, end = loc.node_span(stmt)
    edits.append(_Edit(start, end, "\n".join(lines).lstrip()))
    notes.append(f"{finding.path}:{finding.line}: {receiver}.extend(genexp) "
                 f"unrolled into an explicit append loop")


_FIXERS = {
    "CDE003": _fix_cde003,
    "CDE005": _fix_cde005,
    "CDE006": _fix_cde006,
    "CDE018": _fix_cde018,
}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def _apply_edits(source: str, edits: list[_Edit]) -> Optional[str]:
    """Apply non-overlapping edits; ``None`` when any pair overlaps."""
    spans = sorted(edits, key=lambda e: (e.start, e.end, e.order))
    for before, after in zip(spans, spans[1:]):
        if before.end > after.start:
            return None
    out: list[str] = []
    cursor = 0
    for edit in spans:
        out.append(source[cursor:edit.start])
        out.append(edit.text)
        cursor = edit.end
    out.append(source[cursor:])
    return "".join(out)


def plan_fixes(paths: Sequence[Path | str],
               config: LintConfig | None = None,
               select: Iterable[str] | None = None) -> list[FileFix]:
    """Plan (but do not write) autofixes for every fixable finding.

    ``select`` narrows which fixable rules run (non-fixable selections
    are ignored); suppression comments and config scoping apply exactly
    as in a normal lint run.
    """
    config = config or LintConfig()
    wanted = set(FIXABLE_RULES)
    if select is not None:
        wanted &= {rule_id.upper() for rule_id in select}
    if not wanted:
        return []
    report = run_lint(paths, config=config, select=sorted(wanted))

    by_rel: dict[str, list[Finding]] = {}
    for finding in report.findings:
        by_rel.setdefault(finding.path, []).append(finding)

    fixes: list[FileFix] = []
    for path in iter_python_files([Path(p) for p in paths], config):
        rel = _relativize(path)
        findings = by_rel.get(rel)
        if not findings:
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        loc = _Locator(source, tree)
        edits: list[_Edit] = []
        notes: list[str] = []
        for finding in sorted(findings):
            _FIXERS[finding.rule_id](loc, finding, edits, notes)
        if not edits:
            continue
        fixed = _apply_edits(source, edits)
        if fixed is None or fixed == source:
            continue
        try:
            ast.parse(fixed)
        except SyntaxError:
            continue  # never write a file we broke
        fixes.append(FileFix(path=path, rel=rel, original=source,
                             fixed=fixed, notes=tuple(notes)))
    return fixes


def apply_fixes(fixes: Iterable[FileFix]) -> int:
    """Write every changed file; returns the number written."""
    written = 0
    for fix in fixes:
        if fix.changed:
            fix.path.write_text(fix.fixed, encoding="utf-8")
            written += 1
    return written


def render_diff(fixes: Iterable[FileFix]) -> str:
    """Unified diff of every planned fix (the ``--fix --diff`` output)."""
    return "".join(fix.diff() for fix in fixes if fix.changed)
