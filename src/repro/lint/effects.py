"""Whole-program effect inference (the cdelint effect engine).

Every function in the linted tree gets an *effect signature*: the subset
of the effect lattice

    {CLOCK, RNG, IO, ENV, MUTATES_GLOBAL, UNORDERED}

it may exercise, directly or through anything it calls.  Direct (leaf)
effects are recognised syntactically — ``time.time()`` is CLOCK,
``random.random()`` is RNG, ``open()`` is IO, ``os.environ`` is ENV, a
``global`` statement is MUTATES_GLOBAL, iterating a set is UNORDERED —
and then propagated over the project call graph
(:mod:`repro.lint.callgraph`) to a fixed point, so an effect introduced
three calls deep is attributed to every caller that can reach it.

The propagation is conservative in the same direction as CDE004 always
was: a call to a simple name binds to *every* project function of that
name, so a false edge can only widen an audited surface, never hide an
effect.  Rules built on top (CDE007 effect contracts, the rewritten
CDE004 shard purity) consume the signatures plus one shortest witness
chain per reachable function for their reports.

Sanctioned carve-outs mirror the per-file rules: ``time.perf_counter``
is *not* CLOCK (it is the documented way to sample real elapsed time for
performance counters, which never feed measured rows), and effect sites
inside the configured ``wallclock-allow`` / ``rng-allow`` files are
skipped by the contract rules exactly as CDE001/CDE002 skip them.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from .astutil import dotted_name, is_set_expression, local_set_names

if TYPE_CHECKING:  # pragma: no cover - type-only import, no runtime cycle
    from .callgraph import CallGraph


class Effect(enum.Enum):
    """One axis of the effect lattice (ordered; see EFFECT_ORDER)."""

    CLOCK = "CLOCK"                  # reads host wall-clock time
    RNG = "RNG"                      # draws randomness outside seeded streams
    IO = "IO"                        # file / socket / process / console I/O
    ENV = "ENV"                      # reads per-process or per-host state
    MUTATES_GLOBAL = "MUTATES_GLOBAL"  # rebinds module-level state
    UNORDERED = "UNORDERED"          # iterates a set (hash-order dependent)


#: Canonical rendering order for signatures (reports and JSON output).
EFFECT_ORDER: tuple[Effect, ...] = (
    Effect.CLOCK, Effect.RNG, Effect.IO, Effect.ENV,
    Effect.MUTATES_GLOBAL, Effect.UNORDERED,
)


def render_effects(effects: frozenset[Effect]) -> str:
    """``{CLOCK, IO}`` — deterministic human rendering of a signature."""
    names = [e.value for e in EFFECT_ORDER if e in effects]
    return "{" + ", ".join(names) + "}"


@dataclass(frozen=True, order=True)
class EffectSite:
    """One direct (leaf) effect at one source location."""

    line: int
    col: int
    effect: str          # Effect value name (kept as str: JSON-stable)
    label: str           # e.g. "time.time", "os.environ.get", "import socket"

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.effect, self.label]

    @classmethod
    def from_json(cls, raw: list[object]) -> "EffectSite":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   effect=str(raw[2]), label=str(raw[3]))


# ---------------------------------------------------------------------------
# leaf tables
# ---------------------------------------------------------------------------

#: Wall-clock reads (the CDE001 set).  ``time.perf_counter`` is sanctioned.
WALLCLOCK_READS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: The effect engine additionally treats real sleeping as CLOCK — it does
#: not read the clock but couples behaviour to host scheduling.
CLOCK_CALLS = WALLCLOCK_READS | frozenset({"time.sleep"})

#: Draw/state functions of the *global* ``random`` module (the CDE002 set).
GLOBAL_RANDOM_DRAWS = frozenset({
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.sample", "random.shuffle", "random.uniform",
    "random.gauss", "random.normalvariate", "random.expovariate",
    "random.betavariate", "random.triangular", "random.getrandbits",
    "random.randbytes", "random.seed", "random.setstate", "random.getstate",
})

#: Other entropy sources that bypass the seed-derivation scheme entirely.
ENTROPY_CALLS = frozenset({
    "random.SystemRandom", "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.randbits", "secrets.choice",
})

#: Per-process / per-host state reads (the CDE004 impurity set, widened).
ENV_NAMES = frozenset({
    "os.environ", "os.getenv", "os.putenv", "os.getpid", "os.getppid",
    "os.uname", "os.getcwd", "os.cpu_count", "socket.gethostname",
    "platform.node", "platform.platform", "sys.argv",
})
ENV_PREFIXES = ("os.environ.",)

#: File / console / process / network I/O, by exact callable name ...
IO_CALLS = frozenset({
    "open", "input", "print", "breakpoint",
    "os.open", "os.read", "os.write", "os.remove", "os.unlink",
    "os.mkdir", "os.makedirs", "os.rmdir", "os.rename", "os.replace",
    "os.listdir", "os.scandir", "os.stat", "os.system", "os.popen",
})
#: ... and by dotted prefix (referencing the module at all is flagged,
#: matching CDE004's historical treatment of ``socket``).
IO_REF_PREFIXES = (
    "socket.", "subprocess.", "shutil.", "urllib.", "http.client.",
    "requests.", "sys.stdout.", "sys.stderr.", "sys.stdin.",
)
IO_REF_NAMES = frozenset({"socket", "subprocess"})


def _walk_own(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function bodies.

    Nested defs are separate call-graph nodes reached via the call edge
    their name creates; scanning them here would double-report.  Lambdas
    stay inline.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _resolve(node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head, head)
    return f"{origin}.{rest}" if rest else origin


def _fixed_seed_rng(node: ast.Call) -> Optional[str]:
    """Label when ``node`` constructs ``random.Random`` unseeded or with a
    literal constant seed — either way the stream is not derived from the
    experiment seed via ``derive_seed``."""
    if not node.args and not node.keywords:
        return "random.Random()"
    if len(node.args) == 1 and not node.keywords:
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and not isinstance(arg.value, str):
            return f"random.Random({arg.value!r})"
    return None


def extract_effect_sites(func: ast.AST,
                         aliases: dict[str, str]) -> tuple[EffectSite, ...]:
    """Direct (leaf) effect sites of one function body.

    Purely syntactic and configuration-independent — allow-lists are
    applied later by the rules, which keeps these summaries cacheable by
    file content alone.
    """
    found: list[EffectSite] = []

    def add(node: ast.AST, effect: Effect, label: str) -> None:
        if hasattr(node, "lineno"):
            found.append(EffectSite(
                line=node.lineno,                       # type: ignore[attr-defined]
                col=getattr(node, "col_offset", 0),
                effect=effect.value, label=label,
            ))

    for node in _walk_own(func):
        if isinstance(node, ast.Global):
            add(node, Effect.MUTATES_GLOBAL,
                "global " + ", ".join(node.names))
        elif isinstance(node, ast.Call):
            target = _resolve(node.func, aliases)
            if target is None:
                continue
            if target in CLOCK_CALLS:
                add(node, Effect.CLOCK, target)
            elif target in GLOBAL_RANDOM_DRAWS or target in ENTROPY_CALLS:
                add(node, Effect.RNG, target)
            elif target == "random.Random":
                label = _fixed_seed_rng(node)
                if label is not None:
                    add(node, Effect.RNG, label)
            elif target in IO_CALLS:
                add(node, Effect.IO, target)
        elif isinstance(node, (ast.Attribute, ast.Name)):
            target = _resolve(node, aliases)
            if target is None:
                continue
            if target in ENV_NAMES or target.startswith(ENV_PREFIXES):
                add(node, Effect.ENV, target)
            elif (target in IO_REF_NAMES
                  or target.startswith(IO_REF_PREFIXES)):
                add(node, Effect.IO, target)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            modname = (node.names[0].name if isinstance(node, ast.Import)
                       else (node.module or ""))
            if modname == "socket" or modname.startswith("socket."):
                add(node, Effect.IO, "import socket")

    # Set iteration (UNORDERED) reuses the CDE003 machinery on this scope.
    set_names = local_set_names(func)
    for node in _walk_own(func):
        iterables: list[ast.expr] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if is_set_expression(iterable, set_names):
                add(iterable, Effect.UNORDERED, "set iteration")

    # Deterministic, deduped by location + effect.
    unique = {(s.line, s.col, s.effect, s.label): s for s in found}
    return tuple(unique[key] for key in sorted(unique))


# ---------------------------------------------------------------------------
# propagation
# ---------------------------------------------------------------------------

@dataclass
class EffectAnalysis:
    """Fixed-point effect signatures over a :class:`CallGraph`.

    ``signatures[key]`` is the full inferred effect set of the function
    ``key`` (its direct effects plus everything reachable through its
    calls).  ``recomputed`` lists the function keys whose signatures were
    actually re-propagated this run — the whole graph on a cold start,
    only the dirty subgraph when warm cached signatures were supplied.
    """

    signatures: dict[str, frozenset[Effect]]
    recomputed: tuple[str, ...] = ()

    def signature_of(self, key: str) -> frozenset[Effect]:
        return self.signatures.get(key, frozenset())

    def to_json(self) -> dict[str, list[str]]:
        return {
            key: [e.value for e in EFFECT_ORDER if e in effects]
            for key, effects in sorted(self.signatures.items())
        }

    @staticmethod
    def signatures_from_json(
        raw: dict[str, list[str]],
    ) -> dict[str, frozenset[Effect]]:
        return {
            key: frozenset(Effect(name) for name in names)
            for key, names in raw.items()
        }

    @classmethod
    def build(cls, graph: "CallGraph",
              cached: Optional[dict[str, frozenset[Effect]]] = None,
              dirty_rels: Optional[frozenset[str]] = None) -> "EffectAnalysis":
        """Propagate direct effects to a fixed point.

        With ``cached`` signatures and the set of ``dirty_rels`` (files
        whose summaries changed since the cache was written), only the
        *affected subgraph* — functions in dirty files plus every
        transitive caller that can reach one — is re-propagated; clean
        functions keep their cached signatures.  A cached signature is
        trusted only if the binding environment is unchanged, which the
        caller guarantees by comparing the defined-name index (see
        :meth:`CallGraph.binding_fingerprint`) before passing ``cached``.
        """
        direct: dict[str, frozenset[Effect]] = {
            key: frozenset(Effect(site.effect) for site in node.effects)
            for key, node in graph.nodes.items()
        }

        if cached is None or dirty_rels is None:
            affected = set(graph.nodes)
        else:
            seeds = [key for key, node in graph.nodes.items()
                     if node.rel in dirty_rels or key not in cached]
            affected = graph.reverse_reachable(seeds)

        signatures: dict[str, frozenset[Effect]] = {}
        for key in graph.nodes:
            if key in affected or cached is None:
                signatures[key] = direct[key]
            else:
                signatures[key] = cached.get(key, direct[key])

        # Worklist fixed point over the affected subgraph only.  Callees
        # outside the subgraph contribute their (trusted) signatures but
        # are never themselves revisited.
        worklist = sorted(affected)
        pending = set(worklist)
        while worklist:
            key = worklist.pop()
            pending.discard(key)
            node = graph.nodes[key]
            merged = set(signatures[key])
            for callee in graph.callees(key):
                merged |= signatures.get(callee, frozenset())
            merged_frozen = frozenset(merged)
            if merged_frozen != signatures[key]:
                signatures[key] = merged_frozen
                for caller in graph.callers(key):
                    if caller in affected and caller not in pending:
                        worklist.append(caller)
                        pending.add(caller)
        return cls(signatures=signatures, recomputed=tuple(sorted(affected)))
