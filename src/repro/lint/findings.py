"""Finding model and report serialisation for cdelint.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects with a total order so reports are deterministic: the
same tree always produces byte-identical human and JSON output, which is
what lets ``LINT_baseline.json`` be committed and diffed across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Version of the JSON report layout.  Bump on breaking changes so that
#: baseline diffs across PRs stay interpretable.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str           # posix path as given on the command line
    line: int           # 1-based
    col: int            # 0-based (ast convention)
    rule_id: str        # e.g. "CDE001"
    message: str
    symbol: str = ""    # enclosing function/class qualname, when known

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        suffix = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.rule_id} {self.message}{suffix}"

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class LintReport:
    """The outcome of one linter run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()
    #: Rel paths actually parsed this run (everything on a cold run; only
    #: changed files and their findings-invalidated peers on a warm run).
    #: Cache-state-dependent, so deliberately NOT part of to_json() — the
    #: committed baseline must not depend on cache temperature.
    reanalyzed_files: tuple[str, ...] = ()
    #: Call-graph node keys whose effect signatures were re-propagated.
    effects_recomputed: tuple[str, ...] = ()
    #: Seconds spent inside each rule's checkers this run (plus the
    #: engine-implemented CDE014 audit when it ran).  Wall-time and
    #: cache-temperature dependent, so — like reanalyzed_files — it is
    #: deliberately NOT part of to_json(); ``--stats`` prints it.
    rule_timings: dict[str, float] = field(default_factory=dict)
    #: When --changed mode filtered the report: the rel paths kept (the
    #: dirty files plus their dirty-subgraph dependents).  Diagnostic,
    #: not part of to_json() for the same reason as reanalyzed_files.
    changed_scope: tuple[str, ...] | None = None

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {rule_id: 0 for rule_id in self.rules_run}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return {rule_id: out[rule_id] for rule_id in sorted(out)}

    def to_json(self) -> dict[str, Any]:
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "cdelint",
            "files_checked": self.files_checked,
            "rules_run": sorted(self.rules_run),
            "counts": self.counts(),
            "findings": [f.to_json() for f in sorted(self.findings)],
            "parse_errors": list(self.parse_errors),
        }

    def render_human(self) -> str:
        lines = [finding.render() for finding in sorted(self.findings)]
        lines.extend(f"error: {message}" for message in self.parse_errors)
        noun = "file" if self.files_checked == 1 else "files"
        if self.ok:
            lines.append(f"cdelint: {self.files_checked} {noun} checked, clean")
        else:
            lines.append(
                f"cdelint: {self.files_checked} {noun} checked, "
                f"{len(self.findings)} finding(s)"
            )
        return "\n".join(lines)
