"""SARIF 2.1.0 serialisation of a lint report.

Minimal, deterministic SARIF so CI can upload the report and surface
findings as pull-request annotations.  Only stable report content goes
in — no timestamps, hostnames or absolute paths — so the output is
byte-identical for identical trees and can be snapshot-tested.
"""

from __future__ import annotations

from typing import Any

from .findings import LintReport
from .registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "cdelint"
TOOL_URI = "docs/STATIC_ANALYSIS.md"


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    registry = all_rules()
    cls = registry.get(rule_id)
    descriptor: dict[str, Any] = {"id": rule_id}
    if cls is not None:
        descriptor["name"] = cls.name
        descriptor["shortDescription"] = {"text": cls.summary}
    return descriptor


def to_sarif(report: LintReport) -> dict[str, Any]:
    """The report as a SARIF 2.1.0 log (one run)."""
    results: list[dict[str, Any]] = []
    for finding in sorted(report.findings):
        results.append({
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; ast columns 0-based.
                        "startColumn": finding.col + 1,
                    },
                },
                **({"logicalLocations": [{
                    "fullyQualifiedName": finding.symbol}]}
                   if finding.symbol else {}),
            }],
        })
    for message in report.parse_errors:
        results.append({
            "ruleId": "parse-error",
            "level": "error",
            "message": {"text": message},
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": [
                        _rule_descriptor(rule_id)
                        for rule_id in sorted(report.rules_run)
                    ],
                },
            },
            "results": results,
        }],
    }
