"""Project-wide call graph over per-file summaries.

A :class:`ModuleSummary` is everything the whole-program rules need to
know about one file — its functions (with called names, direct effect
sites, RNG stream labels), its imports, its suppression comments — in a
JSON-serialisable form.  Summaries are derived from a parsed
:class:`~repro.lint.module.ModuleInfo` once and then cached by content
hash (:mod:`repro.lint.cache`), so a warm run never re-parses unchanged
files: the call graph, the effect propagation (CDE004/CDE007), the
layering check (CDE008) and the stream-hygiene check (CDE009) all run on
summaries alone.

The graph uses the same conservative name-based binding CDE004
established: a call to a simple name binds to every project function of
that name, and a call to a class name binds to that class's
``__init__``.  Over-approximation is the right direction for invariant
checking — a false edge widens the audited surface, never hides an
effect.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .astutil import (dotted_name, import_aliases, iter_function_defs,
                      resolve_call_target)
from .bounded import AllocSite, GrowthSite, OpenSite, extract_bounded_facts
from .dataflow import (FlowEdge, HandlerSummary, TaintSite, analyze_function)
from .effects import EffectSite, extract_effect_sites
from .module import ModuleInfo
from .taint import MUTABLE_CONSTRUCTORS, matches_any
from .topo import AddrSite, CacheSite, ComponentDecl, TtlSite, \
    extract_topo_facts

#: Bump when the summary layout changes (invalidates cached summaries).
#: Version 2 added the dataflow layer: per-function flow edges, taint
#: sites, handler shapes, global read/mutation sets and parameter lists,
#: plus per-module mutable-global indexes.
#: Version 3 added the cdesync layer: per-function effect traces and
#: replica-of bindings, plus per-module dataclass field orders.
#: Version 4 added the cdebound layer: container-growth sites, hot-loop
#: allocation sites, write-open sites, and the generator/rename flags.
#: Version 5 added the cdetopo layer: address-provenance sites, cache
#: ownership/passing sites, TTL-arithmetic sites, and per-module
#: component declarations.
SUMMARY_VERSION = 5

#: Pseudo-function key for statements at module / class-body level.
MODULE_SCOPE = "<module>"


@dataclass(frozen=True, order=True)
class StreamCall:
    """One ``*.stream("label")`` / ``make_rng(_, "label")`` call site."""

    label: str           # normalised: f-string fields become "{}"
    line: int
    col: int

    def to_json(self) -> list[object]:
        return [self.label, self.line, self.col]

    @classmethod
    def from_json(cls, raw: list[object]) -> "StreamCall":
        return cls(label=str(raw[0]), line=int(raw[1]),  # type: ignore[arg-type]
                   col=int(raw[2]))


@dataclass(frozen=True, order=True)
class ImportRecord:
    """One import statement, as the layering rule needs it."""

    line: int
    col: int
    level: int           # 0 = absolute, N = number of leading dots
    module: str          # "repro.study.internet", "dns.name", "" (bare from)
    type_checking: bool  # inside an ``if TYPE_CHECKING:`` block

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.level, self.module,
                self.type_checking]

    @classmethod
    def from_json(cls, raw: list[object]) -> "ImportRecord":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   level=int(raw[2]), module=str(raw[3]),
                   type_checking=bool(raw[4]))


@dataclass(frozen=True)
class FunctionSummary:
    """One function/method as a call-graph node."""

    qualname: str
    name: str
    line: int
    col: int
    calls: tuple[str, ...]             # binding keys (simple callee names)
    effects: tuple[EffectSite, ...]    # direct effect sites
    streams: tuple[StreamCall, ...]    # RNG stream labels requested here
    returns_set: bool                  # return annotation is a set type
    # -- dataflow layer (summary version 2) ---------------------------------
    flows: tuple[FlowEdge, ...] = ()           # intraprocedural def-use edges
    sites: tuple[TaintSite, ...] = ()          # candidate taint-source sites
    handlers: tuple[HandlerSummary, ...] = ()  # except-handler shapes
    global_reads: tuple[str, ...] = ()         # module mutable globals read
    global_mutations: tuple[str, ...] = ()     # ... and mutated
    params: tuple[str, ...] = ()               # parameter names ("*" marker)
    # -- cdesync layer (summary version 3) ----------------------------------
    trace_json: str = ""               # effect trace (repro.lint.trace), or ""
    replica_of: str = ""               # ``# cdelint: replica-of=`` target
    # -- cdebound layer (summary version 4) ---------------------------------
    growth: tuple[GrowthSite, ...] = ()   # container-growth sites (CDE017)
    allocs: tuple[AllocSite, ...] = ()    # hot-loop allocation sites (CDE018)
    opens: tuple[OpenSite, ...] = ()      # write-mode open() sites (CDE019)
    is_generator: bool = False            # frame suspends across the stream
    renames: bool = False                 # calls os.replace/os.rename
    # -- cdetopo layer (summary version 5) ----------------------------------
    addr: tuple[AddrSite, ...] = ()       # address-provenance sites (CDE020)
    caches: tuple[CacheSite, ...] = ()    # cache own/pass sites (CDE021)
    ttls: tuple[TtlSite, ...] = ()        # TTL-arithmetic sites (CDE022)

    def to_json(self) -> dict[str, object]:
        return {
            "qualname": self.qualname, "name": self.name,
            "line": self.line, "col": self.col,
            "calls": list(self.calls),
            "effects": [site.to_json() for site in self.effects],
            "streams": [call.to_json() for call in self.streams],
            "returns_set": self.returns_set,
            "flows": [edge.to_json() for edge in self.flows],
            "sites": [site.to_json() for site in self.sites],
            "handlers": [handler.to_json() for handler in self.handlers],
            "global_reads": list(self.global_reads),
            "global_mutations": list(self.global_mutations),
            "params": list(self.params),
            "trace": self.trace_json,
            "replica_of": self.replica_of,
            "growth": [site.to_json() for site in self.growth],
            "allocs": [site.to_json() for site in self.allocs],
            "opens": [site.to_json() for site in self.opens],
            "gen": self.is_generator,
            "renames": self.renames,
            "addr": [site.to_json() for site in self.addr],
            "caches": [site.to_json() for site in self.caches],
            "ttls": [site.to_json() for site in self.ttls],
        }

    @classmethod
    def from_json(cls, raw: dict[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(raw["qualname"]), name=str(raw["name"]),
            line=int(raw["line"]),  # type: ignore[arg-type]
            col=int(raw["col"]),  # type: ignore[arg-type]
            calls=tuple(str(c) for c in raw["calls"]),  # type: ignore[union-attr]
            effects=tuple(EffectSite.from_json(s)
                          for s in raw["effects"]),  # type: ignore[union-attr]
            streams=tuple(StreamCall.from_json(s)
                          for s in raw["streams"]),  # type: ignore[union-attr]
            returns_set=bool(raw["returns_set"]),
            flows=tuple(FlowEdge.from_json(e)
                        for e in raw["flows"]),  # type: ignore[union-attr]
            sites=tuple(TaintSite.from_json(s)
                        for s in raw["sites"]),  # type: ignore[union-attr]
            handlers=tuple(HandlerSummary.from_json(h)
                           for h in raw["handlers"]),  # type: ignore[union-attr]
            global_reads=tuple(
                str(n) for n in raw["global_reads"]),  # type: ignore[union-attr]
            global_mutations=tuple(
                str(n) for n in raw["global_mutations"]),  # type: ignore[union-attr]
            params=tuple(str(p) for p in raw["params"]),  # type: ignore[union-attr]
            trace_json=str(raw.get("trace", "")),
            replica_of=str(raw.get("replica_of", "")),
            growth=tuple(GrowthSite.from_json(s)
                         for s in raw.get("growth", ())),  # type: ignore[union-attr]
            allocs=tuple(AllocSite.from_json(s)
                         for s in raw.get("allocs", ())),  # type: ignore[union-attr]
            opens=tuple(OpenSite.from_json(s)
                        for s in raw.get("opens", ())),  # type: ignore[union-attr]
            is_generator=bool(raw.get("gen", False)),
            renames=bool(raw.get("renames", False)),
            addr=tuple(AddrSite.from_json(s)
                       for s in raw.get("addr", ())),  # type: ignore[union-attr]
            caches=tuple(CacheSite.from_json(s)
                         for s in raw.get("caches", ())),  # type: ignore[union-attr]
            ttls=tuple(TtlSite.from_json(s)
                       for s in raw.get("ttls", ())),  # type: ignore[union-attr]
        )


@dataclass
class ModuleSummary:
    """Everything project rules need from one file, sans AST."""

    rel: str
    functions: tuple[FunctionSummary, ...] = ()
    imports: tuple[ImportRecord, ...] = ()
    module_streams: tuple[StreamCall, ...] = ()
    line_suppressions: dict[int, tuple[str, ...]] = field(default_factory=dict)
    file_suppressions: tuple[str, ...] = ()
    #: module-level names bound to mutable containers (name -> def line)
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: ordered field names of @dataclass classes (cdesync / CDE016)
    dataclass_fields: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: every class with its component declaration (cdetopo / CDE020-022);
    #: unmarked classes appear with an empty role
    components: dict[str, ComponentDecl] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        from .module import SUPPRESS_ALL

        for scope in (self.file_suppressions,
                      self.line_suppressions.get(line, ())):
            if rule_id in scope or SUPPRESS_ALL in scope:
                return True
        return False

    def to_json(self) -> dict[str, object]:
        return {
            "rel": self.rel,
            "functions": [f.to_json() for f in self.functions],
            "imports": [i.to_json() for i in self.imports],
            "module_streams": [s.to_json() for s in self.module_streams],
            "line_suppressions": {
                str(line): list(rules)
                for line, rules in sorted(self.line_suppressions.items())
            },
            "file_suppressions": list(self.file_suppressions),
            "mutable_globals": {
                name: line
                for name, line in sorted(self.mutable_globals.items())
            },
            "dataclass_fields": {
                name: list(fields)
                for name, fields in sorted(self.dataclass_fields.items())
            },
            "components": {
                name: decl.to_json()
                for name, decl in sorted(self.components.items())
            },
        }

    @classmethod
    def from_json(cls, raw: dict[str, object]) -> "ModuleSummary":
        return cls(
            rel=str(raw["rel"]),
            functions=tuple(FunctionSummary.from_json(f)
                            for f in raw["functions"]),  # type: ignore[union-attr]
            imports=tuple(ImportRecord.from_json(i)
                          for i in raw["imports"]),  # type: ignore[union-attr]
            module_streams=tuple(StreamCall.from_json(s)
                                 for s in raw["module_streams"]),  # type: ignore[union-attr]
            line_suppressions={
                int(line): tuple(str(r) for r in rules)
                for line, rules in raw["line_suppressions"].items()  # type: ignore[union-attr]
            },
            file_suppressions=tuple(
                str(r) for r in raw["file_suppressions"]),  # type: ignore[union-attr]
            mutable_globals={
                str(name): int(line)  # type: ignore[call-overload]
                for name, line in raw["mutable_globals"].items()  # type: ignore[union-attr]
            },
            dataclass_fields={
                str(name): tuple(str(f) for f in fields)
                for name, fields in raw.get(  # type: ignore[union-attr]
                    "dataclass_fields", {}).items()
            },
            components={
                str(name): ComponentDecl.from_json(decl)
                for name, decl in raw.get(  # type: ignore[union-attr]
                    "components", {}).items()
            },
        )


# ---------------------------------------------------------------------------
# summarisation
# ---------------------------------------------------------------------------

def _called_names(func: ast.AST) -> tuple[str, ...]:
    """Simple binding keys of every call site in ``func``'s own body."""
    from .effects import _walk_own

    names: set[str] = set()
    for node in _walk_own(func):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                names.add(node.func.id)
            elif isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
    return tuple(sorted(names))


def _literal_label(arg: ast.expr) -> Optional[str]:
    """The static stream label of an argument: literal strings verbatim,
    f-strings as templates with ``{}`` placeholders, else ``None``."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts: list[str] = []
        for value in arg.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("{}")
        return "".join(parts)
    return None


def _stream_calls(func: ast.AST) -> tuple[StreamCall, ...]:
    """``*.stream("label")`` and ``make_rng(seed, "label")`` call sites."""
    from .effects import _walk_own

    calls: list[StreamCall] = []
    for node in _walk_own(func):
        if not isinstance(node, ast.Call):
            continue
        label_arg: Optional[ast.expr] = None
        if isinstance(node.func, ast.Attribute) and node.func.attr == "stream":
            if len(node.args) == 1 and not node.keywords:
                label_arg = node.args[0]
        elif (isinstance(node.func, ast.Name)
              and node.func.id == "make_rng"):
            if len(node.args) >= 2:
                label_arg = node.args[1]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "stream":
                        label_arg = keyword.value
        if label_arg is None:
            continue
        label = _literal_label(label_arg)
        if label is not None:
            calls.append(StreamCall(label=label, line=node.lineno,
                                    col=node.col_offset))
    return tuple(sorted(set(calls)))


def _type_checking_lines(tree: ast.Module) -> set[int]:
    """Line numbers covered by ``if TYPE_CHECKING:`` bodies."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = dotted_name(test) if isinstance(
            test, (ast.Name, ast.Attribute)) else None
        if name is None or name.rsplit(".", 1)[-1] != "TYPE_CHECKING":
            continue
        for stmt in node.body:
            end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
            lines.update(range(stmt.lineno, end + 1))
    return lines


def _imports(tree: ast.Module) -> tuple[ImportRecord, ...]:
    guarded = _type_checking_lines(tree)
    records: list[ImportRecord] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                records.append(ImportRecord(
                    line=node.lineno, col=node.col_offset, level=0,
                    module=alias.name,
                    type_checking=node.lineno in guarded,
                ))
        elif isinstance(node, ast.ImportFrom):
            records.append(ImportRecord(
                line=node.lineno, col=node.col_offset,
                level=node.level, module=node.module or "",
                type_checking=node.lineno in guarded,
            ))
    return tuple(sorted(set(records)))


def _mutable_global_defs(tree: ast.Module,
                         aliases: dict[str, str]) -> dict[str, int]:
    """Module-level names bound to mutable containers (dict/list/set
    literals, comprehensions, or mutable-constructor calls).  Dunders
    (``__all__``) are skipped; class attributes are out of scope."""
    defs: dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target] if isinstance(
                stmt.target, ast.Name) else []
            value = stmt.value
        else:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set,
                                     ast.ListComp, ast.SetComp, ast.DictComp))
        if not mutable and isinstance(value, ast.Call):
            dotted = resolve_call_target(value.func, aliases)
            mutable = dotted is not None and matches_any(
                dotted, MUTABLE_CONSTRUCTORS)
        if not mutable:
            continue
        for target in targets:
            if not target.id.startswith("__"):
                defs.setdefault(target.id, stmt.lineno)
    return defs


def summarize_module(module: ModuleInfo) -> ModuleSummary:
    """Build the project-rule summary of one parsed file."""
    import json as _json

    from .astutil import annotation_is_set
    from .topo import module_components, parse_component_markers
    from .trace import (extract_trace, has_effect_nodes,
                        module_dataclass_fields, module_object_aliases,
                        parse_replica_markers, replica_marker_for)

    aliases = import_aliases(module.tree)
    mutable_globals = _mutable_global_defs(module.tree, aliases)
    global_names = frozenset(mutable_globals)
    objnew, objsetattr = module_object_aliases(module.tree)
    markers = parse_replica_markers(module.source)
    component_markers = parse_component_markers(module.source)
    functions: list[FunctionSummary] = []
    for func, qualname, _is_method in iter_function_defs(module.tree):
        flow = analyze_function(func, aliases)
        trace = extract_trace(func, objnew, objsetattr)
        facts = extract_bounded_facts(func, aliases)
        topo = extract_topo_facts(func)
        functions.append(FunctionSummary(
            qualname=qualname,
            name=func.name,
            line=func.lineno,
            col=func.col_offset,
            calls=_called_names(func),
            effects=extract_effect_sites(func, aliases),
            streams=_stream_calls(func),
            returns_set=annotation_is_set(func.returns),
            flows=flow.flows,
            sites=flow.sites,
            handlers=flow.handlers,
            # free names only resolve to this module's globals, so the
            # intersection keeps summaries small without losing a capture
            global_reads=tuple(sorted(flow.free_reads & global_names)),
            global_mutations=tuple(sorted(
                flow.free_mutations & global_names)),
            params=flow.params,
            trace_json=(_json.dumps(trace, separators=(",", ":"))
                        if has_effect_nodes(trace) else ""),
            replica_of=replica_marker_for(markers, func),
            growth=facts.growth,
            allocs=facts.allocs,
            opens=facts.opens,
            is_generator=facts.is_generator,
            renames=facts.renames,
            addr=topo.addr,
            caches=topo.caches,
            ttls=topo.ttls,
        ))
    functions.sort(key=lambda f: (f.line, f.col, f.qualname))
    return ModuleSummary(
        rel=module.rel,
        functions=tuple(functions),
        imports=_imports(module.tree),
        # _walk_own skips function bodies, so scanning the module node
        # yields exactly the module- and class-level stream calls.
        module_streams=_stream_calls(module.tree),
        line_suppressions={line: tuple(sorted(rules))
                           for line, rules in
                           module.line_suppressions.items()},
        file_suppressions=tuple(sorted(module.file_suppressions)),
        mutable_globals=mutable_globals,
        dataclass_fields=module_dataclass_fields(module.tree),
        components=module_components(module.tree, component_markers),
    )


def set_returning_names(summaries: Iterable[ModuleSummary]) -> frozenset[str]:
    """Simple names of callables annotated to return sets, project-wide."""
    return frozenset(
        func.name
        for summary in summaries
        for func in summary.functions
        if func.returns_set
    )


# ---------------------------------------------------------------------------
# the graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GraphNode:
    """One function in the project call graph."""

    key: str             # "<rel>::<qualname>"
    rel: str
    qualname: str
    name: str
    line: int
    col: int
    effects: tuple[EffectSite, ...]
    streams: tuple[StreamCall, ...]
    summary: FunctionSummary


class CallGraph:
    """Conservative name-bound call graph over module summaries."""

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.nodes: dict[str, GraphNode] = {}
        self._by_name: dict[str, list[str]] = {}
        self._class_inits: dict[str, list[str]] = {}
        self._calls: dict[str, tuple[str, ...]] = {}
        self._callees: dict[str, tuple[str, ...]] = {}
        self._callers: dict[str, tuple[str, ...]] = {}
        self._summaries = {s.rel: s for s in summaries}

        for rel in sorted(self._summaries):
            summary = self._summaries[rel]
            for func in summary.functions:
                key = f"{rel}::{func.qualname}"
                self.nodes[key] = GraphNode(
                    key=key, rel=rel, qualname=func.qualname, name=func.name,
                    line=func.line, col=func.col, effects=func.effects,
                    streams=func.streams, summary=func,
                )
                self._calls[key] = func.calls
                self._by_name.setdefault(func.name, []).append(key)
                if func.name == "__init__" and "." in func.qualname:
                    class_path = func.qualname.rsplit(".", 1)[0]
                    class_simple = class_path.rsplit(".", 1)[-1]
                    self._class_inits.setdefault(class_simple, []).append(key)

        callers: dict[str, list[str]] = {key: [] for key in self.nodes}
        for key in sorted(self.nodes):
            targets: list[str] = []
            for name in self._calls[key]:
                targets.extend(self._by_name.get(name, ()))
                targets.extend(self._class_inits.get(name, ()))
            resolved = tuple(sorted(set(targets)))
            self._callees[key] = resolved
            for target in resolved:
                callers[target].append(key)
        self._callers = {key: tuple(sorted(set(names)))
                         for key, names in callers.items()}

    # -- structure ----------------------------------------------------------

    def callees(self, key: str) -> tuple[str, ...]:
        return self._callees.get(key, ())

    def callers(self, key: str) -> tuple[str, ...]:
        return self._callers.get(key, ())

    def bound_keys(self, name: str) -> tuple[str, ...]:
        """Node keys a simple callee name binds to (functions of that
        name plus ``__init__`` of classes of that name)."""
        return tuple(sorted(set(self._by_name.get(name, []))
                            | set(self._class_inits.get(name, []))))

    def summary_for(self, rel: str) -> Optional[ModuleSummary]:
        return self._summaries.get(rel)

    def rels(self) -> tuple[str, ...]:
        return tuple(sorted(self._summaries))

    def binding_fingerprint(self) -> str:
        """Hash of the defined-name index.  When it changes, name-based
        binding may have changed for *any* caller, so cached propagation
        results must be discarded wholesale."""
        import hashlib

        payload = "|".join(sorted(self._by_name)) + "||" + "|".join(
            sorted(self._class_inits))
        return hashlib.sha256(payload.encode()).hexdigest()

    def resolve_entry(self, spec: str) -> list[str]:
        """Node keys for a ``path-suffix::qualname`` entry-point spec."""
        suffix, _, funcname = spec.partition("::")
        if not funcname:
            return []
        matches: list[str] = []
        for rel in sorted(self._summaries):
            if ("/" + rel).endswith("/" + suffix.lstrip("/")):
                key = f"{rel}::{funcname}"
                if key in self.nodes:
                    matches.append(key)
        return matches

    # -- reachability -------------------------------------------------------

    def reachable_with_chains(
        self, entries: Iterable[str],
    ) -> dict[str, tuple[str, ...]]:
        """BFS from ``entries``: one shortest qualname chain per node."""
        chains: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for key in sorted(set(entries)):
            if key in self.nodes and key not in chains:
                chains[key] = (self.nodes[key].qualname,)
                queue.append(key)
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            for callee in self.callees(current):
                if callee in chains:
                    continue
                chains[callee] = chains[current] + (
                    self.nodes[callee].qualname,)
                queue.append(callee)
        return chains

    def reverse_reachable(self, seeds: Iterable[str]) -> set[str]:
        """Seeds plus every transitive caller of a seed."""
        seen: set[str] = set()
        stack = [key for key in seeds if key in self.nodes]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.callers(key))
        return seen
