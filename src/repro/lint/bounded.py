"""Memory-boundedness facts (the cdebound extraction layer).

PR 8 rebuilt collection/export as a streaming pipeline whose memory
ceiling is independent of census size; the only runtime guard is a
tracemalloc gate in a slow-marked test.  This module extracts the
*static* facts the CDE017–CDE019 rules prove that invariant with — all
config-independent pure functions of a file's bytes, so they live in the
content-hash-keyed summary cache and replay warm:

* **Growth sites** (:class:`GrowthSite`) — container mutations that add
  elements (``append``/``extend``/``setdefault``/``d[k] = v``/``+=`` on
  a container display).  Each site records the receiver's *root
  category*, which is the static proxy for "does the container outlive
  the per-row loop":

  - ``param`` — the receiver is rooted in a parameter (including
    ``self``), so the container belongs to a caller and survives this
    frame;
  - ``global`` — the receiver is rooted in a free name, so it lives for
    the process;
  - ``local`` — rooted in a local of a *generator* that is bound outside
    every loop while the growth happens inside one: the generator frame
    is suspended per row, so the local accumulates across the stream.
    Locals of plain functions are frame-scoped (they die with the call,
    e.g. one platform's world state) and are deliberately not recorded;
  - ``escape`` — the receiver's root is not a simple name (e.g. a call
    result); ownership is unknown, so it is kept conservatively.

* **Allocation sites** (:class:`AllocSite`) — hoistable per-iteration
  allocations: f-strings, ``+``/``%``/``.format`` string building on
  literals, comprehensions consumed as a call's sole argument
  (``x.extend(e for e in ...)``), and all-constant list/set/dict
  displays.  Sites inside ``raise``/``assert`` subtrees are skipped
  (failure paths are cold by construction).  Ordinary constructor calls
  are *not* recorded: a measurement row must be constructed per probe —
  that allocation is the product, not waste.

* **Write-open sites** (:class:`OpenSite`) — ``open()`` calls whose mode
  creates or truncates, with a static judgement of whether the target
  path is a ``.part`` staging name, plus a per-function fact for
  ``os.replace``/``os.rename`` calls.  Together these let CDE019 prove
  the ``.part``-then-rename atomic checkpoint pattern.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from .astutil import resolve_call_target

#: Container methods that add elements.  Conservative by name, like the
#: call graph itself: a false ``update`` on a non-container widens the
#: audited surface and costs one justified carve-out, never hides growth.
GROWTH_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "add", "update", "setdefault", "push",
})

#: Call targets that atomically publish a staged file.
RENAME_CALLS = frozenset({"os.replace", "os.rename", "shutil.move"})


@dataclass(frozen=True, order=True)
class GrowthSite:
    """One container-growth mutation site."""

    line: int
    col: int
    op: str         # "append", "setitem", "augadd", ...
    receiver: str   # dotted receiver, subscripts rendered as "[]"
    category: str   # "param" | "global" | "local" | "escape"

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.op, self.receiver, self.category]

    @classmethod
    def from_json(cls, raw: list[object]) -> "GrowthSite":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   op=str(raw[2]), receiver=str(raw[3]),
                   category=str(raw[4]))


@dataclass(frozen=True, order=True)
class AllocSite:
    """One hoistable per-iteration allocation site."""

    line: int
    col: int
    kind: str       # "f-string" | "str-concat" | "str-format"
                    # | "comprehension" | "const-display"
    detail: str     # short human label ("extend(...)", "[...] literal")

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.kind, self.detail]

    @classmethod
    def from_json(cls, raw: list[object]) -> "AllocSite":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   kind=str(raw[2]), detail=str(raw[3]))


@dataclass(frozen=True, order=True)
class OpenSite:
    """One write-mode ``open()`` call."""

    line: int
    col: int
    mode: str       # the constant mode string, or "?" when dynamic
    part: bool      # the path argument is a ".part" staging name

    def to_json(self) -> list[object]:
        return [self.line, self.col, self.mode, self.part]

    @classmethod
    def from_json(cls, raw: list[object]) -> "OpenSite":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   mode=str(raw[2]), part=bool(raw[3]))


@dataclass(frozen=True)
class BoundedFacts:
    """The cdebound slice of one function's summary."""

    growth: tuple[GrowthSite, ...]
    allocs: tuple[AllocSite, ...]
    opens: tuple[OpenSite, ...]
    is_generator: bool
    renames: bool


# ---------------------------------------------------------------------------
# receiver anatomy
# ---------------------------------------------------------------------------

def _receiver(expr: ast.expr) -> tuple[Optional[str], str]:
    """``(root_name, dotted)`` of a receiver chain; root ``None`` when
    the chain is not anchored at a simple name (call result, literal)."""
    parts: list[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append("[]")
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return node.id, _join_receiver(parts)
        else:
            parts.append("<expr>")
            return None, _join_receiver(parts)


def _join_receiver(parts: list[str]) -> str:
    rendered = ""
    for part in reversed(parts):
        if part == "[]":
            rendered += "[]"
        elif rendered:
            rendered += "." + part
        else:
            rendered = part
    return rendered


def _param_names(func: ast.AST) -> frozenset[str]:
    args = getattr(func, "args", None)
    if args is None:
        return frozenset()
    names = [a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return frozenset(names)


_CONTAINER_VALUES = (ast.List, ast.Set, ast.Dict,
                     ast.ListComp, ast.SetComp, ast.DictComp,
                     ast.GeneratorExp)


def _is_container_value(value: ast.expr) -> bool:
    if isinstance(value, _CONTAINER_VALUES):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in {"list", "sorted", "set", "dict", "tuple"}
    return False


# ---------------------------------------------------------------------------
# the one-pass walker
# ---------------------------------------------------------------------------

class _Walker:
    """Own-body walk tracking loop depth and cold (raise/assert) scope."""

    def __init__(self, func: ast.AST, aliases: dict[str, str]):
        self.aliases = aliases
        self.params = _param_names(func)
        self.growth_raw: list[tuple[GrowthSite, int]] = []  # (site, depth)
        self.allocs: list[AllocSite] = []
        self.opens: list[OpenSite] = []
        self.is_generator = False
        self.renames = False
        #: local name -> (ever bound at loop depth 0, list of binding values)
        self.top_bindings: set[str] = set()
        self.loop_bindings: set[str] = set()
        self.assigns: dict[str, ast.expr] = {}
        for stmt in ast.iter_child_nodes(func):
            self._visit(stmt, depth=0, cold=False)

    # -- dispatch -----------------------------------------------------------

    def _visit(self, node: ast.AST, depth: int, cold: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return      # nested defs are their own call-graph nodes
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.is_generator = True
        if isinstance(node, (ast.Raise, ast.Assert)):
            cold = True
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind_target(node.target, depth + 1)
            self._visit(node.iter, depth, cold)
            for stmt in node.body + node.orelse:
                self._visit(stmt, depth + 1, cold)
            return
        if isinstance(node, ast.While):
            self._visit(node.test, depth + 1, cold)
            for stmt in node.body + node.orelse:
                self._visit(stmt, depth + 1, cold)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._handle_assign_target(target, node.value, depth)
            self._visit(node.value, depth, cold)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._handle_assign_target(node.target, node.value, depth)
                self._visit(node.value, depth, cold)
            return
        if isinstance(node, ast.AugAssign):
            self._handle_augassign(node, depth)
            self._visit(node.value, depth, cold)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, depth)
        if isinstance(node, ast.NamedExpr):
            self._bind_target(node.target, depth)
        if isinstance(node, ast.Call):
            self._handle_call(node, depth, cold)
        elif isinstance(node, ast.JoinedStr):
            if not cold:
                self.allocs.append(AllocSite(
                    line=node.lineno, col=node.col_offset,
                    kind="f-string", detail="f-string built per iteration"))
            # constants inside need no walk; formatted values do
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._visit(value.value, depth, cold)
            return
        elif isinstance(node, ast.BinOp):
            self._handle_binop(node, cold)
        elif isinstance(node, (ast.List, ast.Set, ast.Dict)):
            self._handle_display(node, cold)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            # the comprehension's implicit loop
            for child in ast.iter_child_nodes(node):
                self._visit(child, depth + 1, cold)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, depth, cold)

    # -- bindings -----------------------------------------------------------

    def _bind_target(self, target: ast.expr, depth: int) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                (self.top_bindings if depth == 0
                 else self.loop_bindings).add(node.id)

    def _handle_assign_target(self, target: ast.expr, value: ast.expr,
                              depth: int) -> None:
        if isinstance(target, ast.Name):
            (self.top_bindings if depth == 0
             else self.loop_bindings).add(target.id)
            self.assigns.setdefault(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._bind_target(target, depth)
        elif isinstance(target, ast.Subscript):
            self._record_growth(target.value, "setitem",
                                target.lineno, target.col_offset, depth)

    def _handle_augassign(self, node: ast.AugAssign, depth: int) -> None:
        if isinstance(node.target, ast.Subscript):
            # d[k] += 1: new keys may materialise (Counter idiom); a
            # fixed-slot list cursor looks identical and takes a carve-out.
            self._record_growth(node.target.value, "setitem",
                                node.lineno, node.col_offset, depth)
        elif (isinstance(node.op, ast.Add)
              and isinstance(node.target, (ast.Name, ast.Attribute))
              and _is_container_value(node.value)):
            self._record_growth(node.target, "augadd",
                                node.lineno, node.col_offset, depth)

    # -- growth -------------------------------------------------------------

    def _record_growth(self, receiver: ast.expr, op: str,
                       line: int, col: int, depth: int) -> None:
        root, dotted = _receiver(receiver)
        if root is None:
            category = "escape"
        elif root in self.params:
            category = "param"
        elif (root in self.top_bindings or root in self.loop_bindings
              or root in self.assigns):
            category = "local"
        else:
            category = "global"
        self.growth_raw.append((GrowthSite(
            line=line, col=col, op=op, receiver=dotted,
            category=category), depth))

    # -- calls / allocations ------------------------------------------------

    def _handle_call(self, node: ast.Call, depth: int, cold: bool) -> None:
        dotted = resolve_call_target(node.func, self.aliases)
        if dotted in RENAME_CALLS:
            self.renames = True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in GROWTH_METHODS):
            self._record_growth(node.func.value, node.func.attr,
                                node.lineno, node.col_offset, depth)
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"
                and isinstance(node.func.value, ast.Constant)
                and isinstance(node.func.value.value, str)
                and not cold):
            self.allocs.append(AllocSite(
                line=node.lineno, col=node.col_offset, kind="str-format",
                detail="'literal'.format(...) built per iteration"))
        if (not cold and len(node.args) == 1 and not node.keywords
                and isinstance(node.args[0], (ast.ListComp, ast.SetComp,
                                              ast.DictComp,
                                              ast.GeneratorExp))):
            label = (node.func.attr if isinstance(node.func, ast.Attribute)
                     else node.func.id if isinstance(node.func, ast.Name)
                     else "call")
            self.allocs.append(AllocSite(
                line=node.args[0].lineno, col=node.args[0].col_offset,
                kind="comprehension",
                detail=f"comprehension consumed by {label}(...)"))
        self._maybe_open(node)

    def _handle_binop(self, node: ast.BinOp, cold: bool) -> None:
        if cold:
            return
        if isinstance(node.op, ast.Add):
            for side in (node.left, node.right):
                if ((isinstance(side, ast.Constant)
                        and isinstance(side.value, str))
                        or isinstance(side, ast.JoinedStr)):
                    self.allocs.append(AllocSite(
                        line=node.lineno, col=node.col_offset,
                        kind="str-concat",
                        detail="string concatenation per iteration"))
                    return
        if (isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)):
            self.allocs.append(AllocSite(
                line=node.lineno, col=node.col_offset, kind="str-format",
                detail="'literal' % ... built per iteration"))

    def _handle_display(self, node: ast.AST, cold: bool) -> None:
        if cold:
            return
        if isinstance(node, ast.Dict):
            elements = [e for e in node.keys if e is not None] + node.values
        else:
            elements = list(node.elts)  # type: ignore[attr-defined]
        if elements and all(isinstance(e, ast.Constant) for e in elements):
            self.allocs.append(AllocSite(
                line=node.lineno,  # type: ignore[attr-defined]
                col=node.col_offset,  # type: ignore[attr-defined]
                kind="const-display",
                detail="all-constant container display rebuilt per "
                       "iteration (hoist to a module constant)"))

    # -- open() -------------------------------------------------------------

    def _maybe_open(self, node: ast.Call) -> None:
        dotted = resolve_call_target(node.func, self.aliases)
        if dotted not in {"open", "io.open"}:
            return
        mode_arg: Optional[ast.expr] = None
        if len(node.args) >= 2:
            mode_arg = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode_arg = keyword.value
        if mode_arg is None:
            return          # default "r": reads never corrupt a checkpoint
        if isinstance(mode_arg, ast.Constant) and isinstance(
                mode_arg.value, str):
            mode = mode_arg.value
            if not any(flag in mode for flag in "wax"):
                return
        else:
            mode = "?"      # dynamic mode: conservatively a write
        path_arg: Optional[ast.expr] = node.args[0] if node.args else None
        if path_arg is None:
            for keyword in node.keywords:
                if keyword.arg == "file":
                    path_arg = keyword.value
        self.opens.append(OpenSite(
            line=node.lineno, col=node.col_offset, mode=mode,
            part=self._is_part_path(path_arg, seen=set())))

    def _is_part_path(self, expr: Optional[ast.expr],
                      seen: set[str]) -> bool:
        if expr is None:
            return False
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, str) and expr.value.endswith(
                ".part")
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            return self._is_part_path(expr.right, seen)
        if isinstance(expr, ast.JoinedStr) and expr.values:
            tail = expr.values[-1]
            return (isinstance(tail, ast.Constant)
                    and isinstance(tail.value, str)
                    and tail.value.endswith(".part"))
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in {"with_suffix", "with_name"}):
            return any(self._is_part_path(arg, seen) for arg in expr.args)
        if isinstance(expr, ast.Name) and expr.id not in seen:
            seen.add(expr.id)
            return self._is_part_path(self.assigns.get(expr.id), seen)
        return False

    # -- result -------------------------------------------------------------

    def facts(self) -> BoundedFacts:
        growth: list[GrowthSite] = []
        for site, depth in self.growth_raw:
            if site.category == "local":
                # A plain function's locals die with the frame (one
                # platform's world state); only a generator's frame is
                # suspended across the row stream.  The accumulator must
                # be bound outside the loop that grows it.
                root = site.receiver.split(".")[0].split("[")[0]
                if not (self.is_generator and depth >= 1
                        and root in self.top_bindings):
                    continue
            growth.append(site)
        return BoundedFacts(
            growth=tuple(sorted(set(growth))),
            allocs=tuple(sorted(set(self.allocs))),
            opens=tuple(sorted(set(self.opens))),
            is_generator=self.is_generator,
            renames=self.renames,
        )


def extract_bounded_facts(func: ast.AST,
                          aliases: dict[str, str]) -> BoundedFacts:
    """The cdebound facts of one function's own body."""
    return _Walker(func, aliases).facts()
