"""The cdelint engine: collect files, summarise, run every rule.

The run is structured around cacheable per-file summaries:

1. Every file is content-hashed.  Files with a warm cached summary
   (:mod:`repro.lint.cache`) are *not* parsed; the rest are parsed into
   :class:`ModuleInfo` and summarised.
2. Per-module rules run on parsed modules; their (suppression-filtered)
   findings are cached per file, keyed by content hash plus an
   environment key covering the config, the rule set, and the
   project-wide set-returning index — so a warm run with no relevant
   change replays findings without parsing anything.
3. Project rules (CDE004, CDE007–CDE009) run on summaries alone through
   the :class:`ProjectContext` call graph; effect signatures are
   propagated incrementally when warm cached signatures exist for the
   same binding fingerprint.

File discovery and finding order are deterministic regardless of input
order: files are collected into a set and sorted, and the final report
is ``sorted(set(findings))`` on the total order of
:class:`~repro.lint.findings.Finding` — ``(path, line, col, rule_id,
message, symbol)``.
"""

from __future__ import annotations

import ast
import hashlib
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .cache import AnalysisCache, content_hash
from .callgraph import ModuleSummary, set_returning_names, summarize_module
from .config import LintConfig, path_matches_any
from .effects import EffectAnalysis
from .findings import Finding, LintReport
from .module import (SUPPRESS_ALL, ModuleInfo, ModuleParseError,
                     SuppressionKey, parse_suppressions, suppression_hits)
from .registry import ProjectContext, Rule, instantiate
from .sync import sync_digest

#: Rule id of the engine-implemented unused-suppression audit.
UNUSED_SUPPRESSION_RULE = "CDE014"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache",
                        ".cdelint_cache"})


def iter_python_files(paths: Sequence[Path],
                      config: LintConfig) -> list[Path]:
    """Sorted, deduplicated ``.py`` files under ``paths``."""
    collected: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                collected.add(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in path.rglob("*.py"):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            collected.add(candidate)
    files = sorted(collected)
    return [
        path for path in files
        if not path_matches_any(path.as_posix(), config.exclude)
    ]


def _relativize(path: Path) -> str:
    """Posix path relative to the working directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse(path: Path, rel: str, source: str) -> ModuleInfo:
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        raise ModuleParseError(
            f"{rel}:{exc.lineno or 0}: syntax error: {exc.msg}"
        ) from exc
    per_line, per_file = parse_suppressions(source)
    return ModuleInfo(path=path, rel=rel, source=source, tree=tree,
                      line_suppressions=per_line, file_suppressions=per_file)


@dataclass
class _FileEntry:
    """One collected file across the engine's stages."""

    path: Path
    rel: str
    source: str
    sha: str
    summary: ModuleSummary
    module: Optional[ModuleInfo] = None  # parsed lazily on a warm run


def run_lint(paths: Sequence[Path | str],
             config: LintConfig | None = None,
             select: Iterable[str] | None = None,
             cache_dir: Path | str | None = None,
             warn_unused_suppressions: bool = False,
             changed_only: Iterable[str] | None = None) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport`.

    Pure by default (no I/O side effects beyond reading the files); pass
    ``cache_dir`` to enable the incremental cache, which reads and
    atomically rewrites ``<cache_dir>/cache.json``.

    ``warn_unused_suppressions`` enables the CDE014 audit (equivalent to
    selecting CDE014 explicitly): suppression comments that waived no
    finding from any rule that ran this invocation are themselves
    reported.  ``changed_only`` restricts the *report* to the given rel
    paths plus every file with a function that transitively calls into
    them (the dirty subgraph) — the analysis itself still covers the
    whole tree, so cross-file rules stay sound.
    """
    config = config or LintConfig()
    rules: list[Rule] = instantiate(select, disabled=config.disable)
    cache = AnalysisCache(Path(cache_dir)) if cache_dir is not None else None
    audit_unused = warn_unused_suppressions or any(
        rule.rule_id == UNUSED_SUPPRESSION_RULE for rule in rules)

    rules_run = [rule.rule_id for rule in rules]
    if audit_unused and UNUSED_SUPPRESSION_RULE not in rules_run:
        rules_run.append(UNUSED_SUPPRESSION_RULE)
    report = LintReport(rules_run=tuple(rules_run))

    # Stage 1: hash every file; parse + summarise only the cache misses.
    entries: list[_FileEntry] = []
    resummarized: list[str] = []
    parsed: set[str] = set()
    for path in iter_python_files([Path(p) for p in paths], config):
        rel = _relativize(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{rel}: cannot read: {exc}")
            continue
        sha = content_hash(source)
        summary = cache.lookup_summary(rel, sha) if cache else None
        module: Optional[ModuleInfo] = None
        if summary is None:
            try:
                module = _parse(path, rel, source)
            except ModuleParseError as exc:
                report.parse_errors.append(str(exc))
                continue
            summary = summarize_module(module)
            resummarized.append(rel)
            parsed.add(rel)
            if cache:
                cache.store_summary(rel, sha, summary)
        entries.append(_FileEntry(path=path, rel=rel, source=source,
                                  sha=sha, summary=summary, module=module))
    report.files_checked = len(entries)

    summaries = {entry.rel: entry.summary for entry in entries}
    set_returning = set_returning_names(summaries.values())

    ctx = ProjectContext(
        config=config,
        modules=[e.module for e in entries if e.module is not None],
        summaries=summaries,
        set_returning_callables=set_returning,
    )

    # Stage 2: per-module rules, replayed from cache when nothing that
    # can influence them changed.
    env_key = ":".join((
        config.config_hash(),
        hashlib.sha256("|".join(sorted(set_returning)).encode())
        .hexdigest()[:16],
        ",".join(rule.rule_id for rule in rules),
    ))
    findings: list[Finding] = []
    #: Seconds spent inside each rule's checkers (``--stats``).  Uses
    #: time.perf_counter, the sanctioned elapsed-time sampler (CDE001):
    #: timings never feed back into findings or the committed baseline.
    rule_timings: dict[str, float] = {rule.rule_id: 0.0 for rule in rules}
    #: Suppression tokens that waived at least one finding, per rel path —
    #: the complement feeds the CDE014 unused-suppression audit.
    used_keys: dict[str, set[SuppressionKey]] = {}
    for entry in entries:
        cached = (cache.lookup_findings(entry.rel, entry.sha, env_key)
                  if cache else None)
        if cached is not None:
            cached_findings, cached_used = cached
            findings.extend(cached_findings)
            used_keys.setdefault(entry.rel, set()).update(cached_used)
            continue
        if entry.module is None:
            # Summary was warm but the findings environment changed.
            try:
                entry.module = _parse(entry.path, entry.rel, entry.source)
            except ModuleParseError as exc:  # pragma: no cover - same bytes
                report.parse_errors.append(str(exc))
                continue
            parsed.add(entry.rel)
            ctx.modules.append(entry.module)
        fresh: list[Finding] = []
        entry_used = used_keys.setdefault(entry.rel, set())
        for rule in rules:
            tick = time.perf_counter()
            module_findings = list(rule.check_module(entry.module, ctx))
            rule_timings[rule.rule_id] += time.perf_counter() - tick
            for finding in module_findings:
                hits = suppression_hits(
                    entry.module.line_suppressions,
                    entry.module.file_suppressions,
                    finding.rule_id, finding.line)
                if hits:
                    entry_used.update(hits)
                else:
                    fresh.append(finding)
        if cache:
            cache.store_findings(entry.rel, entry.sha, env_key, fresh,
                                 sorted(entry_used))
        findings.extend(fresh)

    # Stage 3: project rules over summaries, with incremental effect
    # propagation when the binding environment is unchanged.
    fingerprint = None
    sync_key = None
    if cache:
        fingerprint = ctx.graph.binding_fingerprint()
        cached_raw = cache.lookup_signatures(fingerprint)
        if cached_raw is not None:
            ctx.cached_signatures = EffectAnalysis.signatures_from_json(
                cached_raw)
            ctx.dirty_rels = frozenset(resummarized)
        if any(rule.rule_id == "CDE015" for rule in rules):
            sync_key = sync_digest(summaries, config)
            ctx.cached_sync = cache.lookup_sync(sync_key)
    for rule in rules:
        tick = time.perf_counter()
        project_findings = list(rule.check_project(ctx))
        rule_timings[rule.rule_id] += time.perf_counter() - tick
        for finding in project_findings:
            summary = summaries.get(finding.path)
            if summary is not None:
                hits = suppression_hits(
                    summary.line_suppressions, summary.file_suppressions,
                    finding.rule_id, finding.line)
                if hits:
                    used_keys.setdefault(finding.path, set()).update(hits)
                    continue
            findings.append(finding)

    if cache and fingerprint is not None:
        cache.store_signatures(fingerprint, ctx.effects.to_json())
        if sync_key is not None and ctx.computed_sync is not None:
            cache.store_sync(sync_key, ctx.computed_sync)
        cache.save()

    if audit_unused:
        tick = time.perf_counter()
        findings.extend(_audit_suppressions(entries, used_keys, rules_run))
        rule_timings[UNUSED_SUPPRESSION_RULE] = (
            rule_timings.get(UNUSED_SUPPRESSION_RULE, 0.0)
            + time.perf_counter() - tick)

    report.findings = sorted(set(findings))
    report.rule_timings = rule_timings
    report.reanalyzed_files = tuple(sorted(parsed))
    report.effects_recomputed = (tuple(ctx._effects.recomputed)
                                 if ctx._effects is not None else ())

    if changed_only is not None:
        _apply_changed_scope(report, ctx, frozenset(changed_only))
    return report


def _audit_suppressions(entries: list[_FileEntry],
                        used_keys: dict[str, set[SuppressionKey]],
                        rules_run: list[str]) -> list[Finding]:
    """CDE014: suppression tokens that waived nothing this run.

    Only tokens naming a rule that actually ran are audited (plus
    ``all``, which every rule can hit) — a ``--select CDE001`` run must
    not condemn a CDE007 waiver it never exercised.
    """
    audited = {rule_id for rule_id in rules_run
               if rule_id != UNUSED_SUPPRESSION_RULE}
    out: list[Finding] = []
    for entry in entries:
        summary = entry.summary
        used = used_keys.get(entry.rel, set())

        def _unused(kind: str, line: int, token: str,
                    at_line: int) -> Optional[Finding]:
            if token != SUPPRESS_ALL and token not in audited:
                return None
            if (kind, line, token) in used:
                return None
            if summary.is_suppressed(UNUSED_SUPPRESSION_RULE, at_line):
                return None
            scope = "line" if kind == "line" else "file-wide"
            return Finding(
                path=entry.rel, line=at_line, col=0,
                rule_id=UNUSED_SUPPRESSION_RULE,
                message=(f"unused {scope} suppression of {token}: no "
                         f"{token} finding was waived here this run"),
            )
        for line, tokens in sorted(summary.line_suppressions.items()):
            for token in sorted(tokens):
                finding = _unused("line", line, token, line)
                if finding is not None:
                    out.append(finding)
        for token in sorted(summary.file_suppressions):
            finding = _unused("file", 0, token, 1)
            if finding is not None:
                out.append(finding)
    return out


def _apply_changed_scope(report: LintReport, ctx: ProjectContext,
                         changed: frozenset[str]) -> None:
    """Restrict ``report.findings`` to the dirty subgraph of ``changed``.

    The scope is the changed files themselves plus every file containing
    a function that transitively *calls into* a changed file — exactly
    the files whose project-rule findings a local edit can flip.  The
    analysis already ran tree-wide, so this is pure report filtering.
    """
    graph = ctx.graph
    seeds = [key for key, node in graph.nodes.items() if node.rel in changed]
    scope = set(changed)
    scope.update(graph.nodes[key].rel for key in graph.reverse_reachable(seeds))
    report.changed_scope = tuple(sorted(scope))
    report.findings = [f for f in report.findings if f.path in scope]
