"""The cdelint engine: collect files, parse once, run every rule.

Two passes: all files are parsed into :class:`ModuleInfo` first (building
the :class:`ProjectContext` whole-program indexes), then per-module rules
run file by file and project rules run once.  Suppression comments are
honoured centrally so individual rules never need to know about them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from .config import LintConfig, path_matches_any
from .findings import Finding, LintReport
from .module import ModuleInfo, ModuleParseError, load_module
from .registry import ProjectContext, Rule, instantiate
from .rules.iteration import collect_set_returning

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


def iter_python_files(paths: Sequence[Path],
                      config: LintConfig) -> list[Path]:
    """Sorted, deduplicated ``.py`` files under ``paths``."""
    collected: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                collected.add(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in path.rglob("*.py"):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            collected.add(candidate)
    files = sorted(collected)
    return [
        path for path in files
        if not path_matches_any(path.as_posix(), config.exclude)
    ]


def _relativize(path: Path) -> str:
    """Posix path relative to the working directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(paths: Sequence[Path | str],
             config: LintConfig | None = None,
             select: Iterable[str] | None = None) -> LintReport:
    """Lint ``paths`` and return a :class:`LintReport` (pure; no I/O side
    effects beyond reading the files)."""
    config = config or LintConfig()
    rules: list[Rule] = instantiate(select, disabled=config.disable)

    report = LintReport(rules_run=tuple(rule.rule_id for rule in rules))
    modules: list[ModuleInfo] = []
    for path in iter_python_files([Path(p) for p in paths], config):
        try:
            modules.append(load_module(path, _relativize(path)))
        except ModuleParseError as exc:
            report.parse_errors.append(str(exc))
    report.files_checked = len(modules)

    ctx = ProjectContext(
        config=config,
        modules=modules,
        set_returning_callables=collect_set_returning(modules),
    )

    findings: list[Finding] = []
    for module in modules:
        for rule in rules:
            for finding in rule.check_module(module, ctx):
                if not module.is_suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
    module_by_rel = {module.rel: module for module in modules}
    for rule in rules:
        for finding in rule.check_project(ctx):
            module = module_by_rel.get(finding.path)
            if module is not None and module.is_suppressed(
                    finding.rule_id, finding.line):
                continue
            findings.append(finding)

    report.findings = sorted(set(findings))
    return report
