"""Incremental analysis cache (``.cdelint_cache/``).

The cache stores four things, all keyed so that staleness is impossible
by construction:

* **Per-file summaries** (:class:`~repro.lint.callgraph.ModuleSummary`),
  keyed by the file's content hash.  A warm run re-parses only files
  whose bytes changed; every whole-program index (call graph, effect
  propagation, layering, stream hygiene) is rebuilt from summaries.
* **Per-file findings** of the module-scoped rules, keyed by content
  hash *plus* an environment key covering the config, the rule set that
  ran, and the project-wide set-returning-callables index (CDE003's only
  cross-file input) — so an edit that changes a return annotation in one
  file correctly invalidates the iteration findings of every file.
* **Propagated effect signatures** plus the call graph's binding
  fingerprint, so a warm run re-propagates only the dirty subgraph
  (:meth:`repro.lint.effects.EffectAnalysis.build`); when the defined-
  name index changed (a function was added/renamed), name-based binding
  may have changed anywhere and the signatures are discarded wholesale.
* **Replica-equivalence verdicts** (CDE015), keyed by a digest over the
  config and every stored effect trace and binding
  (:func:`repro.lint.sync.sync_digest`) — the NFA inclusion checks are
  the one project analysis whose cost is independent of how many files
  changed, so their findings replay from cache whenever no trace,
  binding or config byte moved.

The whole cache is one JSON document written atomically (tmp + rename),
so a crashed or raced run can only ever lose the cache, never corrupt a
report.  Deleting ``.cdelint_cache/`` is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from .callgraph import SUMMARY_VERSION, ModuleSummary
from .findings import Finding
from .module import SuppressionKey

#: Bump to invalidate every cache on disk (schema or engine changes).
#: Schema 2: findings entries became ``{"f": [...], "u": [...]}`` blobs
#: carrying the used-suppression keys alongside the findings, so the
#: CDE014 unused-suppression audit is byte-identical cold vs warm.
CACHE_SCHEMA = 2

DEFAULT_CACHE_DIR = Path(".cdelint_cache")


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def _finding_to_json(finding: Finding) -> dict[str, Any]:
    return finding.to_json()


def _finding_from_json(raw: dict[str, Any]) -> Finding:
    return Finding(
        path=str(raw["path"]), line=int(raw["line"]), col=int(raw["col"]),
        rule_id=str(raw["rule"]), message=str(raw["message"]),
        symbol=str(raw.get("symbol", "")),
    )


class AnalysisCache:
    """One load-mutate-save cycle over ``<directory>/cache.json``."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.path = self.directory / "cache.json"
        self._data: dict[str, Any] = self._load()
        self._dirty = False

    def _load(self) -> dict[str, Any]:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            raw = {}
        if (not isinstance(raw, dict)
                or raw.get("schema") != CACHE_SCHEMA
                or raw.get("summary_version") != SUMMARY_VERSION):
            raw = {"schema": CACHE_SCHEMA,
                   "summary_version": SUMMARY_VERSION,
                   "files": {}, "effects": {}}
        raw.setdefault("files", {})
        raw.setdefault("effects", {})
        raw.setdefault("sync", {})
        return raw

    # -- per-file summaries -------------------------------------------------

    def lookup_summary(self, rel: str, sha: str) -> Optional[ModuleSummary]:
        entry = self._data["files"].get(rel)
        if not entry or entry.get("sha") != sha:
            return None
        try:
            return ModuleSummary.from_json(entry["summary"])
        except (KeyError, TypeError, ValueError):
            return None

    def store_summary(self, rel: str, sha: str,
                      summary: ModuleSummary) -> None:
        self._data["files"][rel] = {"sha": sha, "summary": summary.to_json(),
                                    "findings": {}}
        self._dirty = True

    # -- per-file module-rule findings --------------------------------------

    def lookup_findings(
        self, rel: str, sha: str, env_key: str,
    ) -> Optional[tuple[list[Finding], list[SuppressionKey]]]:
        entry = self._data["files"].get(rel)
        if not entry or entry.get("sha") != sha:
            return None
        blob = entry.get("findings", {}).get(env_key)
        if blob is None:
            return None
        try:
            findings = [_finding_from_json(raw) for raw in blob["f"]]
            used = [(str(kind), int(line), str(token))
                    for kind, line, token in blob["u"]]
            return findings, used
        except (KeyError, TypeError, ValueError):
            return None

    def store_findings(self, rel: str, sha: str, env_key: str,
                       findings: list[Finding],
                       used: list[SuppressionKey]) -> None:
        entry = self._data["files"].get(rel)
        if not entry or entry.get("sha") != sha:
            return
        # Keep exactly one environment per file: switching configs back
        # and forth re-lints, which is correct and keeps the cache small.
        entry["findings"] = {
            env_key: {"f": [_finding_to_json(f) for f in findings],
                      "u": [list(key) for key in sorted(used)]}}
        self._dirty = True

    # -- propagated effect signatures ---------------------------------------

    def lookup_signatures(
        self, binding_fingerprint: str,
    ) -> Optional[dict[str, list[str]]]:
        blob = self._data.get("effects", {})
        if blob.get("binding") != binding_fingerprint:
            return None
        signatures = blob.get("signatures")
        if not isinstance(signatures, dict):
            return None
        return signatures

    def store_signatures(self, binding_fingerprint: str,
                         signatures: dict[str, list[str]]) -> None:
        self._data["effects"] = {"binding": binding_fingerprint,
                                 "signatures": signatures}
        self._dirty = True

    # -- replica-equivalence verdicts (CDE015) ------------------------------

    def lookup_sync(self, digest: str) -> Optional[list[Finding]]:
        """Cached CDE015 findings for a run digest (pre-suppression)."""
        blob = self._data.get("sync", {})
        if blob.get("digest") != digest:
            return None
        raw = blob.get("findings")
        if not isinstance(raw, list):
            return None
        try:
            return [_finding_from_json(item) for item in raw]
        except (KeyError, TypeError, ValueError):
            return None

    def store_sync(self, digest: str, findings: list[Finding]) -> None:
        self._data["sync"] = {
            "digest": digest,
            "findings": [_finding_to_json(f) for f in findings]}
        self._dirty = True

    # -- lifecycle ----------------------------------------------------------

    def prune(self, live_rels: set[str]) -> None:
        """Drop entries for files outside ``live_rels``.

        Maintenance API — the engine deliberately does not call this,
        because different invocations may lint different subtrees and a
        run over one subtree must not evict another's warm entries.
        Deleting the cache directory is always a safe full reset.
        """
        stale = [rel for rel in self._data["files"] if rel not in live_rels]
        for rel in stale:
            del self._data["files"][rel]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(self._data, sort_keys=True)
            handle = tempfile.NamedTemporaryFile(
                "w", dir=self.directory, suffix=".tmp", delete=False,
                encoding="utf-8")
            try:
                with handle:
                    handle.write(payload)
                os.replace(handle.name, self.path)
            except OSError:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
        except OSError:
            # A read-only tree degrades to cold runs; never fail the lint.
            pass
