"""Parsed source files and suppression comments.

A :class:`ModuleInfo` bundles one file's AST with its parsed suppression
comments.  Suppressions are explicit and auditable:

* ``# cdelint: disable=CDE001`` on a flagged line suppresses the listed
  rules (comma-separated; ``all`` suppresses every rule) for that line.
  For a multi-line statement the comment goes on the statement's first
  line — the line the finding is reported at.
* ``# cdelint: disable-file=CDE003`` anywhere in the file suppresses the
  listed rules for the whole file.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

SUPPRESS_ALL = "all"

_SUPPRESS_RE = re.compile(
    r"#\s*cdelint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)


def _parse_rule_list(raw: str) -> frozenset[str]:
    rules = {token.strip() for token in raw.split(",") if token.strip()}
    return frozenset(
        SUPPRESS_ALL if rule.lower() == SUPPRESS_ALL else rule.upper()
        for rule in rules
    )


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression map."""

    path: Path
    rel: str                      # posix path used in findings and scoping
    source: str
    tree: ast.Module
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = frozenset()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for scope in (self.file_suppressions,
                      self.line_suppressions.get(line, frozenset())):
            if rule_id in scope or SUPPRESS_ALL in scope:
                return True
        return False


class ModuleParseError(Exception):
    """Raised when a checked file cannot be read or parsed."""


def parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract per-line and per-file suppression sets from comments."""
    per_line: dict[int, frozenset[str]] = {}
    per_file: frozenset[str] = frozenset()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, per_file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = _parse_rule_list(match.group("rules"))
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            per_file = per_file | rules
        else:
            line = token.start[0]
            per_line[line] = per_line.get(line, frozenset()) | rules
    return per_line, per_file


def load_module(path: Path, rel: str) -> ModuleInfo:
    """Parse ``path`` into a :class:`ModuleInfo`."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise ModuleParseError(f"{rel}: cannot read: {exc}") from exc
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        raise ModuleParseError(
            f"{rel}:{exc.lineno or 0}: syntax error: {exc.msg}"
        ) from exc
    per_line, per_file = parse_suppressions(source)
    return ModuleInfo(
        path=path,
        rel=rel,
        source=source,
        tree=tree,
        line_suppressions=per_line,
        file_suppressions=per_file,
    )
