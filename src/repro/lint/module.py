"""Parsed source files and suppression comments.

A :class:`ModuleInfo` bundles one file's AST with its parsed suppression
comments.  Suppressions are explicit and auditable:

* ``# cdelint: disable=CDE001`` on a flagged line suppresses the listed
  rules (comma-separated; ``all`` suppresses every rule) for that line.
  For a multi-line statement the comment goes on the statement's first
  line — the line the finding is reported at.
* ``# cdelint: disable-file=CDE003`` anywhere in the file suppresses the
  listed rules for the whole file.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

SUPPRESS_ALL = "all"

#: One suppression comment token that matched a finding:
#: ``("line", line, token)`` or ``("file", 0, token)``.
SuppressionKey = tuple[str, int, str]


def suppression_hits(
    line_rules: "dict[int, frozenset[str]] | dict[int, tuple[str, ...]]",
    file_rules: "frozenset[str] | tuple[str, ...]",
    rule_id: str,
    line: int,
) -> list[SuppressionKey]:
    """Which suppression tokens waive ``rule_id`` at ``line``.

    Works on both :class:`ModuleInfo` (frozenset values) and
    :class:`~repro.lint.callgraph.ModuleSummary` (tuple values).  The
    returned keys feed the CDE014 unused-suppression audit: a token that
    never appears in any run's hits is a stale waiver.
    """
    hits: list[SuppressionKey] = []
    for token in sorted(line_rules.get(line, ())):
        if token == rule_id or token == SUPPRESS_ALL:
            hits.append(("line", line, token))
    for token in sorted(file_rules):
        if token == rule_id or token == SUPPRESS_ALL:
            hits.append(("file", 0, token))
    return hits

_SUPPRESS_RE = re.compile(
    r"#\s*cdelint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)


def _parse_rule_list(raw: str) -> frozenset[str]:
    rules = {token.strip() for token in raw.split(",") if token.strip()}
    return frozenset(
        SUPPRESS_ALL if rule.lower() == SUPPRESS_ALL else rule.upper()
        for rule in rules
    )


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression map."""

    path: Path
    rel: str                      # posix path used in findings and scoping
    source: str
    tree: ast.Module
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = frozenset()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for scope in (self.file_suppressions,
                      self.line_suppressions.get(line, frozenset())):
            if rule_id in scope or SUPPRESS_ALL in scope:
                return True
        return False


class ModuleParseError(Exception):
    """Raised when a checked file cannot be read or parsed."""


def parse_suppressions(
    source: str,
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Extract per-line and per-file suppression sets from comments."""
    per_line: dict[int, frozenset[str]] = {}
    per_file: frozenset[str] = frozenset()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, per_file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = _parse_rule_list(match.group("rules"))
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            per_file = per_file | rules
        else:
            line = token.start[0]
            per_line[line] = per_line.get(line, frozenset()) | rules
    return per_line, per_file


def load_module(path: Path, rel: str) -> ModuleInfo:
    """Parse ``path`` into a :class:`ModuleInfo`."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise ModuleParseError(f"{rel}: cannot read: {exc}") from exc
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        raise ModuleParseError(
            f"{rel}:{exc.lineno or 0}: syntax error: {exc.msg}"
        ) from exc
    per_line, per_file = parse_suppressions(source)
    return ModuleInfo(
        path=path,
        rel=rel,
        source=source,
        tree=tree,
        line_suppressions=per_line,
        file_suppressions=per_file,
    )
