"""Intraprocedural reaching-definitions / def-use flow analysis (cdeflow).

One pass per function turns its AST into a small, JSON-serialisable set
of **flow edges**: which taint *origins* (parameters, candidate source
attribute reads, call results) reach which *sinks* (the function's
return, each argument of each call site), with a def-use hop list that
becomes the witness chain in a report.  The interprocedural half
(:mod:`repro.lint.taint`) stitches these edges over the call graph; this
module never looks beyond one function.

The analysis is an abstract interpretation over environments mapping
local names to origin sets:

* **Origins** are ``param:<name>``, ``attr:<dotted>`` (attribute reads
  ending with a :data:`~repro.lint.taint.CANDIDATE_ATTR_SUFFIXES`
  suffix — the config-independent candidate universe, so cached
  summaries stay valid under any rule configuration), and
  ``call:<dotted>@<line>`` for every other call result.
* **Flows are explicit only**: branch *conditions* never taint what the
  branch computes, comparison results are classifications (clean), and
  ``len()`` of tainted data is a count, not the data.
* Branches merge environments; loops iterate their body to a bounded
  fixed point; ``try`` handlers run against the merged before/after
  body environment (an exception can fire anywhere in the body).
* Known value-preserving builtins pass taint through; known mutator
  methods (``samples.append(rtt)``) taint their receiver; every other
  call is a fresh ``call:`` origin plus one flow edge per tainted
  argument.

The same pass records what the provenance rules need beyond flows:
candidate taint *sites* (presence of a source in a function, for the
scope-based CDE011), ``try`` handler shapes (CDE013), and free-variable
reads/mutations (CDE012's module-global capture check — the caller
intersects them with the module's mutable globals so summaries stay
small).

Everything is bounded (origins per name, hops per chain, loop passes,
edges per function) so a pathological function degrades to an
under-approximation instead of a blow-up; the bounds are far above
anything in this tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from .astutil import resolve_call_target
from .taint import (
    CANDIDATE_ATTR_SUFFIXES,
    CANDIDATE_SITE_CALLS,
    MUTATOR_METHODS,
    PASSTHROUGH_CALLS,
    matches_any,
)

#: Bounds: beyond these the analysis under-approximates, deterministically.
MAX_ORIGINS_PER_NAME = 8
MAX_HOPS = 8
MAX_LOOP_PASSES = 10
MAX_EDGES = 400

#: An origin: ``(key, line, hops)`` — where the value came from, where,
#: and through which ``name@line`` assignments it travelled since.
_Origin = tuple[str, int, tuple[str, ...]]
_OriginSet = dict[str, _Origin]
_Env = dict[str, _OriginSet]


@dataclass(frozen=True, order=True)
class FlowEdge:
    """One origin reaching one sink inside a single function."""

    src: str                  # origin key (param:/attr:/call: form)
    src_line: int
    sink: str                 # "return" or "arg:<callee>:<pos|k=name>"
    line: int                 # sink site line
    col: int
    hops: tuple[str, ...]     # def-use witness: ("samples@249", ...)

    def to_json(self) -> list[object]:
        return [self.src, self.src_line, self.sink, self.line, self.col,
                list(self.hops)]

    @classmethod
    def from_json(cls, raw: list[object]) -> "FlowEdge":
        return cls(src=str(raw[0]), src_line=int(raw[1]),  # type: ignore[arg-type]
                   sink=str(raw[2]), line=int(raw[3]),  # type: ignore[arg-type]
                   col=int(raw[4]),  # type: ignore[arg-type]
                   hops=tuple(str(h) for h in raw[5]))  # type: ignore[union-attr]


@dataclass(frozen=True, order=True)
class TaintSite:
    """Presence of one candidate source in a function (dotted form)."""

    key: str
    line: int
    col: int

    def to_json(self) -> list[object]:
        return [self.key, self.line, self.col]

    @classmethod
    def from_json(cls, raw: list[object]) -> "TaintSite":
        return cls(key=str(raw[0]), line=int(raw[1]),  # type: ignore[arg-type]
                   col=int(raw[2]))


@dataclass(frozen=True, order=True)
class HandlerSummary:
    """Shape of one ``except`` handler, as CDE013 needs it."""

    line: int
    col: int
    types: tuple[str, ...]    # caught type names (last segment); "*" = bare
    name: str                 # ``as`` binding, "" if none
    silent: bool              # body is only pass/continue/break/bare-return
    reraises: bool            # bare ``raise`` or re-raise of the binding
    uses_bound: bool          # reads the bound exception object

    def to_json(self) -> list[object]:
        return [self.line, self.col, list(self.types), self.name,
                self.silent, self.reraises, self.uses_bound]

    @classmethod
    def from_json(cls, raw: list[object]) -> "HandlerSummary":
        return cls(line=int(raw[0]), col=int(raw[1]),  # type: ignore[arg-type]
                   types=tuple(str(t) for t in raw[2]),  # type: ignore[union-attr]
                   name=str(raw[3]), silent=bool(raw[4]),
                   reraises=bool(raw[5]), uses_bound=bool(raw[6]))


@dataclass(frozen=True)
class FlowResult:
    """Everything one function contributes to the dataflow summaries."""

    flows: tuple[FlowEdge, ...]
    sites: tuple[TaintSite, ...]
    handlers: tuple[HandlerSummary, ...]
    free_reads: frozenset[str]       # free Name loads (raw, un-intersected)
    free_mutations: frozenset[str]   # free names stored-into / mutated
    params: tuple[str, ...]          # parameter names; "*" ends positionals


# ---------------------------------------------------------------------------
# name binding
# ---------------------------------------------------------------------------

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)
_Scopes = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _walk_own_scope(func: ast.AST) -> list[ast.AST]:
    """Nodes of ``func``'s own body, not descending into nested scopes."""
    found: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        found.append(node)
        if isinstance(node, _Scopes):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return found


def _target_names(target: ast.expr) -> list[str]:
    """Simple names bound by an assignment target (through tuples)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """Parameter names; a ``"*"`` marker separates positional-bindable
    names from keyword-only ones (so a positional index can never map
    into a keyword-only parameter)."""
    args = func.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if args.vararg is not None or args.kwonlyargs:
        names.append("*")
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


def _bound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every name bound in the function's own scope (params, assignment
    targets, loop/with/except bindings, local imports, nested def names,
    comprehension targets)."""
    bound = {name for name in _param_names(func) if name != "*"}
    if func.args.vararg:
        bound.add(func.args.vararg.arg)
    if func.args.kwarg:
        bound.add(func.args.kwarg.arg)
    for node in _walk_own_scope(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.NamedExpr):
            bound.update(_target_names(node.target))
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                bound.update(_target_names(node.optional_vars))
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                bound.add(node.name)
        elif isinstance(node, ast.comprehension):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, _FuncDef) or isinstance(node, ast.ClassDef):
            bound.add(node.name)
    # comprehension / lambda internals are separate scopes that were not
    # walked above; their targets never leak, so nothing to add.
    return bound


def _root_name(node: ast.expr) -> Optional[str]:
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------

class _Scanner:
    """Abstract interpreter for one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 aliases: dict[str, str]):
        self.aliases = aliases
        self.params = _param_names(func)
        self.bound = _bound_names(func)
        self.edges: dict[tuple[str, int, str, int], FlowEdge] = {}
        self.sites: dict[tuple[str, int, int], TaintSite] = {}
        self.free_reads: set[str] = set()
        self.free_mutations: set[str] = set()
        self.env: _Env = {}
        seeded = [name for name in self.params if name != "*"]
        if func.args.vararg:
            seeded.append(func.args.vararg.arg)
        if func.args.kwarg:
            seeded.append(func.args.kwarg.arg)
        for name in seeded:
            key = f"param:{name}"
            self.env[name] = {key: (key, func.lineno, ())}
        self._exec_body(func.body)

    # -- environments -------------------------------------------------------

    @staticmethod
    def _copy_env(env: _Env) -> _Env:
        return {name: dict(origins) for name, origins in env.items()}

    @staticmethod
    def _merge_sets(first: _OriginSet, second: _OriginSet) -> _OriginSet:
        if not second:
            return dict(first)
        merged = dict(first)
        for key, origin in second.items():
            merged.setdefault(key, origin)
        if len(merged) > MAX_ORIGINS_PER_NAME:
            merged = {key: merged[key]
                      for key in sorted(merged)[:MAX_ORIGINS_PER_NAME]}
        return merged

    @classmethod
    def _merge_envs(cls, first: _Env, second: _Env) -> _Env:
        merged = cls._copy_env(first)
        for name, origins in second.items():
            merged[name] = cls._merge_sets(merged.get(name, {}), origins)
        return merged

    @staticmethod
    def _env_shape(env: _Env) -> dict[str, frozenset[str]]:
        return {name: frozenset(origins)
                for name, origins in env.items() if origins}

    def _bind(self, name: str, origins: _OriginSet, line: int) -> None:
        hop = f"{name}@{line}"
        rebound: _OriginSet = {}
        for key, (okey, oline, hops) in origins.items():
            if len(hops) < MAX_HOPS:
                hops = hops + (hop,)
            rebound[key] = (okey, oline, hops)
        self.env[name] = self._merge_sets({}, rebound)

    def _taint_name(self, name: str, origins: _OriginSet, line: int) -> None:
        """Mutation: *add* origins to a name (AugAssign, mutator call,
        store through a subscript/attribute)."""
        if not origins:
            return
        hop = f"{name}@{line}"
        added: _OriginSet = {}
        for key, (okey, oline, hops) in origins.items():
            if len(hops) < MAX_HOPS:
                hops = hops + (hop,)
            added[key] = (okey, oline, hops)
        self.env[name] = self._merge_sets(self.env.get(name, {}), added)

    def _edge(self, origin: _Origin, sink: str, line: int, col: int) -> None:
        if len(self.edges) >= MAX_EDGES:
            return
        key, src_line, hops = origin
        mark = (key, src_line, sink, line)
        if mark not in self.edges:
            self.edges[mark] = FlowEdge(
                src=key, src_line=src_line, sink=sink, line=line, col=col,
                hops=tuple(hops))

    def _site(self, dotted: str, line: int, col: int) -> None:
        mark = (dotted, line, col)
        if mark not in self.sites:
            self.sites[mark] = TaintSite(key=dotted, line=line, col=col)

    # -- statements ---------------------------------------------------------

    def _exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _assign_target(self, target: ast.expr, origins: _OriginSet,
                       line: int) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, origins, line)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, origins, line)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # a tainted tuple taints every unpacked element (we cannot
            # track per-position provenance through packing)
            for element in target.elts:
                self._assign_target(element, origins, line)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval(target.value)
            if isinstance(target, ast.Subscript):
                self._eval(target.slice)
            root = _root_name(target)
            if root is None:
                return
            if root in self.bound:
                self._taint_name(root, origins, line)
            else:
                self.free_mutations.add(root)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            origins = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, origins, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, self._eval(stmt.value),
                                    stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            origins = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._taint_name(stmt.target.id, origins, stmt.lineno)
            else:
                self._assign_target(stmt.target, origins, stmt.lineno)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for origin in self._eval(stmt.value).values():
                    self._edge(origin, "return", stmt.lineno,
                               stmt.col_offset)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            before = self._copy_env(self.env)
            self._exec_body(stmt.body)
            taken = self.env
            self.env = self._copy_env(before)
            self._exec_body(stmt.orelse)
            self.env = self._merge_envs(taken, self.env)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._exec_loop(stmt)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._exec_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, origins,
                                        stmt.lineno)
            self._exec_body(stmt.body)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
            if stmt.cause is not None:
                self._eval(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
                else:
                    self._eval(target)
        elif isinstance(stmt, ast.Global):
            for name in stmt.names:
                self.free_reads.add(name)
                self.free_mutations.add(name)
        elif isinstance(stmt, _FuncDef) or isinstance(stmt, ast.ClassDef):
            self.env[stmt.name] = {}
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            pass
        elif isinstance(stmt, ast.Match):
            self._eval(stmt.subject)
            before = self._copy_env(self.env)
            merged = self._copy_env(before)
            for case in stmt.cases:
                self.env = self._copy_env(before)
                self._exec_body(case.body)
                merged = self._merge_envs(merged, self.env)
            self.env = merged
        # Pass / Break / Continue / Nonlocal: no dataflow

    def _exec_loop(self, stmt: ast.While | ast.For | ast.AsyncFor) -> None:
        iter_origins: _OriginSet = {}
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_origins = self._eval(stmt.iter)
        else:
            self._eval(stmt.test)
        for _ in range(MAX_LOOP_PASSES):
            shape = self._env_shape(self.env)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._assign_target(stmt.target, iter_origins, stmt.lineno)
            self._exec_body(stmt.body)
            if self._env_shape(self.env) == shape:
                break
        self._exec_body(stmt.orelse)

    def _exec_try(self, stmt: ast.Try) -> None:
        before = self._copy_env(self.env)
        self._exec_body(stmt.body)
        after_body = self.env
        # a handler may run with the body partially executed: analyse it
        # against the merge of the before/after environments
        handler_entry = self._merge_envs(before, after_body)
        exits = [after_body]
        for handler in stmt.handlers:
            self.env = self._copy_env(handler_entry)
            if handler.name:
                self.env[handler.name] = {}
            self._exec_body(handler.body)
            exits.append(self.env)
        self.env = exits[0]
        self._exec_body(stmt.orelse)
        exits[0] = self.env
        merged = exits[0]
        for exit_env in exits[1:]:
            merged = self._merge_envs(merged, exit_env)
        self.env = merged
        self._exec_body(stmt.finalbody)

    # -- expressions --------------------------------------------------------

    def _eval_many(self, nodes: list[ast.expr]) -> _OriginSet:
        merged: _OriginSet = {}
        for node in nodes:
            merged = self._merge_sets(merged, self._eval(node))
        return merged

    def _eval(self, node: ast.expr) -> _OriginSet:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                if node.id in self.env:
                    return self.env[node.id]
                if node.id not in self.bound and node.id not in self.aliases:
                    self.free_reads.add(node.id)
            return {}
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            dotted = resolve_call_target(node, self.aliases)
            if dotted is not None and any(
                    dotted.endswith(suffix)
                    for suffix in CANDIDATE_ATTR_SUFFIXES):
                key = f"attr:{dotted}"
                self._site(dotted, node.lineno, node.col_offset)
                return self._merge_sets(
                    base, {key: (key, node.lineno, ())})
            return base
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._merge_sets(self._eval(node.left),
                                    self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return self._eval_many(node.values)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            # a comparison result is a classification (a bool verdict),
            # not the measured value: evaluate operands for their reads
            # and side effects, return clean
            self._eval(node.left)
            self._eval_many(list(node.comparators))
            return {}
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._merge_sets(self._eval(node.body),
                                    self._eval(node.orelse))
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._eval_many(node.elts)
        if isinstance(node, ast.Dict):
            merged = self._eval_many([k for k in node.keys if k is not None])
            return self._merge_sets(merged, self._eval_many(node.values))
        if isinstance(node, ast.JoinedStr):
            return self._eval_many(list(node.values))
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            origins = self._eval(node.value)
            self._assign_target(node.target, origins, node.lineno)
            return origins
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # generator output is the function's output
            if node.value is not None:
                for origin in self._eval(node.value).values():
                    self._edge(origin, "return", node.lineno,
                               node.col_offset)
            return {}
        if isinstance(node, ast.Slice):
            parts = [p for p in (node.lower, node.upper, node.step)
                     if p is not None]
            return self._eval_many(parts)
        return {}

    def _eval_comprehension(self, node: ast.expr) -> _OriginSet:
        """Comprehensions run inline: bind each target from its iterable,
        evaluate conditions for reads, return the element origins."""
        generators = node.generators  # type: ignore[attr-defined]
        saved: dict[str, Optional[_OriginSet]] = {}
        for gen in generators:
            origins = self._eval(gen.iter)
            for name in _target_names(gen.target):
                saved.setdefault(name, self.env.get(name))
            self._assign_target(gen.target, origins, gen.target.lineno)
            for condition in gen.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            result = self._merge_sets(self._eval(node.key),
                                      self._eval(node.value))
        else:
            result = self._eval(node.elt)  # type: ignore[attr-defined]
        for name, previous in saved.items():
            if previous is None:
                self.env.pop(name, None)
            else:
                self.env[name] = previous
        return result

    def _eval_call(self, node: ast.Call) -> _OriginSet:
        dotted = resolve_call_target(node.func, self.aliases)
        arg_sets: list[tuple[str, _OriginSet]] = []
        position = 0
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self._eval(arg.value)
                continue
            arg_sets.append((str(position), self._eval(arg)))
            position += 1
        for keyword in node.keywords:
            if keyword.arg is None:
                self._eval(keyword.value)
                continue
            arg_sets.append((f"k={keyword.arg}", self._eval(keyword.value)))
        merged_args: _OriginSet = {}
        for _, origins in arg_sets:
            merged_args = self._merge_sets(merged_args, origins)

        if dotted is not None and matches_any(dotted, PASSTHROUGH_CALLS):
            return merged_args

        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS):
            root = _root_name(node.func.value)
            if root is not None:
                if root in self.bound:
                    self._taint_name(root, merged_args, node.lineno)
                else:
                    self.free_reads.add(root)
                    self.free_mutations.add(root)
            else:
                self._eval(node.func.value)
            return {}

        if dotted is None:
            # dynamic callee (a call on a call result, a subscripted
            # table, ...): evaluate for reads, treat the result as clean
            self._eval(node.func)
            return {}

        if isinstance(node.func, ast.Attribute):
            root = _root_name(node.func.value)
            if root is not None and root not in self.bound \
                    and root not in self.env:
                self.free_reads.add(root)
            self._eval(node.func.value)

        for spec, origins in arg_sets:
            for origin in origins.values():
                self._edge(origin, f"arg:{dotted}:{spec}", node.lineno,
                           node.col_offset)
        if matches_any(dotted, CANDIDATE_SITE_CALLS):
            self._site(dotted, node.lineno, node.col_offset)
        key = f"call:{dotted}@{node.lineno}"
        return {key: (key, node.lineno, ())}


# ---------------------------------------------------------------------------
# handler shapes (CDE013)
# ---------------------------------------------------------------------------

def _handler_types(handler: ast.ExceptHandler) -> tuple[str, ...]:
    node = handler.type
    if node is None:
        return ("*",)
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names: list[str] = []
    for element in elements:
        parts: list[str] = []
        current: ast.expr = element
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
        if parts:
            names.append(parts[0])
    return tuple(sorted(names)) or ("*",)


def _is_silent_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Return) and stmt.value is None:
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _handler_summaries(
        func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[
            HandlerSummary, ...]:
    summaries: list[HandlerSummary] = []
    for node in _walk_own_scope(func):
        if not isinstance(node, ast.ExceptHandler):
            continue
        reraises = False
        uses_bound = False
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                if inner.exc is None:
                    reraises = True
                elif (handler_name := node.name) and isinstance(
                        inner.exc, ast.Name) and inner.exc.id == handler_name:
                    reraises = True
                elif node.name and any(
                        isinstance(sub, ast.Name) and sub.id == node.name
                        for sub in ast.walk(inner.exc)):
                    reraises = True
            elif (isinstance(inner, ast.Name) and node.name
                    and inner.id == node.name
                    and isinstance(inner.ctx, ast.Load)):
                uses_bound = True
        summaries.append(HandlerSummary(
            line=node.lineno, col=node.col_offset,
            types=_handler_types(node), name=node.name or "",
            silent=_is_silent_body(node.body),
            reraises=reraises, uses_bound=uses_bound))
    return tuple(sorted(summaries))


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def analyze_function(func: ast.FunctionDef | ast.AsyncFunctionDef,
                     aliases: dict[str, str]) -> FlowResult:
    """Run the intraprocedural analysis over one function definition."""
    scanner = _Scanner(func, aliases)
    return FlowResult(
        flows=tuple(sorted(scanner.edges.values())),
        sites=tuple(sorted(scanner.sites.values())),
        handlers=_handler_summaries(func),
        free_reads=frozenset(scanner.free_reads),
        free_mutations=frozenset(scanner.free_mutations),
        params=scanner.params,
    )
