"""cdelint configuration, loadable from ``[tool.cdelint]`` in pyproject.toml.

Every scope knob is a tuple of posix path fragments matched against the
*end* of a checked file's path (a trailing ``/`` marks a directory
fragment matched anywhere in the path).  Suffix matching keeps the config
valid whether the linter runs from the repo root, a subdirectory, or on
absolute paths.
"""

from __future__ import annotations

import hashlib
import json
import tomllib
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any


def path_matches(path: str, pattern: str) -> bool:
    """Whether posix ``path`` falls under ``pattern``.

    ``"repro/net/clock.py"`` matches by suffix; ``"repro/study/"``
    (trailing slash) matches any path with that directory fragment.
    """
    path = "/" + path.lstrip("/")
    pattern = pattern.strip("/")
    if pattern.endswith(".py"):
        return path.endswith("/" + pattern)
    return ("/" + pattern + "/") in path


def path_matches_any(path: str, patterns: tuple[str, ...]) -> bool:
    return any(path_matches(path, pattern) for pattern in patterns)


@dataclass(frozen=True)
class LintConfig:
    """Scopes and allow-lists for the rule set (see docs/STATIC_ANALYSIS.md)."""

    #: Files/directories never linted.
    exclude: tuple[str, ...] = ()
    #: The only files allowed to touch the wall clock (CDE001).
    wallclock_allow: tuple[str, ...] = ("repro/net/clock.py",)
    #: The only files allowed to use global/unseeded randomness (CDE002).
    rng_allow: tuple[str, ...] = ("repro/net/rng.py",)
    #: Result paths where unordered iteration leaks into output (CDE003).
    ordered_paths: tuple[str, ...] = (
        "repro/study/", "repro/core/", "repro/server/",
    )
    #: ``path::function`` shard-worker entry points (CDE004).
    shard_entries: tuple[str, ...] = ("repro/study/parallel.py::run_shard",)
    #: ``path::qualname`` roots whose call graphs must stay effect-free
    #: (CDE007): the shard worker plus the fault/retry decision paths.
    effect_roots: tuple[str, ...] = (
        "repro/study/parallel.py::run_shard",
        "repro/net/faults.py::FaultInjector.decide",
        "repro/core/resilient.py::RetryPolicy.delay_with_jitter",
        "repro/core/resilient.py::RetryPolicy.backoff",
        "repro/core/prober.py::DirectProber._query_resilient",
        "repro/resolver/stub.py::StubResolver._transact",
    )
    #: The architecture DAG (CDE008), bottom layer first; names within one
    #: entry (space-separated) form a group that may import one another.
    layers: tuple[str, ...] = (
        "dns", "net", "cache resolver server", "core client", "study", "cli",
    )
    #: Packages whose public API must be fully annotated (CDE006).
    typed_paths: tuple[str, ...] = (
        "repro/study/", "repro/core/", "repro/server/", "repro/lint/",
    )
    #: Rule IDs disabled globally.
    disable: tuple[str, ...] = ()

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Config from ``[tool.cdelint]``; defaults when absent."""
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        section = data.get("tool", {}).get("cdelint", {})
        return cls.from_mapping(section)

    @classmethod
    def from_mapping(cls, section: dict[str, Any]) -> "LintConfig":
        known = {f.name for f in fields(cls)}
        overrides: dict[str, Any] = {}
        for raw_key, value in section.items():
            key = raw_key.replace("-", "_")
            if key not in known:
                raise ValueError(f"unknown [tool.cdelint] key: {raw_key!r}")
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise ValueError(
                    f"[tool.cdelint] {raw_key!r} must be a list of strings"
                )
            overrides[key] = tuple(value)
        return replace(cls(), **overrides)

    def layer_of(self) -> dict[str, int]:
        """Package name -> layer index (bottom = 0) from :attr:`layers`."""
        mapping: dict[str, int] = {}
        for index, group in enumerate(self.layers):
            for package in group.split():
                mapping[package] = index
        return mapping

    def config_hash(self) -> str:
        """Stable digest of this config, for incremental-cache keying."""
        payload = json.dumps(asdict(self), sort_keys=True, default=list)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
