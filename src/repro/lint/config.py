"""cdelint configuration, loadable from ``[tool.cdelint]`` in pyproject.toml.

Every scope knob is a tuple of posix path fragments matched against the
*end* of a checked file's path (a trailing ``/`` marks a directory
fragment matched anywhere in the path).  Suffix matching keeps the config
valid whether the linter runs from the repo root, a subdirectory, or on
absolute paths.
"""

from __future__ import annotations

import hashlib
import json
import tomllib
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any


def path_matches(path: str, pattern: str) -> bool:
    """Whether posix ``path`` falls under ``pattern``.

    ``"repro/net/clock.py"`` matches by suffix; ``"repro/study/"``
    (trailing slash) matches any path with that directory fragment.
    """
    path = "/" + path.lstrip("/")
    pattern = pattern.strip("/")
    if pattern.endswith(".py"):
        return path.endswith("/" + pattern)
    return ("/" + pattern + "/") in path


def path_matches_any(path: str, patterns: tuple[str, ...]) -> bool:
    return any(path_matches(path, pattern) for pattern in patterns)


#: The CDE017 carve-out table for this tree (``pattern=justification``;
#: see :attr:`LintConfig.bounded_allow`).  Defined up front so the
#: defaults stay usable under ``--no-config`` — the mutation tests lint
#: pristine copies of ``src/repro`` that must come up clean.  The seven
#: world packages get one structural carve-out each: their state lives
#: inside one platform's :class:`SimulatedInternet`, which is built,
#: measured and dropped per spec, so nothing there can grow with the
#: census.  Everything on the census-lifetime path (study/, export) is
#: itemised per receiver with its explicit bound.
_DEFAULT_BOUNDED_ALLOW: tuple[str, ...] = (
    # -- world-scoped packages: lifetime is one platform's world ------------
    "repro/dns/*=world-scoped (messages, zones, per-name intern/encode "
    "memos keyed by their inputs); dropped with the world after its row",
    "repro/cache/*=world-scoped; TTL+capacity eviction bounds every "
    "per-world cache",
    "repro/resolver/*=world-scoped (pools, frontend table, selector load, "
    "per-query visited/trace bounded by chain depth)",
    "repro/server/*=world-scoped (zones, RRL token buckets, hierarchy "
    "maps, the per-world QueryLog — windowed logs additionally ring-evict)",
    "repro/client/*=world-scoped (browser host cache, SMTP attempt "
    "records); dropped with the world",
    "repro/net/*=world-scoped (endpoints, RNG stream memo over a fixed "
    "label set, RRL window pruned per decision, per-shard perf counters)",
    "repro/core/*=world-scoped (monitor history, prober URL list, "
    "hierarchy registry); dropped with the world",
    # -- the linter itself --------------------------------------------------
    "repro/lint/*=never on a measurement path; reachable only through "
    "simple-name call binding (same precedent as shard-state-allow)",
    # -- census-lifetime accumulators, itemised -----------------------------
    "repro/study/accuracy.py::AccuracyReport.add_row::*=fixed label-set "
    "accuracy cells (technique x selector class), integer counters only",
    "repro/study/census.py::CensusAggregates.add_row::*=online aggregate "
    "fold: integer cells over fixed or value-bounded key sets",
    "repro/study/census.py::_fold_and_write::keep=in-memory mode only: "
    "keep is None on every streaming path",
    "repro/study/engine.py::PipelinedEngine.stream::active=lane "
    "scheduling list, bounded by the lane count",
    "repro/study/engine.py::PipelinedEngine.stream::delivered=fixed-size "
    "per-lane delivery cursor",
    "repro/study/engine.py::PipelinedEngine.stream::buffers[]=per-lane "
    "reorder buffers drained in delivery order, bounded by "
    "STREAM_BUFFER_ROWS per lane",
    "repro/study/engine.py::ShardLane._lane_turns::self.rows=drained by "
    "drain_rows every pipeline turn, bounded by rows per turn",
    "repro/study/engine.py::_FastPlan.build::cold_chains=per-platform "
    "plan construction, lifetime one platform",
    "repro/study/export.py::CensusWriter.write_dict::self._buffer="
    "flushed every chunk_size rows, bounded by chunk_size",
    "repro/study/export.py::CensusWriter._flush_chunk::self.chunks="
    "manifest chunk index: one entry per chunk_size rows, the resume "
    "contract itself",
    "repro/study/internet.py::SimulatedInternet.add_platform_from_spec::"
    "self.platforms=world-scoped platform registry; streaming shards host "
    "one spec per world",
    "repro/study/parallel.py::_merge_spilled::taken=fixed-size per-shard "
    "merge cursor (len == n_shards)",
    "repro/study/stats.py::*=fixed-size accumulators: integer counters "
    "over value-bounded keys (CDF points, bubble grid, fault kinds)",
    "repro/study/trends.py::TrendStudy.run::self.rounds=name-binding "
    "artifact via the generic '.run' callee; the trend study is a "
    "top-level driver (per-round summaries, bounded by round count), "
    "never on the streaming path",
)


@dataclass(frozen=True)
class LintConfig:
    """Scopes and allow-lists for the rule set (see docs/STATIC_ANALYSIS.md)."""

    #: Files/directories never linted.
    exclude: tuple[str, ...] = ()
    #: The only files allowed to touch the wall clock (CDE001).
    wallclock_allow: tuple[str, ...] = ("repro/net/clock.py",)
    #: The only files allowed to use global/unseeded randomness (CDE002).
    rng_allow: tuple[str, ...] = ("repro/net/rng.py",)
    #: Result paths where unordered iteration leaks into output (CDE003).
    ordered_paths: tuple[str, ...] = (
        "repro/study/", "repro/core/", "repro/server/",
    )
    #: ``path::function`` shard-worker entry points (CDE004).
    #: ``run_shard`` reaches the engine through a lazy import (the engine
    #: imports parallel for its task types), so the lane entry points are
    #: listed explicitly.
    shard_entries: tuple[str, ...] = (
        "repro/study/parallel.py::run_shard",
        "repro/study/engine.py::ShardLane.run_to_completion",
        "repro/study/engine.py::PipelinedEngine.run",
        "repro/study/measurement.py::measure_population",
        # measure_population reaches these through the MEASURES dict (a
        # variable call the graph cannot resolve), so the per-technique
        # measurers are shard entry points in their own right.
        "repro/study/measurement.py::measure_direct",
        "repro/study/measurement.py::measure_via_smtp",
        "repro/study/measurement.py::measure_via_browser",
    )
    #: ``path::qualname`` roots whose call graphs must stay effect-free
    #: (CDE007): the shard worker plus the fault/retry decision paths.
    effect_roots: tuple[str, ...] = (
        "repro/study/parallel.py::run_shard",
        "repro/net/faults.py::FaultInjector.decide",
        "repro/core/resilient.py::RetryPolicy.delay_with_jitter",
        "repro/core/resilient.py::RetryPolicy.backoff",
        "repro/core/prober.py::DirectProber._query_resilient",
        "repro/resolver/stub.py::StubResolver._transact",
    )
    #: The architecture DAG (CDE008), bottom layer first; names within one
    #: entry (space-separated) form a group that may import one another.
    layers: tuple[str, ...] = (
        "dns", "net", "cache resolver server", "core client", "study", "cli",
    )
    #: Packages whose public API must be fully annotated (CDE006).
    typed_paths: tuple[str, ...] = (
        "repro/study/", "repro/core/", "repro/server/", "repro/lint/",
    )
    #: CDE010 timing-taint sources (attribute/call patterns; the call
    #: table is single-sourced with the CDE001 CLOCK leaves — see
    #: ``repro.lint.taint``).  Attribute patterns must end with a
    #: candidate-universe suffix to be tracked in summaries.
    timing_sources: tuple[str, ...] = (
        "clock.now", ".rtt", ".dns_rtt",
        "time.time", "time.monotonic", "time.perf_counter",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    )
    #: CDE010 counting/export sinks: a timing value reaching any of these
    #: callees unclassified is a finding.  PerfCounters/ShardPerf are
    #: deliberately absent — they are the sanctioned wall-time telemetry.
    timing_sinks: tuple[str, ...] = (
        "CacheCountEstimate", "estimate_from_occupancy",
        "PlatformMeasurement", "measurement_to_dict",
        "measurements_to_dict", "report_to_dict", "table1_to_dict",
    )
    #: CDE010 sanitizers: the hit/miss classification boundary.  A value
    #: crossing one of these calls becomes a classification, not a time.
    timing_sanitizers: tuple[str, ...] = (
        "LatencyClassifier.fit", "is_miss", "split_bimodal",
    )
    #: ``path::qualname`` shard-merge entry points (CDE011): code
    #: reachable from these but NOT from :attr:`shard_entries` handles
    #: rows from many worlds and must not touch world-scoped state.
    merge_entries: tuple[str, ...] = (
        "repro/study/parallel.py::run_parallel_measurement",
        "repro/study/parallel.py::measure_population_parallel",
    )
    #: Shard-spec constructors (CDE012): fork-unsafe resources must not
    #: flow into these (specs are pickled across process boundaries).
    shard_spec_types: tuple[str, ...] = ("ShardTask", "WorldConfig")
    #: Files whose module-level mutable globals are sanctioned for shard
    #: use (CDE012) — deterministic value-interning memoisation (the name
    #: intern table and the per-name wire-encode cache: entries depend
    #: only on their keys, so cross-lane sharing cannot change output),
    #: plus the linter's own import-time rule registry (never on a shard
    #: path; it only appears reachable through simple-name call binding).
    shard_state_allow: tuple[str, ...] = ("repro/dns/name.py",
                                          "repro/dns/wire.py",
                                          "repro/lint/")
    #: Probe-path scopes (CDE013): except handlers here must not swallow
    #: probe-failure history.
    probe_paths: tuple[str, ...] = ("repro/core/",)
    #: Exception types whose *silent* swallowing on a probe path loses
    #: the degradation signal (CDE013).
    probe_error_types: tuple[str, ...] = (
        "ProbeFailure", "QueryTimeout", "ResolutionError",
    )
    #: Exception types carrying AttemptRecord history (CDE013): catching
    #: one without using or re-raising it discards the history.
    probe_history_types: tuple[str, ...] = ("ProbeFailure",)
    #: cdesync (CDE015) RNG-callable table: ``name=method`` maps a call
    #: whose resolved chain *ends* in ``name`` to a canonical RNG method
    #: token.  ``randbelow`` is the canonical form of the rejection-
    #: sampling idiom (``randrange``/``randint`` and folded
    #: ``getrandbits`` retry loops all draw it).
    trace_rng_callables: tuple[str, ...] = (
        "random=random", "gauss=gauss", "uniform=uniform",
        "choice=choice", "shuffle=shuffle", "getrandbits=getrandbits",
        "randrange=randbelow", "randint=randbelow",
        "rng_random=random", "rng_gauss=gauss",
        "prober_randrange=randbelow", "prober_getrandbits=getrandbits",
        "egress_getrandbits=getrandbits", "sel_state=getrandbits",
    )
    #: cdesync container attributes: a call whose resolved chain passes
    #: *through* one of these is a container read/helper and emits no
    #: trace token (mutations still label by the container attribute).
    #: ``sel_state`` doubles as the fused selector scratch slot (its memo
    #: is a deterministic cache of a pure hash, so its mutations are
    #: unobservable by design).
    trace_containers: tuple[str, ...] = (
        "_entries", "_rrsets", "_by_qname", "_by_suffix", "_timestamps",
        "_frontend_table", "_marks", "_load", "sel_state", "corridor",
        "suffix_tails",
    )
    #: cdesync observable state attributes (underscore-stripped): only
    #: mutations of these labels appear in canonical traces, and a write
    #: through a :attr:`trace_containers` slot is never observable
    #: regardless of label.  ``_now`` is always observable (the clock
    #: token) and need not be listed.
    trace_state_attrs: tuple[str, ...] = (
        "hits", "misses", "insertions", "evictions", "expirations",
        "queries", "cache_hits", "cache_misses", "upstream_queries",
        "failures", "frontend_collapsed", "prefetches", "queries_sent",
        "messages_sent", "messages_delivered", "requests_lost",
        "responses_lost", "timeouts", "retransmissions", "faults_injected",
        "next", "sequence", "last_used",
    )
    #: cdesync replica bindings beyond the in-source ``# cdelint:
    #: replica-of=`` markers: ``path-suffix::qualname=dotted.original``.
    replicas: tuple[str, ...] = ()
    #: Replica bindings to *canonicalize but not check* (CDE015): the
    #: pair still collapses to a sync token inside other checked pairs,
    #: recording equivalence as an assumption rather than a proof.
    replicas_assume: tuple[str, ...] = ()
    #: cdebound (CDE017) streaming entry points (``path::qualname``): no
    #: container reachable from these may accumulate per-row state.
    stream_entries: tuple[str, ...] = (
        "repro/study/parallel.py::stream_parallel_measurement",
        "repro/study/parallel.py::_run_shard_spill",
        "repro/study/parallel.py::_merge_spilled",
        "repro/study/engine.py::PipelinedEngine.stream",
        "repro/study/census.py::run_census",
        "repro/study/export.py::CensusWriter.write_row",
        "repro/study/export.py::CensusWriter.write_dict",
    )
    #: cdebound (CDE017) carve-outs: ``pattern=justification`` where the
    #: fnmatch pattern is matched against ``<rel>::<qualname>::<receiver>``
    #: (floating: a leading ``*`` is implied).  Every entry must state the
    #: bound that keeps the growth finite — see docs/STATIC_ANALYSIS.md.
    bounded_allow: tuple[str, ...] = _DEFAULT_BOUNDED_ALLOW
    #: cdebound (CDE018) hot paths (``path::qualname``): the per-probe
    #: fused corridor and lane batch loops, where a hoistable allocation
    #: is a per-probe cost the fast path exists to avoid.
    hot_paths: tuple[str, ...] = (
        "repro/study/engine.py::_leg_inline",
        "repro/study/engine.py::_leg_generic",
        "repro/study/engine.py::_fused_probe",
        "repro/study/engine.py::_fused_probe_flat",
        "repro/study/engine.py::_fused_resolve",
        "repro/study/engine.py::_fused_resolve_flat",
        "repro/study/engine.py::_fused_resolve_chain",
        "repro/study/engine.py::_fused_upstream",
        "repro/study/engine.py::_fused_upstream_cold",
        "repro/study/engine.py::_fused_cde_transaction",
        "repro/study/engine.py::_fused_upstream_slow",
        "repro/study/engine.py::_measure_direct_turns",
        "repro/study/engine.py::ShardLane._lane_turns",
    )
    #: cdebound (CDE019) export entry points (``path::qualname``): every
    #: write-mode ``open()`` reachable from these must stage to ``.part``
    #: and publish with ``os.replace``/``os.rename``.
    export_entries: tuple[str, ...] = (
        "repro/study/export.py::CensusWriter.write_row",
        "repro/study/export.py::CensusWriter.write_dict",
        "repro/study/export.py::CensusWriter.close",
    )
    #: cdetopo (CDE020/CDE021) component scope: the resolver/server/cache
    #: plane where every class must declare what it does to the
    #: addresses and caches the CDE counting depends on.
    component_paths: tuple[str, ...] = (
        "repro/resolver/", "repro/server/", "repro/cache/",
    )
    #: cdetopo declarations for classes that cannot carry an in-source
    #: ``# cdelint: component=`` marker (``ClassName=role(attrs)``); an
    #: in-source marker always wins.
    components: tuple[str, ...] = ()
    #: cdetopo (CDE022) TTL-soundness scope: where stored TTLs must only
    #: ever count down (honest caches never extend a TTL; the deliberate
    #: misbehaviour model carries a justified suppression).
    ttl_paths: tuple[str, ...] = ("repro/cache/", "repro/resolver/")
    #: Rule IDs disabled globally.
    disable: tuple[str, ...] = ()

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Config from ``[tool.cdelint]``; defaults when absent."""
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        section = data.get("tool", {}).get("cdelint", {})
        return cls.from_mapping(section)

    @classmethod
    def from_mapping(cls, section: dict[str, Any]) -> "LintConfig":
        known = {f.name for f in fields(cls)}
        overrides: dict[str, Any] = {}
        for raw_key, value in section.items():
            key = raw_key.replace("-", "_")
            if key not in known:
                raise ValueError(f"unknown [tool.cdelint] key: {raw_key!r}")
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise ValueError(
                    f"[tool.cdelint] {raw_key!r} must be a list of strings"
                )
            overrides[key] = tuple(value)
        return replace(cls(), **overrides)

    def layer_of(self) -> dict[str, int]:
        """Package name -> layer index (bottom = 0) from :attr:`layers`."""
        mapping: dict[str, int] = {}
        for index, group in enumerate(self.layers):
            for package in group.split():
                mapping[package] = index
        return mapping

    def config_hash(self) -> str:
        """Stable digest of this config, for incremental-cache keying."""
        payload = json.dumps(asdict(self), sort_keys=True, default=list)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
