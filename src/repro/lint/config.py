"""cdelint configuration, loadable from ``[tool.cdelint]`` in pyproject.toml.

Every scope knob is a tuple of posix path fragments matched against the
*end* of a checked file's path (a trailing ``/`` marks a directory
fragment matched anywhere in the path).  Suffix matching keeps the config
valid whether the linter runs from the repo root, a subdirectory, or on
absolute paths.
"""

from __future__ import annotations

import hashlib
import json
import tomllib
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any


def path_matches(path: str, pattern: str) -> bool:
    """Whether posix ``path`` falls under ``pattern``.

    ``"repro/net/clock.py"`` matches by suffix; ``"repro/study/"``
    (trailing slash) matches any path with that directory fragment.
    """
    path = "/" + path.lstrip("/")
    pattern = pattern.strip("/")
    if pattern.endswith(".py"):
        return path.endswith("/" + pattern)
    return ("/" + pattern + "/") in path


def path_matches_any(path: str, patterns: tuple[str, ...]) -> bool:
    return any(path_matches(path, pattern) for pattern in patterns)


@dataclass(frozen=True)
class LintConfig:
    """Scopes and allow-lists for the rule set (see docs/STATIC_ANALYSIS.md)."""

    #: Files/directories never linted.
    exclude: tuple[str, ...] = ()
    #: The only files allowed to touch the wall clock (CDE001).
    wallclock_allow: tuple[str, ...] = ("repro/net/clock.py",)
    #: The only files allowed to use global/unseeded randomness (CDE002).
    rng_allow: tuple[str, ...] = ("repro/net/rng.py",)
    #: Result paths where unordered iteration leaks into output (CDE003).
    ordered_paths: tuple[str, ...] = (
        "repro/study/", "repro/core/", "repro/server/",
    )
    #: ``path::function`` shard-worker entry points (CDE004).
    #: ``run_shard`` reaches the engine through a lazy import (the engine
    #: imports parallel for its task types), so the lane entry points are
    #: listed explicitly.
    shard_entries: tuple[str, ...] = (
        "repro/study/parallel.py::run_shard",
        "repro/study/engine.py::ShardLane.run_to_completion",
        "repro/study/engine.py::PipelinedEngine.run",
        "repro/study/measurement.py::measure_population",
        # measure_population reaches these through the MEASURES dict (a
        # variable call the graph cannot resolve), so the per-technique
        # measurers are shard entry points in their own right.
        "repro/study/measurement.py::measure_direct",
        "repro/study/measurement.py::measure_via_smtp",
        "repro/study/measurement.py::measure_via_browser",
    )
    #: ``path::qualname`` roots whose call graphs must stay effect-free
    #: (CDE007): the shard worker plus the fault/retry decision paths.
    effect_roots: tuple[str, ...] = (
        "repro/study/parallel.py::run_shard",
        "repro/net/faults.py::FaultInjector.decide",
        "repro/core/resilient.py::RetryPolicy.delay_with_jitter",
        "repro/core/resilient.py::RetryPolicy.backoff",
        "repro/core/prober.py::DirectProber._query_resilient",
        "repro/resolver/stub.py::StubResolver._transact",
    )
    #: The architecture DAG (CDE008), bottom layer first; names within one
    #: entry (space-separated) form a group that may import one another.
    layers: tuple[str, ...] = (
        "dns", "net", "cache resolver server", "core client", "study", "cli",
    )
    #: Packages whose public API must be fully annotated (CDE006).
    typed_paths: tuple[str, ...] = (
        "repro/study/", "repro/core/", "repro/server/", "repro/lint/",
    )
    #: CDE010 timing-taint sources (attribute/call patterns; the call
    #: table is single-sourced with the CDE001 CLOCK leaves — see
    #: ``repro.lint.taint``).  Attribute patterns must end with a
    #: candidate-universe suffix to be tracked in summaries.
    timing_sources: tuple[str, ...] = (
        "clock.now", ".rtt", ".dns_rtt",
        "time.time", "time.monotonic", "time.perf_counter",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    )
    #: CDE010 counting/export sinks: a timing value reaching any of these
    #: callees unclassified is a finding.  PerfCounters/ShardPerf are
    #: deliberately absent — they are the sanctioned wall-time telemetry.
    timing_sinks: tuple[str, ...] = (
        "CacheCountEstimate", "estimate_from_occupancy",
        "PlatformMeasurement", "measurement_to_dict",
        "measurements_to_dict", "report_to_dict", "table1_to_dict",
    )
    #: CDE010 sanitizers: the hit/miss classification boundary.  A value
    #: crossing one of these calls becomes a classification, not a time.
    timing_sanitizers: tuple[str, ...] = (
        "LatencyClassifier.fit", "is_miss", "split_bimodal",
    )
    #: ``path::qualname`` shard-merge entry points (CDE011): code
    #: reachable from these but NOT from :attr:`shard_entries` handles
    #: rows from many worlds and must not touch world-scoped state.
    merge_entries: tuple[str, ...] = (
        "repro/study/parallel.py::run_parallel_measurement",
        "repro/study/parallel.py::measure_population_parallel",
    )
    #: Shard-spec constructors (CDE012): fork-unsafe resources must not
    #: flow into these (specs are pickled across process boundaries).
    shard_spec_types: tuple[str, ...] = ("ShardTask", "WorldConfig")
    #: Files whose module-level mutable globals are sanctioned for shard
    #: use (CDE012) — deterministic value-interning memoisation (the name
    #: intern table and the per-name wire-encode cache: entries depend
    #: only on their keys, so cross-lane sharing cannot change output),
    #: plus the linter's own import-time rule registry (never on a shard
    #: path; it only appears reachable through simple-name call binding).
    shard_state_allow: tuple[str, ...] = ("repro/dns/name.py",
                                          "repro/dns/wire.py",
                                          "repro/lint/")
    #: Probe-path scopes (CDE013): except handlers here must not swallow
    #: probe-failure history.
    probe_paths: tuple[str, ...] = ("repro/core/",)
    #: Exception types whose *silent* swallowing on a probe path loses
    #: the degradation signal (CDE013).
    probe_error_types: tuple[str, ...] = (
        "ProbeFailure", "QueryTimeout", "ResolutionError",
    )
    #: Exception types carrying AttemptRecord history (CDE013): catching
    #: one without using or re-raising it discards the history.
    probe_history_types: tuple[str, ...] = ("ProbeFailure",)
    #: cdesync (CDE015) RNG-callable table: ``name=method`` maps a call
    #: whose resolved chain *ends* in ``name`` to a canonical RNG method
    #: token.  ``randbelow`` is the canonical form of the rejection-
    #: sampling idiom (``randrange``/``randint`` and folded
    #: ``getrandbits`` retry loops all draw it).
    trace_rng_callables: tuple[str, ...] = (
        "random=random", "gauss=gauss", "uniform=uniform",
        "choice=choice", "shuffle=shuffle", "getrandbits=getrandbits",
        "randrange=randbelow", "randint=randbelow",
        "rng_random=random", "rng_gauss=gauss",
        "prober_randrange=randbelow", "prober_getrandbits=getrandbits",
        "egress_getrandbits=getrandbits", "sel_state=getrandbits",
    )
    #: cdesync container attributes: a call whose resolved chain passes
    #: *through* one of these is a container read/helper and emits no
    #: trace token (mutations still label by the container attribute).
    #: ``sel_state`` doubles as the fused selector scratch slot (its memo
    #: is a deterministic cache of a pure hash, so its mutations are
    #: unobservable by design).
    trace_containers: tuple[str, ...] = (
        "_entries", "_rrsets", "_by_qname", "_by_suffix", "_timestamps",
        "_frontend_table", "_marks", "_load", "sel_state", "corridor",
        "suffix_tails",
    )
    #: cdesync observable state attributes (underscore-stripped): only
    #: mutations of these labels appear in canonical traces, and a write
    #: through a :attr:`trace_containers` slot is never observable
    #: regardless of label.  ``_now`` is always observable (the clock
    #: token) and need not be listed.
    trace_state_attrs: tuple[str, ...] = (
        "hits", "misses", "insertions", "evictions", "expirations",
        "queries", "cache_hits", "cache_misses", "upstream_queries",
        "failures", "frontend_collapsed", "prefetches", "queries_sent",
        "messages_sent", "messages_delivered", "requests_lost",
        "responses_lost", "timeouts", "retransmissions", "faults_injected",
        "next", "sequence", "last_used",
    )
    #: cdesync replica bindings beyond the in-source ``# cdelint:
    #: replica-of=`` markers: ``path-suffix::qualname=dotted.original``.
    replicas: tuple[str, ...] = ()
    #: Replica bindings to *canonicalize but not check* (CDE015): the
    #: pair still collapses to a sync token inside other checked pairs,
    #: recording equivalence as an assumption rather than a proof.
    replicas_assume: tuple[str, ...] = ()
    #: Rule IDs disabled globally.
    disable: tuple[str, ...] = ()

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Config from ``[tool.cdelint]``; defaults when absent."""
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        section = data.get("tool", {}).get("cdelint", {})
        return cls.from_mapping(section)

    @classmethod
    def from_mapping(cls, section: dict[str, Any]) -> "LintConfig":
        known = {f.name for f in fields(cls)}
        overrides: dict[str, Any] = {}
        for raw_key, value in section.items():
            key = raw_key.replace("-", "_")
            if key not in known:
                raise ValueError(f"unknown [tool.cdelint] key: {raw_key!r}")
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise ValueError(
                    f"[tool.cdelint] {raw_key!r} must be a list of strings"
                )
            overrides[key] = tuple(value)
        return replace(cls(), **overrides)

    def layer_of(self) -> dict[str, int]:
        """Package name -> layer index (bottom = 0) from :attr:`layers`."""
        mapping: dict[str, int] = {}
        for index, group in enumerate(self.layers):
            for package in group.split():
                mapping[package] = index
        return mapping

    def config_hash(self) -> str:
        """Stable digest of this config, for incremental-cache keying."""
        payload = json.dumps(asdict(self), sort_keys=True, default=list)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
