"""CDE008 — the architecture layering contract.

The reproduction is layered so that measurement code can be audited
bottom-up:

    dns  →  net  →  cache / resolver / server  →  core / client
         →  study  →  cli

An arrow means "may be imported by"; a package may import its own layer
and anything *below* it, never above.  ``repro.lint`` is fully isolated:
it imports nothing from the rest of ``repro`` and nothing imports it
(the linter must stay runnable on a broken tree).  ``repro/__init__.py``
is the public facade and is exempt.

Imports inside ``if TYPE_CHECKING:`` blocks are exempt — annotations may
reference upper layers without creating a runtime dependency.  Runtime
imports are flagged wherever they appear, including function-local
"lazy" imports: deferring an upward import hides the cycle, it does not
remove it.

The layer order comes from ``[tool.cdelint] layers`` (bottom first;
space-separated names within one entry form a group that may import one
another), so the contract lives next to the code it governs.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..callgraph import ImportRecord, ModuleSummary
from ..findings import Finding
from ..registry import ProjectContext, Rule, register

LINT_PACKAGE = "lint"


def package_of(rel: str) -> Optional[str]:
    """The first-level ``repro`` subpackage of a rel path, or ``None``.

    Matched on the *last* ``repro/`` segment so fixture trees like
    ``tests/fixtures/lint/x/repro/dns/mod.py`` resolve the same way the
    real tree does.  Files directly under ``repro/`` (the facade) return
    ``""``.
    """
    parts = rel.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            remainder = parts[index + 1:]
            if not remainder:
                return None
            if len(remainder) == 1:
                return ""  # repro/<module>.py — the facade level
            return remainder[0]
    return None


def resolve_import(rel: str, record: ImportRecord) -> Optional[str]:
    """Absolute dotted target of an import record, or ``None``.

    Relative imports are resolved against the module's position under
    the last ``repro/`` segment of its path.
    """
    if record.level == 0:
        return record.module or None
    parts = rel.split("/")
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            anchor = index
            break
    if anchor is None:
        return None
    # Containing package of the module; for an __init__.py this is the
    # package itself, which is exactly what level-1 resolves against.
    package = parts[anchor:-1]
    hops = record.level - 1
    if hops > len(package) - 1:
        return None  # escapes the repro tree
    base = package[:len(package) - hops] if hops else package
    target = ".".join(base)
    if record.module:
        target = f"{target}.{record.module}"
    return target


def _target_package(target: str) -> Optional[str]:
    """First-level ``repro`` subpackage of a dotted import target."""
    parts = target.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ""
    return parts[1]


@register
class LayeringRule(Rule):
    rule_id = "CDE008"
    name = "layering"
    summary = "runtime import that violates the architecture DAG"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        layer_of = ctx.config.layer_of()
        for rel in sorted(ctx.summaries):
            summary = ctx.summaries[rel]
            package = package_of(rel)
            if package is None or package == "":
                continue  # outside repro, or the facade — exempt
            for record in summary.imports:
                finding = self._check_import(
                    rel, package, record, layer_of)
                if finding is not None:
                    yield finding

    def _check_import(
        self, rel: str, package: str, record: ImportRecord,
        layer_of: dict[str, int],
    ) -> Optional[Finding]:
        if record.type_checking:
            return None
        target = resolve_import(rel, record)
        if target is None:
            return None
        target_package = _target_package(target)
        if target_package is None or target_package == package:
            return None
        if package == LINT_PACKAGE:
            return self.finding_at(
                rel, record.line, record.col,
                f"repro.lint must not import from the rest of repro "
                f"(runtime import of {target}) — the linter stays runnable "
                f"on a broken tree",
            )
        if target_package == LINT_PACKAGE:
            return self.finding_at(
                rel, record.line, record.col,
                f"nothing imports repro.lint at runtime "
                f"(import of {target} from repro.{package})",
            )
        if target_package == "":
            return None  # bare "repro" facade import — not layered
        source_layer = layer_of.get(package)
        target_layer = layer_of.get(target_package)
        if source_layer is None or target_layer is None:
            return None  # package outside the configured DAG
        if target_layer <= source_layer:
            return None
        return self.finding_at(
            rel, record.line, record.col,
            f"runtime import of {target} breaks the architecture DAG: "
            f"repro.{package} (layer {source_layer}) may not depend on "
            f"repro.{target_package} (layer {target_layer}) — "
            f"see docs/ARCHITECTURE.md",
        )
