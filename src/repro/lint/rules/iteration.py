"""CDE003 — no unordered iteration on result paths.

Invariant: iteration order must never leak into measurement rows.  A
``for`` loop (or comprehension) over a ``set`` produces rows whose order
depends on hash seeding and insertion history — the classic way a
refactor silently reorders an exported table.  Inside the configured
result paths (``study/``, ``core/``, ``server/`` by default) iteration
over a set-valued expression must go through ``sorted(...)``.

Detection is syntactic: set literals/comprehensions, ``set()`` /
``frozenset()`` calls, set-operator results, local names bound or
annotated as sets, and calls to project functions whose *return
annotation* is a set type (collected project-wide).  Membership tests and
aggregations (``in``, ``len``, ``sum`` …) are not iteration and are not
flagged; ``list()`` / ``tuple()`` / ``enumerate()`` wrappers are unwrapped
because they preserve the unordered underlying order.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import is_set_expression, iter_function_defs, local_set_names
from ..config import path_matches_any
from ..findings import Finding
from ..module import ModuleInfo
from ..registry import ProjectContext, Rule, register

#: Wrappers that preserve (unordered) iteration order of their argument.
ORDER_PRESERVING = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def _unwrap(node: ast.expr) -> ast.expr:
    while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
           and node.func.id in ORDER_PRESERVING and node.args):
        node = node.args[0]
    return node


@register
class UnorderedIterationRule(Rule):
    rule_id = "CDE003"
    name = "unordered-iteration"
    summary = "set iteration on result paths leaks order into measurements"

    def check_module(
        self, module: ModuleInfo, ctx: ProjectContext
    ) -> Iterator[Finding]:
        if not path_matches_any(module.rel, ctx.config.ordered_paths):
            return
        set_returning = ctx.set_returning_callables
        # Functions first (so findings get their qualname), module scope
        # last to catch import-time loops; ``seen`` dedups the overlap.
        scopes: list[tuple[ast.AST, str]] = [
            (func, qualname)
            for func, qualname, _ in iter_function_defs(module.tree)
        ]
        scopes.append((module.tree, ""))
        seen: set[int] = set()
        for scope, symbol in scopes:
            names = local_set_names(scope, set_returning)
            for node in ast.walk(scope):
                iterables: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iterables.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    iterables.extend(gen.iter for gen in node.generators)
                for iterable in iterables:
                    target = _unwrap(iterable)
                    if id(target) in seen:
                        continue
                    # Claimed by the innermost scope that examines it —
                    # whatever the verdict — so the module-scope pass
                    # cannot re-judge it with other functions' names.
                    seen.add(id(target))
                    if is_set_expression(target, names, set_returning):
                        yield self.finding(
                            module, iterable,
                            "iteration over a set — wrap in sorted(...) so "
                            "row order cannot depend on hashing or "
                            "insertion history",
                            symbol=symbol,
                        )


def collect_set_returning(modules: list[ModuleInfo]) -> frozenset[str]:
    """Simple names of callables annotated to return a set, project-wide."""
    from ..astutil import annotation_is_set

    names: set[str] = set()
    for module in modules:
        for func, _qualname, _is_method in iter_function_defs(module.tree):
            returns: Optional[ast.expr] = func.returns
            if annotation_is_set(returns):
                names.add(func.name)
    return frozenset(names)
