"""CDE020: components must declare what they do to source addresses.

The CDE maps ingress identities to caches by *address*: who asked, who
forwarded, which egress face queried the nameserver.  Transparent
forwarders spoof-preserve the client's source; NATed pools and
recursives rewrite it.  Both behaviours bias the count unless the
measurement knows about them — so both must be declared, and the
declaration must match the code.
"""

from __future__ import annotations

from typing import Iterator

from ..config import path_matches_any
from ..findings import Finding
from ..registry import ProjectContext, Rule, register
from ..topo import (COMPONENT_ATTRS, COMPONENT_ROLES, effective_contract,
                    owning_class, parse_component_table)

#: What each site kind does, for undeclared-component messages.
_ACTIONS = {
    "spoof-forward": "spoof-preserves a client source address into an "
                     "upstream send",
    "rewrite-forward": "rewrites the upstream source address to its own "
                       "identity",
    "log-source": "records a received source address into a query log",
    "log-rewrite": "records a rewritten source address into a query log",
}


@register
class AddressProvenanceRule(Rule):
    """Address rewrites and spoof-preserves must carry a matching contract.

    **Rationale.**  Every CDE technique (paper §IV) infers cache
    topology from addresses: the client address a platform sees selects
    the cache, the egress address a nameserver sees identifies the
    platform.  A component that forwards the client's source address
    upstream unchanged (a *transparent forwarder* — ~26% of open DNS
    speakers) or substitutes its own identity (recursives, NAT pools)
    changes what both ends observe.  Building such components without
    declaring them turns every census row they touch into a silent bias.

    Components declare contracts with ``# cdelint:
    component=<role>(attrs)`` on the class (roles: ``recursive``,
    ``forwarder``, ``transparent-forwarder``, ``frontend``,
    ``nat-pool``, ``anycast-ingress``, ``authoritative``, ``client``,
    ``cache``), or a ``[tool.cdelint] components`` table entry
    (``ClassName=role(attrs)``).  This rule proves, for every class in
    ``component-paths``:

    * a spoof-preserved source (a parameter flowing into an upstream
      ``query`` send) requires the ``transparent-forwarder`` role or the
      ``spoofs-source`` attribute;
    * a rewritten source (a ``self``-rooted address in the send)
      requires ``rewrites-source``;
    * a received source address recorded into a ``*LogEntry`` requires
      ``logs-source``, and a *rewritten* address must never reach a
      query log — the measurement plane needs the wire source;
    * unknown roles/attributes and undeclared classes with address
      behaviour are findings.

    **Example (bad).** ::

        class Relay:                          # no component marker
            def handle_message(self, message, src_ip, network):
                return network.query(src_ip, self.upstream_ip, message)

    **Fix guidance.**  Declare the class (``# cdelint:
    component=transparent-forwarder(spoofs-source)``) directly above or
    on its ``class`` line, or add a ``components`` table entry.  Every
    finding carries a def-use witness chain (``name@line`` hops) from
    the address origin to the send or log sink.
    """

    rule_id = "CDE020"
    name = "address-provenance"
    summary = ("components that rewrite or spoof-preserve source addresses "
               "must declare the matching role attribute")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        table = parse_component_table(ctx.config.components)
        for rel in sorted(ctx.summaries):
            if not path_matches_any(rel, ctx.config.component_paths):
                continue
            summary = ctx.summaries[rel]
            components = summary.components
            for name in sorted(components):
                decl = components[name]
                role, attrs = effective_contract(decl, table)
                if role and role not in COMPONENT_ROLES:
                    yield self.finding_at(
                        rel, decl.line, 0,
                        f"unknown component role '{role}' on '{name}' "
                        f"(known: {', '.join(sorted(COMPONENT_ROLES))})",
                        symbol=name)
                for attr in attrs:
                    if attr not in COMPONENT_ATTRS:
                        yield self.finding_at(
                            rel, decl.line, 0,
                            f"unknown component attribute '{attr}' on "
                            f"'{name}' (known: "
                            f"{', '.join(sorted(COMPONENT_ATTRS))})",
                            symbol=name)
            for func in summary.functions:
                owner = owning_class(func.qualname, components)
                if owner is None:
                    continue
                role, attrs = effective_contract(components[owner], table)
                for site in func.addr:
                    if site.kind not in _ACTIONS:
                        continue    # register sites carry no contract
                    witness = " -> ".join(site.hops)
                    if not role:
                        yield self.finding_at(
                            rel, site.line, site.col,
                            f"undeclared component: '{owner}' "
                            f"{_ACTIONS[site.kind]} (witness: {witness}) "
                            f"— declare it with '# cdelint: "
                            f"component=<role>(<attrs>)' or a "
                            f"[tool.cdelint] components entry",
                            symbol=func.qualname)
                        continue
                    if site.kind == "spoof-forward" and not (
                            role == "transparent-forwarder"
                            or "spoofs-source" in attrs):
                        yield self.finding_at(
                            rel, site.line, site.col,
                            f"component '{owner}' ({role}) spoof-preserves "
                            f"'{site.src}' into an upstream send without "
                            f"the transparent-forwarder role or the "
                            f"spoofs-source attribute (witness: {witness})",
                            symbol=func.qualname)
                    elif site.kind == "rewrite-forward" and (
                            "rewrites-source" not in attrs):
                        yield self.finding_at(
                            rel, site.line, site.col,
                            f"component '{owner}' ({role}) rewrites the "
                            f"upstream source to '{site.src}' without the "
                            f"rewrites-source attribute "
                            f"(witness: {witness})",
                            symbol=func.qualname)
                    elif site.kind == "log-source" and (
                            "logs-source" not in attrs):
                        yield self.finding_at(
                            rel, site.line, site.col,
                            f"component '{owner}' ({role}) records "
                            f"'{site.src}' into {site.dest} without the "
                            f"logs-source attribute (witness: {witness})",
                            symbol=func.qualname)
                    elif site.kind == "log-rewrite":
                        yield self.finding_at(
                            rel, site.line, site.col,
                            f"component '{owner}' ({role}) writes its own "
                            f"rewritten address '{site.src}' into "
                            f"{site.dest} — measurement logs must record "
                            f"the wire source address "
                            f"(witness: {witness})",
                            symbol=func.qualname)
