"""CDE012: shard workers must not capture mutable or fork-unsafe state.

Two ways a shard can smuggle cross-shard state past the CDE004 purity
check, both invisible to effect analysis:

* **Module-global capture** — code reachable from ``run_shard`` reads a
  module-level mutable container that some function mutates at runtime.
  Under the in-process executor every shard shares that object; under
  the process pool each worker forks its own copy — either way, rows
  can depend on shard execution order.
* **Fork-unsafe resources in specs** — a live handle (socket, lock,
  open file, ``random.Random`` instance, a memoised ``*.stream`` RNG)
  flowing into a ``ShardTask`` / ``WorldConfig`` constructor.  Specs
  cross process boundaries by pickling; a live resource either fails to
  pickle or silently decouples from its origin.

Value-interning memoisation of immutable objects (the ``DnsName`` intern
table) is deterministic and shard-safe; such files are carved out via
``[tool.cdelint] shard-state-allow``.
"""

from __future__ import annotations

from typing import Iterator

from ..config import path_matches_any
from ..findings import Finding
from ..registry import ProjectContext, Rule, register
from ..taint import FORK_UNSAFE_CALLS, TaintSpec, propagate


@register
class CaptureSafetyRule(Rule):
    """A shard worker is a pure function of its ``ShardTask``.

    **Rationale.**  The parallel engine promises identical rows for any
    worker count.  Module-level mutable state reachable from the worker
    breaks that promise silently (shared under ``workers=0``, forked
    under a pool); a live resource inside a pickled spec breaks it
    loudly or — worse — quietly after the fork.

    **Example (bad).** ::

        _seen: dict[str, int] = {}          # module level

        def probe_once(name):               # reachable from run_shard
            _seen[name] = _seen.get(name, 0) + 1   # cross-shard state

    **Fix guidance.**  Thread the state through the ``ShardTask`` (or a
    local), or make the global immutable.  For resources, construct them
    *inside* the worker from the spec's plain values (profile names,
    seeds) as ``WorldConfig`` does for fault injectors.  Deterministic
    intern tables of immutable values may be carved out via
    ``[tool.cdelint] shard-state-allow``; spec constructors are
    configured as ``shard-spec-types``.
    """

    rule_id = "CDE012"
    name = "capture-safety"
    summary = ("shard-reachable code must not use runtime-mutated module "
               "globals or put fork-unsafe resources into shard specs")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        yield from self._check_global_capture(ctx)
        yield from self._check_spec_resources(ctx)

    def _check_global_capture(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        shard_keys = [key for spec in ctx.config.shard_entries
                      for key in graph.resolve_entry(spec)]
        chains = graph.reachable_with_chains(shard_keys)

        # a global only counts as a hazard if some function in its module
        # mutates it at runtime (import-time-only tables are constants)
        mutated: dict[tuple[str, str], str] = {}
        for rel in graph.rels():
            summary = graph.summary_for(rel)
            assert summary is not None
            for func in summary.functions:
                for name in func.global_mutations:
                    mutated.setdefault((rel, name), func.qualname)

        for key in sorted(chains):
            node = graph.nodes[key]
            if path_matches_any(node.rel, ctx.config.shard_state_allow):
                continue
            module = graph.summary_for(node.rel)
            if module is None:
                continue
            chain = " -> ".join(chains[key])
            touched = sorted(set(node.summary.global_reads)
                             | set(node.summary.global_mutations))
            for name in touched:
                writer = mutated.get((node.rel, name))
                if writer is None:
                    continue
                def_line = module.mutable_globals.get(name, node.line)
                verb = ("mutates" if name in node.summary.global_mutations
                        else "reads")
                yield self.finding_at(
                    node.rel, node.line, node.col,
                    f"shard-reachable {node.qualname} {verb} module-level "
                    f"mutable '{name}' (defined line {def_line}, mutated by "
                    f"{writer}) — shard workers must not share cross-shard "
                    f"mutable state (reached via {chain})",
                    symbol=node.qualname,
                )

    def _check_spec_resources(self, ctx: ProjectContext) -> Iterator[Finding]:
        spec = TaintSpec(
            sources=tuple(sorted(FORK_UNSAFE_CALLS)),
            sinks=ctx.config.shard_spec_types,
            sanitizers=(),
        )
        for hit in propagate(ctx.graph, spec).hits():
            yield self.finding_at(
                hit.rel, hit.line, hit.col,
                f"fork-unsafe resource ({hit.source}, created at line "
                f"{hit.source_line}) flows into shard spec {hit.sink}() — "
                f"specs are pickled across processes and must carry only "
                f"plain values (flow: {hit.render_chain()})",
                symbol=hit.qualname,
            )
