"""CDE010: timing-tainted values must not reach counting/export sinks.

The paper's indirect techniques (§IV-B3) count caches by *classifying*
latencies into hits and misses — the latency itself is a side channel,
never a count.  This rule enforces that boundary with dataflow: any
clock- or RTT-derived value (``clock.now`` reads, ``.rtt`` /
``.dns_rtt`` fields, the CDE001 wall-clock leaves) that flows into a
counting or export sink (``CacheCountEstimate``, ``PlatformMeasurement``,
the report serialisers) without first crossing the hit/miss classifier
(``LatencyClassifier.fit`` / ``is_miss`` / ``split_bimodal``) is a
finding, reported with its def-use witness chain.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..registry import ProjectContext, Rule, register
from ..taint import TaintSpec, propagate


@register
class TimingTaintRule(Rule):
    """Latency is a side channel, not a count.

    **Rationale.**  A raw timing value that lands in counting arithmetic
    or an exported row couples results to measurement latency — the
    output is still a plausible number, so no test catches it.  The only
    sanctioned route from a latency to a count is the hit/miss
    classifier, which turns the time into a classification.

    **Example (bad).** ::

        samples.append(result.dns_rtt)
        return CacheCountEstimate(lower_bound=samples[0], ...)

    **Example (good).** ::

        threshold, slow_count = split_bimodal(samples)   # sanitizer
        return CacheCountEstimate(lower_bound=slow_count, ...)

    **Fix guidance.**  Route the value through a configured sanitizer
    (``timing-sanitizers``), or — if the flow is genuinely sanctioned
    telemetry — add the destination to the ``timing-sinks`` carve-out or
    suppress in place with a justification.  Sources, sinks and
    sanitizers are configured under ``[tool.cdelint]`` as
    ``timing-sources`` / ``timing-sinks`` / ``timing-sanitizers``.
    """

    rule_id = "CDE010"
    name = "timing-taint"
    summary = ("clock/RTT-derived values must reach counting or export "
               "sinks only through the hit/miss classifier")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        spec = TaintSpec(
            sources=ctx.config.timing_sources,
            sinks=ctx.config.timing_sinks,
            sanitizers=ctx.config.timing_sanitizers,
        )
        for hit in propagate(ctx.graph, spec).hits():
            yield self.finding_at(
                hit.rel, hit.line, hit.col,
                f"timing value {hit.source} (read at line {hit.source_line}) "
                f"reaches counting sink {hit.sink}() without crossing the "
                f"hit/miss classifier (flow: {hit.render_chain()})",
                symbol=hit.qualname,
            )
