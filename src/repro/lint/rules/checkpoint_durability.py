"""CDE019: export writes must stay crash-atomic (.part then rename).

``census --resume`` replays the deterministic stream and skips rows the
manifest records as durable.  That contract only holds if no reader can
ever observe a half-written chunk or manifest: every file is staged to a
``.part`` name and published with an atomic ``os.replace``.  This rule
pins the pattern so a future export path cannot quietly regress resume
semantics.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..registry import ProjectContext, Rule, register


@register
class CheckpointDurabilityRule(Rule):
    """Every export-path write follows ``.part``-then-rename.

    **Rationale.**  A crash (or the census's own ``--max-rss-mb`` guard)
    can interrupt an export at any byte.  ``CensusWriter`` established
    the invariant that the directory then still holds only complete,
    manifest-recorded chunks: writes go to ``<name>.part`` and are
    published with ``os.replace``, so resume can trust everything it
    finds.  A direct ``open(path, "w")`` on that path would leave a torn
    file that resume either re-reads as corrupt or — worse — silently
    double-counts.

    **Example (bad).** ::

        def _flush_chunk(self):
            with open(self.path, "wb") as handle:   # torn on crash
                handle.write(blob)

    **Example (good).** ::

        part = path + ".part"
        with open(part, "wb") as handle:
            handle.write(blob)
        os.replace(part, path)                      # atomic publish

    **Fix guidance.**  Stage to a ``.part`` sibling and publish with
    ``os.replace`` (same filesystem, atomic on POSIX); delete stray
    ``.part`` files on startup like ``CensusWriter._clear_directory``
    does.  Read-mode opens are exempt.  Export entry points are
    configured as ``[tool.cdelint] export-entries``.
    """

    rule_id = "CDE019"
    name = "checkpoint-durability"
    summary = ("write-mode open() reachable from an export entry must "
               "stage to .part and publish with an atomic rename")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        entries = [key for spec in ctx.config.export_entries
                   for key in graph.resolve_entry(spec)]
        chains = graph.reachable_with_chains(entries)
        for key in sorted(chains):
            node = graph.nodes[key]
            summary = node.summary
            for site in summary.opens:
                if site.part and summary.renames:
                    continue
                chain = " -> ".join(chains[key])
                if not site.part:
                    reason = ("writes the final path directly instead of "
                              "staging to a '.part' sibling")
                else:
                    reason = ("stages to '.part' but never publishes it "
                              "with os.replace/os.rename")
                yield self.finding_at(
                    node.rel, site.line, site.col,
                    f"non-atomic checkpoint write: open(..., "
                    f"{site.mode!r}) in {node.qualname} (reached via "
                    f"{chain}) {reason} — a crash here corrupts the "
                    f"resume contract",
                    symbol=node.qualname,
                )
