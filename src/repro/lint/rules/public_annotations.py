"""CDE006 — public APIs on measurement paths are fully annotated.

Invariant: the strict mypy gate (``[tool.mypy]`` in pyproject.toml) can
only hold the line if annotations exist to check.  Every *public*
function or method (name without a leading underscore, not nested inside
another function) in the configured packages must annotate every
parameter (``self``/``cls`` excepted, ``*args``/``**kwargs`` included)
and its return type.  This rule is the dependency-free mirror of
``disallow_incomplete_defs`` so the gate also runs where mypy is not
installed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import path_matches_any
from ..findings import Finding
from ..module import ModuleInfo
from ..registry import ProjectContext, Rule, register


def _missing_annotations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    args = func.args
    missing: list[str] = []
    positional = args.posonlyargs + args.args
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    missing.extend(
        arg.arg for arg in args.kwonlyargs if arg.annotation is None
    )
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if func.returns is None:
        missing.append("return")
    return missing


@register
class PublicAnnotationsRule(Rule):
    rule_id = "CDE006"
    name = "public-annotations"
    summary = "un-annotated public API escapes the strict typing gate"

    def check_module(
        self, module: ModuleInfo, ctx: ProjectContext
    ) -> Iterator[Finding]:
        if not path_matches_any(module.rel, ctx.config.typed_paths):
            return
        for func, qualname, is_method in self._public_defs(module.tree):
            missing = _missing_annotations(func)
            if missing:
                yield self.finding(
                    module, func,
                    f"public {'method' if is_method else 'function'} "
                    f"{func.name}() missing annotations: "
                    f"{', '.join(missing)}",
                    symbol=qualname,
                )

    def _public_defs(self, tree: ast.Module) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, bool]]:
        """Public defs at module or class level (not nested in functions)."""

        def visit(node: ast.AST, prefix: str, in_class: bool) -> Iterator[
                tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, bool]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if child.name.startswith("_"):
                        continue
                    qualname = (f"{prefix}.{child.name}" if prefix
                                else child.name)
                    yield child, qualname, in_class
                elif isinstance(child, ast.ClassDef):
                    if child.name.startswith("_"):
                        continue
                    qualname = (f"{prefix}.{child.name}" if prefix
                                else child.name)
                    yield from visit(child, qualname, True)

        yield from visit(tree, "", False)
