"""CDE022: stored TTLs only ever count down.

The CDE's cache-discovery probes (paper §IV) infer hit/miss — and from
it cache identity — from the TTL a cache serves: a hit returns the
stored TTL *decremented* by the entry's age.  Cache or policy code that
extends a stored TTL (a grace-period ``ttl += grace``, a ``max()`` fold
that can raise the remaining lifetime, a configured rewrite) makes a
stale entry look fresh and silently mis-classifies probes.
"""

from __future__ import annotations

from typing import Iterator

from ..config import path_matches_any
from ..findings import Finding
from ..registry import ProjectContext, Rule, register


@register
class TtlSoundnessRule(Rule):
    """TTL arithmetic in cache/resolver code must be decrement-only.

    **Rationale.**  Every enumeration technique the reproduction
    implements reads TTLs as a clock that runs *down*: ``remaining =
    stored - age``.  The moment policy code can move a TTL up —
    serve-stale grace windows, refresh-on-read ``max()`` folds,
    configured rewrites — the observed TTL stops identifying the entry
    that produced it, and cache counting drifts with no failing test.
    This rule proves, per site in ``ttl-paths``:

    * no augmented ``+=``/``*=`` on a TTL-ish target (``*ttl*``,
      ``*expires*``);
    * no assignment whose right side additively references the target
      or folds it through ``max(...)``;
    * no ``with_ttl(...)`` rewrite to a constant or a ``self``-configured
      value (clamps computed from the record's own TTL stay clean).

    **Example (bad).** ::

        entry.ttl += grace_period          # serve-stale: TTL goes up
        cache.ttl = max(cache.ttl, floor)  # refresh fold

    **Fix guidance.**  Compute remaining lifetime by subtraction from
    the stored expiry (``max(0, int(expires_at - now))`` counts *down*
    and stays clean) and clamp only at insertion time.  The deliberate
    misbehaviour model (``resolver/misbehaving.py``) documents its TTL
    rewrite with a justified line suppression — that is the one
    sanctioned exception, and the CDE014 audit keeps it honest.
    """

    rule_id = "CDE022"
    name = "ttl-soundness"
    summary = ("cache/policy code must never extend a stored TTL "
               "(decrement-only arithmetic, proven per site)")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        for rel in sorted(ctx.summaries):
            if not path_matches_any(rel, ctx.config.ttl_paths):
                continue
            summary = ctx.summaries[rel]
            for func in summary.functions:
                for site in func.ttls:
                    if site.kind == "extend":
                        message = (
                            f"TTL arithmetic may extend a stored TTL: "
                            f"'{site.target}' via {site.detail} — cache "
                            f"TTLs must only count down")
                    else:
                        message = (
                            f"stored TTL rewritten via with_ttl "
                            f"({site.detail}) — honest caches serve the "
                            f"decremented TTL; deliberate misbehaviour "
                            f"needs a justified suppression")
                    yield self.finding_at(rel, site.line, site.col,
                                          message, symbol=func.qualname)
