"""CDE009 — RNG stream-label hygiene.

The seed-derivation scheme (``derive_seed`` / ``RngFactory.stream``)
gives every consumer its own deterministic stream, keyed by a string
label.  The scheme's guarantee — adding a draw in one component never
perturbs another — holds only while each label has exactly one drawing
call site: ``RngFactory`` memoises streams, so two call sites sharing a
label receive the *same* ``random.Random`` and their draws interleave in
execution order, which silently couples the two components.

This rule collects every statically-labelled ``*.stream("label")`` and
``make_rng(seed, "label")`` call site project-wide (f-string labels are
normalised to ``{}`` templates, so two sites building
``f"platform/{name}"`` collide too, as they should — the same runtime
name would alias them).  Any label drawn from two or more distinct call
sites is reported at every site except the first, pointing back at the
first so the fix (split the labels, or thread one stream through) is
obvious.
"""

from __future__ import annotations

from typing import Iterator

from ..callgraph import MODULE_SCOPE
from ..findings import Finding
from ..registry import ProjectContext, Rule, register


@register
class RngStreamHygieneRule(Rule):
    rule_id = "CDE009"
    name = "rng-stream-hygiene"
    summary = "same RNG stream label drawn from two call sites"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        #: label -> sorted unique (rel, line, col, owner qualname) sites
        sites: dict[str, set[tuple[str, int, int, str]]] = {}
        for rel in sorted(ctx.summaries):
            summary = ctx.summaries[rel]
            for func in summary.functions:
                for call in func.streams:
                    sites.setdefault(call.label, set()).add(
                        (rel, call.line, call.col, func.qualname))
            for call in summary.module_streams:
                sites.setdefault(call.label, set()).add(
                    (rel, call.line, call.col, MODULE_SCOPE))

        for label in sorted(sites):
            group = sorted(sites[label])
            if len({(rel, line) for rel, line, _c, _q in group}) < 2:
                continue
            first_rel, first_line, _col, _qual = group[0]
            for rel, line, col, qualname in group[1:]:
                if (rel, line) == (first_rel, first_line):
                    continue
                yield self.finding_at(
                    rel, line, col,
                    f'RNG stream label "{label}" is also drawn at '
                    f"{first_rel}:{first_line} — streams are memoised, so "
                    f"two call sites sharing a label interleave their draws; "
                    f"give each call site its own label",
                    symbol=qualname,
                )
