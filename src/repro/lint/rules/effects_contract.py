"""CDE007 — effect contracts on measurement-critical roots.

The paper's counting techniques assume every probe is a deterministic
function of the seeded world.  That assumption has named owners: the
shard worker (``run_shard``), the fault-injection decision path
(``FaultInjector.decide``), and the retry/backoff arithmetic.  This rule
takes the configured ``effect-roots`` (``path::qualname`` specs in
``[tool.cdelint]``) and reports every CLOCK / RNG / IO / ENV leaf effect
whose definition is reachable from a root through the project call graph
— with the shortest witness chain, so the report reads as a proof.

Carve-outs mirror the per-file rules: CLOCK sites inside
``wallclock-allow`` files and RNG sites inside ``rng-allow`` files are
sanctioned (that is where the virtual clock and the seed-derivation
scheme live).  For roots that are *also* shard-purity entry points
(CDE004), ENV effects and raw ``socket`` use are CDE004's territory and
are not double-reported here.
"""

from __future__ import annotations

from typing import Iterator

from ..config import path_matches_any
from ..effects import Effect
from ..findings import Finding
from ..registry import ProjectContext, Rule, register

#: The effect axes a contracted root must not reach.  MUTATES_GLOBAL and
#: UNORDERED are tracked in signatures but owned by other rules.
CONTRACT_EFFECTS = frozenset({
    Effect.CLOCK, Effect.RNG, Effect.IO, Effect.ENV,
})


def _is_socket_label(label: str) -> bool:
    return (label == "socket" or label.startswith("socket.")
            or label == "import socket")


@register
class EffectContractRule(Rule):
    rule_id = "CDE007"
    name = "effect-contract"
    summary = "CLOCK/RNG/IO/ENV effect reachable from a contracted root"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        shard_keys = {
            key
            for spec in ctx.config.shard_entries
            for key in graph.resolve_entry(spec)
        }

        seen: set[tuple[str, int, int, str]] = set()
        for spec in ctx.config.effect_roots:
            for root in graph.resolve_entry(spec):
                signature = ctx.effects.signature_of(root)
                if not signature & CONTRACT_EFFECTS:
                    continue  # propagated signature proves the root clean
                root_name = graph.nodes[root].qualname
                skip_shard_overlap = root in shard_keys
                chains = graph.reachable_with_chains([root])
                for key in sorted(chains):
                    node = graph.nodes[key]
                    chain = " -> ".join(chains[key])
                    for site in node.effects:
                        effect = Effect(site.effect)
                        if effect not in CONTRACT_EFFECTS:
                            continue
                        if effect is Effect.CLOCK and path_matches_any(
                                node.rel, ctx.config.wallclock_allow):
                            continue
                        if effect is Effect.RNG and path_matches_any(
                                node.rel, ctx.config.rng_allow):
                            continue
                        if skip_shard_overlap and (
                                effect is Effect.ENV
                                or _is_socket_label(site.label)):
                            continue  # reported by CDE004
                        mark = (node.rel, site.line, site.col, site.label)
                        if mark in seen:
                            continue  # already reported from an earlier root
                        seen.add(mark)
                        yield self.finding_at(
                            node.rel, site.line, site.col,
                            f"{site.label} ({effect.value}) reachable from "
                            f"effect-contract root {root_name} (via {chain}) "
                            f"— contracted paths must be a deterministic "
                            f"function of the seeded world",
                            symbol=node.qualname,
                        )
