"""CDE018: the fused corridor must not allocate what it can hoist.

The pipelined engine's whole speedup is the removal of per-probe Python
overhead — the fused frames replay the structured resolver path with
attribute reads and integer bumps, not object churn.  ZDNS makes the
same point at internet scale: throughput is won by disciplined hot
paths.  This rule keeps allocation discipline machine-checked as the
corridor grows.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..registry import ProjectContext, Rule, register


def hot_path_match(rel: str, qualname: str,
                   specs: tuple[str, ...]) -> bool:
    """Whether ``rel::qualname`` falls under a ``path::qualname`` spec
    (the spec's qualname covers itself and everything nested in it)."""
    for spec in specs:
        suffix, _, func = spec.partition("::")
        if not func:
            continue
        if not ("/" + rel).endswith("/" + suffix.lstrip("/")):
            continue
        if qualname == func or qualname.startswith(func + "."):
            return True
    return False


@register
class HotLoopAllocationRule(Rule):
    """No hoistable allocations inside the per-probe fused corridor.

    **Rationale.**  Every probe of every platform runs through the fused
    frames; an allocation there is multiplied by the census's total
    query budget (tens of millions at paper scale).  The structured
    resolver may build strings and temporaries freely — the corridor
    exists precisely so the per-probe path does not.  A stray f-string
    or throwaway comprehension is invisible to the equivalence tests
    (same rows, same draws) and only shows up as a silent qps
    regression in a 466-second benchmark.

    Flagged: f-strings, ``+``/``%``/``.format`` string building on
    literals, comprehensions consumed as a call's sole argument
    (``out.extend(e for e in ...)`` — write the loop, it skips the
    generator frame), and all-constant list/set/dict displays.  *Not*
    flagged: error paths (``raise``/``assert`` subtrees are cold), row
    construction (the product of the probe, inherently per-row), and
    comprehensions bound to a name (the sanctioned bulk idiom).

    **Example (bad).** ::

        def _fused_probe(plan, qname, qtype):
            key = f"{qname}/{qtype}"          # built per probe

    **Fix guidance.**  Hoist the value to the ``_FastPlan`` built once
    per platform, intern it on the spec, or replace the builder with the
    precomputed attribute the structured path already carries.  The
    mechanical cases (placeholder-free f-strings, ``extend`` of a
    generator expression) are autofixable via ``--fix``.  Hot frames are
    configured as ``[tool.cdelint] hot-paths``.
    """

    rule_id = "CDE018"
    name = "hot-loop-allocation"
    summary = ("hoistable per-probe allocation inside the fused corridor "
               "or lane batch loops")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        for rel in sorted(ctx.summaries):
            summary = ctx.summaries[rel]
            for func in summary.functions:
                if not hot_path_match(rel, func.qualname,
                                      ctx.config.hot_paths):
                    continue
                for site in func.allocs:
                    yield self.finding_at(
                        rel, site.line, site.col,
                        f"hot-loop allocation in {func.qualname}: "
                        f"{site.detail} ({site.kind}) — hoist it out of "
                        f"the per-probe corridor or intern it on the "
                        f"plan/spec",
                        symbol=func.qualname,
                    )
