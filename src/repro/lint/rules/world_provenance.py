"""CDE011: world-scoped state must not leak into shard merge paths.

The sharded engine's correctness theorem (PR 1) is that merging rows in
spec order is equivalent to a single sequential run.  That holds because
the merge layer handles *rows* — plain data — never the live state of
any one seeded world.  A merge-path function that touches a world's RNG
streams, its ``QueryLog`` or the world object itself could mix one
world's provenance into another shard's results.

The check is scope-based: the *merge scope* is everything reachable from
the configured ``merge-entries`` minus everything reachable from the
CDE004 ``shard-entries`` (the shard worker legitimately owns its world).
Any world-source site (``SimulatedInternet(...)``, ``*.stream(...)``,
``.rng_factory`` / ``.query_log`` reads, ``fallback_rng``) inside the
merge scope is a finding, with the witness chain from the merge entry.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..registry import ProjectContext, Rule, register
from ..taint import WORLD_SOURCES, matches_any


@register
class WorldProvenanceRule(Rule):
    """Merge paths handle rows, not worlds.

    **Rationale.**  One world's RNG stream or query log is seeded,
    per-shard state.  The merge layer combines rows from *many* worlds;
    if it draws from a stream or reads a log, one shard's state
    perturbs another's merged output — and the result is still a
    plausible number, so only provenance analysis catches it.

    **Example (bad).** ::

        def merge_rows(world, shards):
            jitter = world.rng_factory.stream("merge")  # world state!
            ...

    **Fix guidance.**  Move the world-touching code into the shard
    worker (inside ``run_shard``'s call graph) and pass its *result*
    through the shard rows, or derive what you need from the
    ``ShardTask`` seed instead of a live world.  Entry points are
    configured as ``[tool.cdelint] merge-entries`` / ``shard-entries``.
    """

    rule_id = "CDE011"
    name = "world-provenance"
    summary = ("shard merge paths must not touch any world's RNG stream, "
               "QueryLog or the world object itself")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        merge_keys = [key for spec in ctx.config.merge_entries
                      for key in graph.resolve_entry(spec)]
        shard_keys = [key for spec in ctx.config.shard_entries
                      for key in graph.resolve_entry(spec)]
        merge_chains = graph.reachable_with_chains(merge_keys)
        shard_scope = set(graph.reachable_with_chains(shard_keys))
        for key in sorted(merge_chains):
            if key in shard_scope:
                continue
            node = graph.nodes[key]
            chain = " -> ".join(merge_chains[key])
            for site in node.summary.sites:
                if not matches_any(site.key, WORLD_SOURCES):
                    continue
                yield self.finding_at(
                    node.rel, site.line, site.col,
                    f"world-scoped state ({site.key}) touched in the shard "
                    f"merge scope (reached via {chain}) — merge paths "
                    f"combine rows from many worlds and must not read any "
                    f"single world's RNG/QueryLog state",
                    symbol=node.qualname,
                )
