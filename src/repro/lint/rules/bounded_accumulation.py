"""CDE017: streaming paths must not accumulate per-row state.

PR 8's streaming census holds its memory ceiling *constant* in census
size: rows flow engine → fold → chunked writer and nothing on that path
may grow with the row count.  Until now the only guard was a runtime
tracemalloc gate in a slow-marked test — one careless ``rows.append`` on
a streaming path silently reverts the repo to O(census) memory until the
next full bench run.  This rule is the static version of that gate.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Iterator, Optional

from ..findings import Finding
from ..registry import ProjectContext, Rule, register


def parse_bounded_allow(
    entries: tuple[str, ...],
) -> tuple[tuple[str, str], ...]:
    """``pattern=justification`` entries as (pattern, justification)."""
    parsed: list[tuple[str, str]] = []
    for entry in entries:
        pattern, _, justification = entry.partition("=")
        parsed.append((pattern.strip(), justification.strip()))
    return tuple(parsed)


def match_bounded_allow(site_key: str,
                        allow: tuple[tuple[str, str], ...]) -> Optional[str]:
    """The justification of the first carve-out covering ``site_key``.

    Patterns float (an implied leading ``*``), mirroring the suffix
    semantics every other path knob uses, so one table works for
    relative and absolute lint roots alike.
    """
    for pattern, justification in allow:
        if fnmatchcase(site_key, pattern) or fnmatchcase(
                site_key, "*" + pattern):
            return justification or "(no justification recorded)"
    return None


@register
class BoundedAccumulationRule(Rule):
    """Nothing reachable from a streaming entry may grow per row.

    **Rationale.**  The streaming census pipeline
    (``PipelinedEngine.stream`` → ``stream_parallel_measurement`` →
    ``run_census`` → ``CensusWriter``) promises O(1) memory in census
    size; that is what makes the paper's internet-scale enumeration
    reachable at all.  A container that gains an element per measured
    row — an ``append`` on a long-lived list, a ``setdefault`` on a
    per-row-keyed dict — breaks the ceiling while every test still
    passes, because small censuses never notice.

    The receiver's *root* decides whether the container outlives the
    per-row loop: parameter- and ``self``-rooted containers belong to a
    caller, free names live for the process, and a generator's own
    locals survive suspension across the stream.  Plain-function locals
    die with the frame (one platform's world state) and are exempt by
    construction.

    **Example (bad).** ::

        def _stream(engine):
            rows = []
            for position, row in engine.stream():
                rows.append(row)        # grows with the census
                yield position, row

    **Fix guidance.**  Keep per-row state on the row itself, drain
    buffers every turn (``ShardLane.drain_rows``), or spill to disk
    (``_run_shard_spill``).  If the growth is genuinely bounded — a ring
    buffer, a fixed label set, a buffer flushed every chunk — record the
    bound as a ``[tool.cdelint] bounded-allow`` entry
    (``pattern=justification`` matched against
    ``path::qualname::receiver``); unjustified carve-outs are a review
    smell by design.  Entry points are configured as ``stream-entries``.
    """

    rule_id = "CDE017"
    name = "unbounded-accumulation"
    summary = ("container growth reachable from a streaming entry point "
               "must be justified by a bound (bounded-allow) or removed")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        entries = [key for spec in ctx.config.stream_entries
                   for key in graph.resolve_entry(spec)]
        chains = graph.reachable_with_chains(entries)
        allow = parse_bounded_allow(ctx.config.bounded_allow)
        for key in sorted(chains):
            node = graph.nodes[key]
            summary = node.summary
            for site in summary.growth:
                site_key = f"{node.rel}::{node.qualname}::{site.receiver}"
                if match_bounded_allow(site_key, allow) is not None:
                    continue
                chain = " -> ".join(chains[key])
                holder = {
                    "param": "a caller-owned container",
                    "global": "a process-lifetime container",
                    "local": "a generator-held container",
                    "escape": "a container of unknown ownership",
                }[site.category]
                yield self.finding_at(
                    node.rel, site.line, site.col,
                    f"unbounded accumulation: '{site.receiver}.{site.op}' "
                    f"grows {holder} on the streaming path (reached via "
                    f"{chain}) — bound it, drain it per turn, or record "
                    f"the bound as a [tool.cdelint] bounded-allow entry "
                    f"for '{site_key}'",
                    symbol=node.qualname,
                )
