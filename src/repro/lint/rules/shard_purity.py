"""CDE004 — shard workers must be pure.

Invariant: a shard worker computes its rows from its :class:`ShardTask`
alone.  The parallel engine's merge step promises bit-identical rows for
any worker count, which only holds if nothing reachable from the worker
entry point reads per-process or per-host state: ``os.environ`` /
``os.getenv``, ``os.getpid``, or raw ``socket`` access would make a
shard's output depend on *which* process ran it.

Since the effect engine landed, the rule runs on the shared project call
graph (:mod:`repro.lint.callgraph`) instead of building its own:
starting from the configured ``path::function`` entry points
(``repro/study/parallel.py::run_shard`` by default), it reports every
ENV effect site and every raw ``socket`` use reachable through the
conservative name-based graph, with one shortest witness chain per
function.  Over-approximation is the right direction for an invariant
checker: a false edge can only widen the audited surface, never hide an
impurity.

The wider effect contract (CLOCK, RNG, non-socket IO) on the same roots
is CDE007's job; this rule keeps its original, narrower meaning so
suppressions and baselines stay stable.
"""

from __future__ import annotations

from typing import Iterator

from ..effects import Effect, EffectSite
from ..findings import Finding
from ..registry import ProjectContext, Rule, register


def _is_impurity(site: EffectSite) -> bool:
    """Per-process/per-host state: any ENV read, or raw socket I/O."""
    effect = Effect(site.effect)
    if effect is Effect.ENV:
        return True
    if effect is Effect.IO:
        return (site.label == "socket" or site.label.startswith("socket.")
                or site.label == "import socket")
    return False


@register
class ShardPurityRule(Rule):
    rule_id = "CDE004"
    name = "shard-purity"
    summary = "per-process state reachable from a shard worker"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        graph = ctx.graph
        entries = [
            key
            for spec in ctx.config.shard_entries
            for key in graph.resolve_entry(spec)
        ]
        if not entries:
            return

        chains = graph.reachable_with_chains(entries)
        for key in sorted(chains):
            node = graph.nodes[key]
            chain = " -> ".join(chains[key])
            for site in node.effects:
                if not _is_impurity(site):
                    continue
                yield self.finding_at(
                    node.rel, site.line, site.col,
                    f"{site.label} inside shard-worker call graph "
                    f"(reached via {chain}) — shard results must be a pure "
                    f"function of the ShardTask",
                    symbol=node.qualname,
                )
