"""CDE004 — shard workers must be pure.

Invariant: a shard worker computes its rows from its :class:`ShardTask`
alone.  The parallel engine's merge step promises bit-identical rows for
any worker count, which only holds if nothing reachable from the worker
entry point reads per-process or per-host state: ``os.environ`` /
``os.getenv``, ``os.getpid``, or raw ``socket`` access would make a
shard's output depend on *which* process ran it.

The rule walks a conservative, name-based call graph: starting from the
configured ``path::function`` entry points (``repro/study/parallel.py::
run_shard`` by default), a call to any simple name binds to *every*
project function or method of that name.  That over-approximates
reachability — which is the right direction for an invariant checker: a
false edge can only widen the audited surface, never hide an impurity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..astutil import dotted_name, import_aliases, iter_function_defs
from ..findings import Finding
from ..module import ModuleInfo
from ..registry import ProjectContext, Rule, register

#: Dotted prefixes whose use inside a shard call graph is impure.
IMPURE_PREFIXES = ("socket.", "os.environ.")
IMPURE_NAMES = frozenset({
    "os.environ", "os.getenv", "os.putenv", "os.getpid", "os.getppid",
    "socket",
})


@dataclass
class _FunctionNode:
    """One project function/method in the call-graph index."""

    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    calls: frozenset[str] = frozenset()           # simple callee names
    impurities: tuple[tuple[ast.AST, str], ...] = ()

    @property
    def key(self) -> str:
        return f"{self.module.rel}::{self.qualname}"


def _walk_own(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function bodies.

    Nested defs are indexed as their own call-graph nodes, reached via
    the call edge their name creates — scanning their bodies here too
    would double-report every impurity.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))  # lambdas stay inline


def _impurities_in(func: ast.AST,
                   aliases: dict[str, str]) -> tuple[tuple[ast.AST, str], ...]:
    found: list[tuple[ast.AST, str]] = []
    for node in _walk_own(func):
        if isinstance(node, (ast.Attribute, ast.Name)):
            dotted = dotted_name(node)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            origin = aliases.get(head, head)
            resolved = f"{origin}.{rest}" if rest else origin
            if resolved in IMPURE_NAMES or any(
                    resolved.startswith(prefix) for prefix in IMPURE_PREFIXES):
                found.append((node, resolved))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            modname = (node.names[0].name if isinstance(node, ast.Import)
                       else (node.module or ""))
            if modname == "socket" or modname.startswith("socket."):
                found.append((node, "import socket"))
    # Deterministic, deduped by location.
    unique = {(n.lineno, n.col_offset, label): (n, label)
              for n, label in found if hasattr(n, "lineno")}
    return tuple(unique[key] for key in sorted(unique))


def _called_names(func: ast.AST) -> frozenset[str]:
    names: set[str] = set()
    for node in _walk_own(func):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                names.add(node.func.id)
            elif isinstance(node.func, ast.Attribute):
                names.add(node.func.attr)
    return frozenset(names)


@register
class ShardPurityRule(Rule):
    rule_id = "CDE004"
    name = "shard-purity"
    summary = "per-process state reachable from a shard worker"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        index: dict[str, _FunctionNode] = {}
        by_simple_name: dict[str, list[_FunctionNode]] = {}
        class_inits: dict[str, _FunctionNode] = {}
        for module in ctx.modules:
            aliases = import_aliases(module.tree)
            for func, qualname, _is_method in iter_function_defs(module.tree):
                fnode = _FunctionNode(
                    module=module,
                    node=func,
                    qualname=qualname,
                    calls=_called_names(func),
                    impurities=_impurities_in(func, aliases),
                )
                index[fnode.key] = fnode
                by_simple_name.setdefault(func.name, []).append(fnode)
                if func.name == "__init__" and "." in qualname:
                    class_inits[qualname.rsplit(".", 1)[0]] = fnode

        entries = self._resolve_entries(ctx, index)
        if not entries:
            return

        # BFS over the name-based call graph, remembering one shortest
        # chain per function for the report.
        chains: dict[str, tuple[str, ...]] = {}
        queue: list[_FunctionNode] = []
        for entry in entries:
            chains[entry.key] = (entry.qualname,)
            queue.append(entry)
        while queue:
            current = queue.pop(0)
            callees: list[_FunctionNode] = []
            for name in sorted(current.calls):
                callees.extend(by_simple_name.get(name, ()))
                init = class_inits.get(name)
                if init is not None:
                    callees.append(init)
            for callee in callees:
                if callee.key in chains:
                    continue
                chains[callee.key] = chains[current.key] + (callee.qualname,)
                queue.append(callee)

        for key in sorted(chains):
            fnode = index[key]
            chain = " -> ".join(chains[key])
            for node, label in fnode.impurities:
                yield self.finding(
                    fnode.module, node,
                    f"{label} inside shard-worker call graph "
                    f"(reached via {chain}) — shard results must be a pure "
                    f"function of the ShardTask",
                    symbol=fnode.qualname,
                )

    def _resolve_entries(
        self, ctx: ProjectContext, index: dict[str, _FunctionNode]
    ) -> list[_FunctionNode]:
        entries: list[_FunctionNode] = []
        for spec in ctx.config.shard_entries:
            suffix, _, funcname = spec.partition("::")
            if not funcname:
                continue
            module = ctx.module_by_suffix(suffix)
            if module is None:
                continue
            for fnode in index.values():
                if fnode.module is module and fnode.qualname == funcname:
                    entries.append(fnode)
        return entries
