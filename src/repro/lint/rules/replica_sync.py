"""CDE015 / CDE016 — the cdesync replica-equivalence family.

Invariant: a fused fast-path replica (``# cdelint: replica-of=`` marker
or ``[tool.cdelint] replicas`` binding) is behaviourally interchangeable
with its structured original.  The pipelined engine's speedup rests on
`_FastPlan` replaying the prober→platform→cache→upstream path's exact
RNG draws, clock advances and stat/log mutations; an edit to either side
that desynchronizes them either silently degrades every probe to the
structured fallback or — worse — shifts the seeded byte-identity the
counting techniques depend on.

**CDE015 replica-drift** compiles both sides' canonical effect traces
(:mod:`repro.lint.trace`) to token NFAs and decides trace inclusion
(:mod:`repro.lint.sync`): every observable-effect sequence the replica
can produce must be producible by the original.  A violation is reported
with a dual witness — the first diverging replica effect with its
call-hop chain, and the effects the original expects at that point with
theirs.  Verdicts are cached per run digest (config + every stored trace
+ binding), so warm runs replay them byte-identically without
recompiling a single NFA.

**CDE016 layout-drift** statically checks every constructed-``__dict__``
literal (the ``_obj_new``/``_obj_setattr`` fast-allocation idiom)
against the *declared field order* of the dataclass it instantiates.
``object.__new__`` bypasses ``__init__``, so a dataclass field reorder
silently changes the constructed objects' ``__dict__`` order — and with
it repr/asdict/iteration order — without any runtime error.  This
subsumes the engine's import-time ``_check_dataclass_layout`` spot check
with a compile-time proof over *all* such literals.
"""

from __future__ import annotations

import json
from typing import Iterator

from ..findings import Finding
from ..registry import ProjectContext, Rule, register
from ..sync import (Binding, SyncIndex, SyncTables, TokenMeta, Violation,
                    check_pair, collect_bindings)


def _format_expected(expected: tuple[tuple[str, TokenMeta], ...]) -> str:
    if not expected:
        return "no further observable effect"
    parts = [f"{label} ({meta.describe()})" for label, meta in expected[:3]]
    if len(expected) > 3:
        parts.append(f"... {len(expected) - 3} more")
    return " or ".join(parts)


def _drift_message(binding: Binding, violation: Violation) -> str:
    pair = (f"replica of {binding.spec}")
    if violation.kind == "accept":
        return (f"{pair}: replica can complete while the original still "
                f"has a mandatory effect pending — original expects "
                f"{_format_expected(violation.expected)}")
    meta = violation.meta
    where = meta.describe() if meta is not None else "?"
    return (f"{pair}: replica effect {violation.token} ({where}) cannot "
            f"be matched by the original at this point — original "
            f"expects {_format_expected(violation.expected)}")


@register
class ReplicaDriftRule(Rule):
    """CDE015: a fused replica's effect trace must stay within its
    structured original's.

    For each bound pair the rule compiles both functions' stored effect
    traces into NFAs over a canonical alphabet — ``rng:<method>`` draws
    (rejection-sampling idioms folded to ``rng:randbelow``, inline
    Box-Muller to ``rng:gauss``), ``clock`` writes, ``mut:<attr>``
    mutations of configured observable state, ``sync:<original>``
    cross-pair calls — and checks *trace inclusion* with adjacent-
    duplicate collapse on mutations and sync calls.  Replica effects are
    mandatory; original-side callee expansions carry an empty
    alternative (open-world calls may be pure), so the check is exactly
    one-sided: the replica may skip optional original work but can never
    emit an effect, or an ordering of effects, the original cannot.
    Pairs listed in ``replicas-assume`` are canonicalized but not
    checked.  An unresolvable ``replica-of`` target is itself a finding:
    a binding that silently stops resolving is a silently unchecked
    fast path.
    """

    rule_id = "CDE015"
    name = "replica-drift"
    summary = "fused replica's effect trace diverges from its original"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        if ctx.cached_sync is not None:
            yield from ctx.cached_sync
            return
        findings = list(self._compute(ctx))
        ctx.computed_sync = findings
        yield from findings

    def _compute(self, ctx: ProjectContext) -> Iterator[Finding]:
        bindings, errors = collect_bindings(ctx.summaries, ctx.config)
        for error in errors:
            yield self.finding_at(
                error.rel, error.line, 0, error.message,
                symbol=error.qualname)
        if not bindings:
            return
        tables = SyncTables.from_config(ctx.config)
        index = SyncIndex(ctx.summaries, ctx.graph, tables, bindings)
        for binding in bindings:
            if not binding.checked:
                continue
            replica_rel, replica_qual = binding.replica_key.split("::", 1)
            if index.trace(binding.replica_key) is None:
                # A replica with no observable effects mirrors nothing.
                continue
            if index.function(binding.original_key) is None:
                continue  # collect_bindings already vetted resolution
            violation = check_pair(index, binding)
            if violation is not None:
                yield self.finding_at(
                    replica_rel, binding.line, 0,
                    _drift_message(binding, violation),
                    symbol=replica_qual)


@register
class LayoutDriftRule(Rule):
    """CDE016: constructed-``__dict__`` literals must match dataclass
    field order.

    The fused fast path allocates result objects with ``object.__new__``
    plus a ``__dict__`` literal, bypassing ``__init__`` for speed.  That
    is only equivalent to normal construction if the literal lists the
    dataclass's fields in declaration order — ``__dict__`` order is
    insertion order, and repr/asdict/comparison helpers iterate it.  The
    trace extractor records every such literal as a layout node with the
    statically-resolved class name; this rule checks each against the
    per-module dataclass field index in the summaries.  A class name
    defined as a dataclass nowhere in the tree is skipped (opaque or
    external types); multiple same-named dataclasses accept any of
    their orders.
    """

    rule_id = "CDE016"
    name = "layout-drift"
    summary = "constructed __dict__ order diverges from dataclass fields"

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        declared: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
        for rel in sorted(ctx.summaries):
            for name, fields in sorted(
                    ctx.summaries[rel].dataclass_fields.items()):
                declared.setdefault(name, []).append((rel, fields))
        if not declared:
            return
        for rel in sorted(ctx.summaries):
            for func in ctx.summaries[rel].functions:
                if not func.trace_json:
                    continue
                for cls, fields, line in _layout_nodes(
                        json.loads(func.trace_json)):
                    candidates = declared.get(cls)
                    if not candidates:
                        continue
                    if any(tuple(fields) == order
                           for _rel, order in candidates):
                        continue
                    src_rel, order = candidates[0]
                    yield self.finding_at(
                        rel, line, 0,
                        f"__dict__ literal for {cls} lists fields "
                        f"({', '.join(fields)}) but the dataclass "
                        f"({src_rel}) declares ({', '.join(order)}) — "
                        f"object.__new__ construction must follow "
                        f"declaration order",
                        symbol=func.qualname)


def _layout_nodes(tree: list) -> Iterator[tuple[str, list[str], int]]:
    """Every ``["layout", cls, fields, line]`` node in a trace tree."""
    kind = tree[0]
    if kind == "layout":
        yield str(tree[1]), [str(f) for f in tree[2]], int(tree[3])
    elif kind in ("seq", "alt"):
        for child in tree[1]:
            yield from _layout_nodes(child)
    elif kind == "loop":
        yield from _layout_nodes(tree[1])
    elif kind == "while":
        yield from _layout_nodes(tree[1])
        yield from _layout_nodes(tree[2])
    elif kind == "try":
        yield from _layout_nodes(tree[1])
        for handler in tree[2]:
            yield from _layout_nodes(handler)
