"""CDE001 — no wall-clock reads outside the virtual clock.

Invariant: all simulated time flows from :class:`repro.net.clock.SimClock`.
A wall-clock read anywhere else couples measurement rows to the host
machine, destroying the bit-for-bit reproducibility that lets a documented
seed regenerate every figure.  ``time.perf_counter`` is *not* flagged: it
is the sanctioned way to sample real elapsed time for performance
counters, which never feed back into measured rows.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import import_aliases, resolve_call_target, walk_with_symbols
from ..config import path_matches_any
from ..effects import WALLCLOCK_READS
from ..findings import Finding
from ..module import ModuleInfo
from ..registry import ProjectContext, Rule, register

#: Fully-qualified callables that read the wall clock — shared with the
#: effect engine's CLOCK leaf table (single source of truth).
BANNED_CALLS = WALLCLOCK_READS


@register
class WallClockRule(Rule):
    rule_id = "CDE001"
    name = "wall-clock"
    summary = "wall-clock reads outside net/clock.py break virtual time"

    def check_module(
        self, module: ModuleInfo, ctx: ProjectContext
    ) -> Iterator[Finding]:
        if path_matches_any(module.rel, ctx.config.wallclock_allow):
            return
        aliases = import_aliases(module.tree)
        for node, symbol in walk_with_symbols(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target in BANNED_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock call {target}() — simulated time must come "
                    f"from a SimClock (repro/net/clock.py)",
                    symbol=symbol,
                )
