"""CDE002 — all randomness flows through seeded streams.

Invariant: every stochastic draw derives from one root seed via the named
streams of :mod:`repro.net.rng` (or an explicit ``rng: random.Random``
parameter).  Three syntactic hazards are flagged:

* calls on the ``random`` module at import time (they perturb — or depend
  on — global interpreter state before any seed is applied);
* ``random.Random()`` constructed without a seed argument, anywhere;
* draws on the *global* ``random`` module (``random.random()``,
  ``random.choice(...)`` …) anywhere — global-state draws make results
  depend on call ordering across unrelated components.

Annotations like ``rng: random.Random`` and seeded constructions
``random.Random(seed)`` are of course fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import import_aliases, module_level_nodes, resolve_call_target, \
    walk_with_symbols
from ..config import path_matches_any
from ..effects import GLOBAL_RANDOM_DRAWS
from ..findings import Finding
from ..module import ModuleInfo
from ..registry import ProjectContext, Rule, register

#: Draw/state functions of the global ``random`` module — shared with the
#: effect engine's RNG leaf table (single source of truth).
GLOBAL_DRAWS = GLOBAL_RANDOM_DRAWS


@register
class RandomnessRule(Rule):
    rule_id = "CDE002"
    name = "seeded-randomness"
    summary = "global or unseeded randomness escapes the seed-derivation scheme"

    def check_module(
        self, module: ModuleInfo, ctx: ProjectContext
    ) -> Iterator[Finding]:
        if path_matches_any(module.rel, ctx.config.rng_allow):
            return
        aliases = import_aliases(module.tree)
        import_time = {
            id(node) for node in module_level_nodes(module.tree)
        }
        for node, symbol in walk_with_symbols(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target is None or not (
                target == "random.Random" or target.startswith("random.")
            ):
                continue
            if target == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "unseeded random.Random() — seed it via "
                        "repro/net/rng.py (derive_seed / RngFactory)",
                        symbol=symbol,
                    )
                continue
            if target in GLOBAL_DRAWS:
                where = ("at import time "
                         if id(node) in import_time else "")
                yield self.finding(
                    module, node,
                    f"global-state call {target}() {where}— draw from a "
                    f"named stream (repro/net/rng.py) or an explicit "
                    f"rng parameter instead",
                    symbol=symbol,
                )
            elif id(node) in import_time:
                yield self.finding(
                    module, node,
                    f"module-level call {target}() executes at import time "
                    f"— randomness must be constructed inside seeded "
                    f"components",
                    symbol=symbol,
                )
