"""CDE014: suppression comments that never suppress anything.

A ``# cdelint: disable=`` comment is a waived exception: it documents
that a human looked at a finding and accepted it.  When the code later
changes so the finding no longer fires, the stale comment keeps waiving
a violation that could silently return elsewhere on the line — and it
misleads the next reader about what the code does.

The detection is engine-implemented (the engine already knows, per run,
exactly which suppression comments filtered a finding); this class
exists so the rule has an identity — registry metadata, ``--explain``
text, SARIF descriptor, config disable.  It is **off by default**:
enable with ``--warn-unused-suppressions`` (or ``--select CDE014``).
Only rules that actually ran are audited, so a ``--select CDE003`` run
never flags a CDE001 suppression as unused.
"""

from __future__ import annotations

from ..registry import Rule, register


@register
class UnusedSuppressionRule(Rule):
    """Stale waivers are silent risk.

    **Rationale.**  Suppressions are the audit trail of deliberate
    exceptions.  An unused one is either dead documentation or a
    landmine — a future finding on that line is waived unseen.

    **Example (bad).** ::

        ordered = sorted(names)  # cdelint: disable=CDE003
        # (the sorted() wrap fixed the finding; the comment stayed)

    **Fix guidance.**  Delete the comment.  If the suppression guards a
    finding that only fires under a non-default configuration, keep it
    and run the audit with that configuration.
    """

    rule_id = "CDE014"
    name = "unused-suppression"
    summary = ("a # cdelint: disable= comment whose rule never fired on "
               "that line (audit mode, off by default)")

    #: Not part of a default run: findings are produced by the engine
    #: only under --warn-unused-suppressions / --select CDE014.
    default_enabled = False
