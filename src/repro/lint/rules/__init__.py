"""The bundled cdelint rule set.

Importing this package registers every rule with
:mod:`repro.lint.registry`.  Each module holds one rule and documents the
determinism invariant it protects (full rationale: docs/STATIC_ANALYSIS.md).
"""

from . import (  # noqa: F401
    address_provenance,
    bounded_accumulation,
    cache_identity,
    capture_safety,
    checkpoint_durability,
    effects_contract,
    error_provenance,
    hot_loop_allocation,
    iteration,
    layering,
    mutable_defaults,
    public_annotations,
    randomness,
    replica_sync,
    rng_streams,
    shard_purity,
    timing_taint,
    ttl_soundness,
    unused_suppression,
    wallclock,
    world_provenance,
)

# NB: no ``from __future__ import annotations`` here — the future import
# binds the name ``annotations`` in the package namespace, which would
# shadow a same-named submodule in the ``from . import ...`` above.
