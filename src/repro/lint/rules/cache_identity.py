"""CDE021: one cache object must map to one declared ingress identity.

Cache enumeration (paper §IV-B) counts caches by probing through ingress
addresses and clustering the answers.  If two ingress identities are
wired to *the same cache object* — a shared ISP frontend cache, or an
accidental aliasing bug in a world builder — the count collapses those
identities silently.  The paper's techniques are blind to this by
construction, so the sharing must be declared, never accidental.
"""

from __future__ import annotations

from typing import Iterator

from ..config import path_matches_any
from ..findings import Finding
from ..registry import ProjectContext, Rule, register
from ..topo import effective_contract, owning_class, parse_component_table


@register
class CacheIdentityRule(Rule):
    """Cache ownership and sharing must match the declared contract.

    **Rationale.**  The ingress→cache mapping is the CDE's ground
    truth: every count the reproduction reports assumes each probed
    identity reaches the caches the component graph says it reaches.
    This rule proves three things for every class in
    ``component-paths``:

    * a class that binds a cache object to ``self`` (``self.cache =
      ...``, ``self.caches = self._build_caches(...)``) must carry the
      ``owns-cache`` attribute — cache ownership is part of the
      component contract, not an implementation detail;
    * a class that registers *many* ingress addresses for one instance
      (``network.register_many(ips, self, ...)``) while owning caches
      collapses all those identities onto one cache set — allowed only
      for a declared ``frontend`` or a ``shared-cache`` component
      (``ResolutionPlatform`` declares ``shared-cache``: its ingress
      faces genuinely share the platform's cache pool, and the paper's
      techniques measure exactly that);
    * one cache value passed into two component constructions in the
      same builder (``Forwarder(cache=shared)`` twice) aliases one
      cache across two identities — reported once, at the second
      construction site.

    **Example (bad).** ::

        shared = DnsCache(cache_id="shared", capacity=64, max_ttl=60)
        a = ForwardingResolver("a", ip_a, [up], net, cache=shared)
        b = ForwardingResolver("b", ip_b, [up], net, cache=shared)

    **Fix guidance.**  Give each identity its own cache, or declare the
    owner ``frontend``/``shared-cache`` so the ground-truth tables and
    the accuracy scoring know the identities collapse.  Add
    ``owns-cache`` to any component that holds a cache.
    """

    rule_id = "CDE021"
    name = "cache-identity"
    summary = ("two ingress identities must not share one cache object "
               "unless the owner is declared frontend/shared-cache")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        table = parse_component_table(ctx.config.components)
        for rel in sorted(ctx.summaries):
            if not path_matches_any(rel, ctx.config.component_paths):
                continue
            summary = ctx.summaries[rel]
            components = summary.components
            by_class: dict[str, list] = {name: [] for name in components}
            for func in summary.functions:
                owner = owning_class(func.qualname, components)
                if owner is not None:
                    by_class[owner].append(func)
            for name in sorted(components):
                funcs = by_class[name]
                role, attrs = effective_contract(components[name], table)
                own_sites = [site for func in funcs
                             for site in func.caches if site.kind == "own"]
                register_many = [site for func in funcs
                                 for site in func.addr
                                 if site.kind == "register-many"]
                for site in own_sites:
                    if "owns-cache" in attrs:
                        continue
                    contract = (f"role '{role}'" if role
                                else "no component declaration")
                    yield self.finding_at(
                        rel, site.line, site.col,
                        f"component '{name}' owns a cache "
                        f"('{site.attr} = {site.value}') but carries "
                        f"{contract} without the owns-cache attribute",
                        symbol=name)
                if own_sites and register_many and role != "frontend" \
                        and "shared-cache" not in attrs:
                    site = sorted(register_many)[0]
                    yield self.finding_at(
                        rel, site.line, site.col,
                        f"component '{name}' registers many ingress "
                        f"identities for one instance while owning "
                        f"caches ({', '.join(sorted(s.attr for s in own_sites))}) "
                        f"— the identities share one cache set; declare "
                        f"the component frontend or shared-cache",
                        symbol=name)
            # Aliasing: one cache value feeding two constructions in one
            # function collapses two identities onto one cache object.
            for func in summary.functions:
                owner = owning_class(func.qualname, components)
                if owner is not None:
                    role, attrs = effective_contract(
                        components[owner], table)
                    if role == "frontend" or "shared-cache" in attrs:
                        continue
                by_value: dict[str, list] = {}
                for site in func.caches:
                    if site.kind == "pass":
                        by_value.setdefault(site.value, []).append(site)
                for value in sorted(by_value):
                    sites = sorted(by_value[value])
                    if len(sites) < 2:
                        continue
                    second = sites[1]
                    yield self.finding_at(
                        rel, second.line, second.col,
                        f"cache object '{value}' is passed into "
                        f"{len(sites)} component constructions in "
                        f"'{func.qualname}' — two ingress identities "
                        f"would share one cache; give each its own "
                        f"cache or declare the owner frontend/"
                        f"shared-cache",
                        symbol=func.qualname)
