"""CDE005 — no mutable default arguments.

Invariant: a mutable default (``def f(x, acc=[])``) is evaluated once at
import time and shared across calls, so state leaks between invocations
— between *platforms* when the function sits on a measurement path, and
between *shards* when the in-process executor reuses a module.  Defaults
must be ``None``-and-construct, a frozen value, or a dataclass
``field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import iter_function_defs
from ..findings import Finding
from ..module import ModuleInfo
from ..registry import ProjectContext, Rule, register

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "CDE005"
    name = "mutable-default"
    summary = "mutable default arguments share state across calls"

    def check_module(
        self, module: ModuleInfo, ctx: ProjectContext
    ) -> Iterator[Finding]:
        for func, qualname, _is_method in iter_function_defs(module.tree):
            args = func.args
            defaults = list(args.defaults)
            defaults.extend(d for d in args.kw_defaults if d is not None)
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {func.name}() — use "
                        f"None and construct inside, or a frozen value",
                        symbol=qualname,
                    )
