"""CDE013: probe-path handlers must not swallow failure history.

PR 3's resilience layer threads a typed failure record through every
probe: ``ProbeFailure`` carries the ``AttemptRecord`` history that the
degradation tally (and the exported ``resilience`` section) is built
from.  A handler on a probe path that silently discards one of these
exceptions — or catches a history-carrying ``ProbeFailure`` without
using or re-raising it — erases evidence of degradation: the
measurement continues, the number stays plausible, and the loss-rate
accounting silently undercounts.

The check runs on summary handler shapes inside the configured
``probe-paths`` scopes: *silent* handlers (body is only
``pass``/``continue``/``break``/bare ``return``) catching any
``probe-error-types`` entry are flagged; handlers catching a
``probe-history-types`` exception are additionally flagged when they
neither read the bound exception object nor re-raise it.
"""

from __future__ import annotations

from typing import Iterator

from ..config import path_matches_any
from ..findings import Finding
from ..registry import ProjectContext, Rule, register


@register
class ErrorProvenanceRule(Rule):
    """Failure history is measurement data.

    **Rationale.**  The paper's loss-rate handling (§IV) only works if
    every unanswered probe is *accounted*: a swallowed timeout is a
    probe that silently vanished from the degradation tally, which
    skews the very counts the retry budget exists to protect.

    **Example (bad).** ::

        try:
            result = prober.probe(ingress, name)
        except QueryTimeout:
            continue                    # probe vanishes from the tally

    **Example (good).** ::

        except ProbeFailure as failure:
            tally.record(failure.attempts)   # history is consumed
            raise

    **Fix guidance.**  Record the failure (attempt count, tally, row
    flag) or re-raise it so a caller can.  If non-response genuinely
    *is* the signal (the classical IP census treats silence as "no
    resolver"), suppress in place with a justifying comment.  Scopes
    and exception types are configured as ``[tool.cdelint]
    probe-paths`` / ``probe-error-types`` / ``probe-history-types``.
    """

    rule_id = "CDE013"
    name = "error-provenance"
    summary = ("handlers on probe paths must not swallow ProbeFailure/"
               "AttemptRecord history before it reaches the tally")

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        probe_types = frozenset(ctx.config.probe_error_types)
        history_types = frozenset(ctx.config.probe_history_types)
        graph = ctx.graph
        for key in sorted(graph.nodes):
            node = graph.nodes[key]
            if not path_matches_any(node.rel, ctx.config.probe_paths):
                continue
            for handler in node.summary.handlers:
                caught = frozenset(handler.types)
                probe_caught = sorted(caught & probe_types)
                if not probe_caught:
                    continue
                label = "/".join(probe_caught)
                if handler.silent:
                    yield self.finding_at(
                        node.rel, handler.line, handler.col,
                        f"handler for {label} silently swallows the probe "
                        f"failure — record it in the degradation tally or "
                        f"re-raise so the loss stays accounted",
                        symbol=node.qualname,
                    )
                    continue
                history_caught = sorted(caught & history_types)
                if history_caught and not (handler.reraises
                                           or handler.uses_bound):
                    yield self.finding_at(
                        node.rel, handler.line, handler.col,
                        f"handler for {'/'.join(history_caught)} discards "
                        f"the AttemptRecord history it carries — read the "
                        f"bound exception (attempts, tally) or re-raise it",
                        symbol=node.qualname,
                    )
