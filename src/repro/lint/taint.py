"""Taint tables and interprocedural provenance propagation (cdeflow).

This module is the whole-program half of the dataflow layer: it owns the
**source / sink / sanitizer tables** shared by the CDE010–CDE013 rules
and a parametrised fixed-point :func:`propagate` that lifts the
per-function flow edges of :mod:`repro.lint.dataflow` over the
conservative name-bound call graph (:mod:`repro.lint.callgraph`).

Single-sourcing: the timing-source call table *is* the effect engine's
``CLOCK_CALLS`` leaf table (plus the sanctioned ``time.perf_counter``,
which CDE001/CDE007 exempt but which must still never reach a counting
sink), and the fork-unsafe resource table names the handle-producing
subset of the ``IO_CALLS`` / ``ENTROPY_CALLS`` leaves.  A rule that
needs a new leaf extends the table here, next to the effect tables it
mirrors, never inline in a rule.

The propagation computes, per call-graph node, three summaries to a
fixed point:

* ``ret_abs`` — taint sources whose values reach the node's return,
  with one shortest witness chain each;
* ``ret_params`` — parameters whose values reach the return (so a call
  with a tainted argument yields a tainted result);
* ``sink_params`` — parameters whose values reach a configured sink,
  directly or through further calls.

Witness chains are stitched across functions, so a finding reads as a
def-use proof: ``result.dns_rtt -> samples@249 -> split_bimodal()``.

Deliberate approximations (documented, tested):

* **Explicit flows only.**  A value used in a branch condition does not
  taint what the branch computes — ``if classifier.is_miss(rtt):
  count += 1`` keeps ``count`` clean.  This is what sanctions the
  hit/miss classifier as *the* boundary between latency and counting.
* **Unknown callees are clean.**  A call into code outside the linted
  tree (or a dataclass's synthesised ``__init__``) returns untainted
  values.  Record/row constructors therefore start a fresh provenance
  domain, which matches the measurement model: a row is data, not a
  live handle into the world that produced it.
* **Name-bound call edges.**  As everywhere in cdelint, a call binds to
  every project function of that simple name; a false edge can only
  widen the audited surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from .effects import CLOCK_CALLS

if TYPE_CHECKING:  # pragma: no cover - type-only import, no runtime cycle
    from .callgraph import CallGraph, FunctionSummary
    from .dataflow import FlowEdge

# ---------------------------------------------------------------------------
# the tables (single-sourced with the effect-leaf tables)
# ---------------------------------------------------------------------------

#: Calls whose *result* is a timing value.  This is the CDE001/CDE007
#: CLOCK leaf table verbatim, plus ``time.perf_counter``: perf_counter is
#: sanctioned as telemetry (CDE001 exempts it) but its value must still
#: never reach a counting sink.
TIMING_CALL_SOURCES: frozenset[str] = CLOCK_CALLS | frozenset(
    {"time.perf_counter"})

#: Attribute reads whose value is a latency / virtual-clock reading.
#: ``clock.now`` is the SimClock read; ``.rtt`` / ``.dns_rtt`` are the
#: probe and browser latency fields the timing side channel measures.
TIMING_ATTR_SOURCES: tuple[str, ...] = ("clock.now", ".rtt", ".dns_rtt")

#: Default CDE010 sources: every timing read above.
DEFAULT_TIMING_SOURCES: tuple[str, ...] = tuple(sorted(
    set(TIMING_ATTR_SOURCES) | TIMING_CALL_SOURCES))

#: Default CDE010 sinks: the counting arithmetic and the row/report
#: exporters.  PerfCounters / ShardPerf are deliberately absent — they
#: are the sanctioned destination of wall-time telemetry (see CDE001).
DEFAULT_TIMING_SINKS: tuple[str, ...] = (
    "CacheCountEstimate",
    "estimate_from_occupancy",
    "PlatformMeasurement",
    "measurement_to_dict",
    "measurements_to_dict",
    "report_to_dict",
    "table1_to_dict",
)

#: Default CDE010 sanitizers: the hit/miss classifier boundary.  A
#: latency crossing one of these calls becomes a *classification*, which
#: is the paper's §IV-B3 counting primitive and free to enter counts.
DEFAULT_TIMING_SANITIZERS: tuple[str, ...] = (
    "LatencyClassifier.fit",
    "is_miss",
    "split_bimodal",
)

#: Origins that are one seeded world's live state (CDE011): the world
#: object itself, its RNG streams and factory, and its query log.
WORLD_SOURCES: tuple[str, ...] = (
    "SimulatedInternet",
    ".stream",
    ".rng_factory",
    ".query_log",
    "fallback_rng",
)

#: Calls that produce fork-unsafe resources (CDE012): live handles that
#: must never ride inside a pickled shard spec.  ``open`` and the socket
#: constructors are the handle-producing IO leaves (cf. ``IO_CALLS`` /
#: ``IO_REF_PREFIXES`` in :mod:`repro.lint.effects`); ``random.Random``
#: / ``random.SystemRandom`` mirror the CDE002 RNG-object leaves; a
#: ``*.stream(...)`` result is a live, memoised RNG shared with its
#: factory.
FORK_UNSAFE_CALLS: frozenset[str] = frozenset({
    "open",
    "socket.socket",
    "socket.create_connection",
    "socket.socketpair",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "random.Random",
    "random.SystemRandom",
    ".stream",
})

#: Attribute suffixes the intraprocedural pass records origins for.
#: This is the *candidate universe*: summaries are config-independent,
#: so a configured attribute source must end with one of these suffixes
#: to be tracked (extending the universe bumps ``SUMMARY_VERSION``).
CANDIDATE_ATTR_SUFFIXES: tuple[str, ...] = (
    ".rtt", ".dns_rtt", ".now", ".rng_factory", ".query_log",
)

#: Call patterns recorded as taint *sites* (presence, not flow) for the
#: scope-based rules (CDE011's merge-path check).
CANDIDATE_SITE_CALLS: frozenset[str] = (
    frozenset(WORLD_SOURCES) | FORK_UNSAFE_CALLS | TIMING_CALL_SOURCES
)

#: Calls that pass taint straight through from arguments to result
#: (value-preserving transforms; ``len`` is deliberately absent — a
#: count of samples is not the samples).
PASSTHROUGH_CALLS: frozenset[str] = frozenset({
    "sorted", "list", "tuple", "set", "frozenset", "dict", "reversed",
    "min", "max", "sum", "abs", "round", "float", "int", "str", "repr",
    "format", "zip", "enumerate", "filter", "map", "next", "iter",
    "statistics.mean", "statistics.median", "statistics.stdev",
    "statistics.fmean", "statistics.pstdev", "copy.copy", "copy.deepcopy",
})

#: Method names that mutate their receiver: a tainted argument taints
#: the object the method is called on (``samples.append(result.rtt)``).
MUTATOR_METHODS: frozenset[str] = frozenset({
    "append", "extend", "add", "insert", "update", "setdefault",
    "appendleft", "extendleft", "push",
})

#: Constructor calls whose result is a mutable container (module-level
#: occurrences of these define a *mutable global* for CDE012).
MUTABLE_CONSTRUCTORS: frozenset[str] = frozenset({
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict",
})


# ---------------------------------------------------------------------------
# pattern matching
# ---------------------------------------------------------------------------

def pattern_matches(dotted: str, pattern: str) -> bool:
    """Whether a dotted name falls under a table pattern.

    A pattern starting with ``.`` matches by raw suffix (``.rtt`` ~
    ``result.rtt``); otherwise it matches the whole name or a trailing
    dotted segment (``clock.now`` ~ ``world.clock.now``,
    ``is_miss`` ~ ``classifier.is_miss``).
    """
    if not dotted:
        return False
    if pattern.startswith("."):
        return dotted.endswith(pattern)
    return dotted == pattern or dotted.endswith("." + pattern)


def matches_any(dotted: str, patterns: Iterable[str]) -> bool:
    return any(pattern_matches(dotted, pattern) for pattern in patterns)


# ---------------------------------------------------------------------------
# interprocedural propagation
# ---------------------------------------------------------------------------

#: Bounds keeping summaries and witness chains small and convergent.
MAX_CHAIN = 12

_PARAM = "param:"
_ATTR = "attr:"
_CALL = "call:"


@dataclass(frozen=True)
class TaintSpec:
    """One rule's parametrisation of the propagation."""

    sources: tuple[str, ...]
    sinks: tuple[str, ...]
    sanitizers: tuple[str, ...] = ()


@dataclass(frozen=True, order=True)
class TaintFlow:
    """One source-to-sink flow, anchored at the violating call site."""

    rel: str
    line: int
    col: int
    qualname: str
    source: str          # the matched origin, e.g. "world.clock.now"
    source_line: int
    sink: str            # the sink callee, e.g. "CacheCountEstimate"
    chain: tuple[str, ...]

    def render_chain(self) -> str:
        return " -> ".join(self.chain) if self.chain else "direct"


@dataclass
class _NodeState:
    """Fixed-point summary of one call-graph node under one spec."""

    ret_abs: dict[str, tuple[int, tuple[str, ...]]] = field(
        default_factory=dict)
    ret_params: frozenset[str] = frozenset()
    sink_params: dict[str, tuple[str, tuple[str, ...]]] = field(
        default_factory=dict)

    def shape(self) -> tuple[frozenset[str], frozenset[str], frozenset[str]]:
        """Convergence is judged on key sets only: chains keep their
        first (shortest-discovered) value, which makes growth monotone."""
        return (frozenset(self.ret_abs), self.ret_params,
                frozenset(self.sink_params))


def _cap(chain: tuple[str, ...]) -> tuple[str, ...]:
    return chain[:MAX_CHAIN]


def _param_for(summary: "FunctionSummary", arg: str) -> Optional[str]:
    """Map a call-site argument spec (``"0"`` / ``"k=name"``) to the
    callee's parameter name, skipping an implicit self/cls receiver."""
    params = summary.params
    if arg.startswith("k="):
        name = arg[2:]
        return name if name in params else None
    try:
        index = int(arg)
    except ValueError:
        return None
    if params and params[0] in ("self", "cls"):
        index += 1
    if 0 <= index < len(params):
        return params[index]
    return None


class TaintAnalysis:
    """Fixed-point taint propagation for one :class:`TaintSpec`."""

    def __init__(self, graph: "CallGraph", spec: TaintSpec):
        self.graph = graph
        self.spec = spec
        self.state: dict[str, _NodeState] = {}
        #: per node: call-site index ``(callee, line) -> arg -> edges``.
        self._call_edges: dict[
            str, dict[tuple[str, int], dict[str, list["FlowEdge"]]]] = {}
        self._return_edges: dict[str, list["FlowEdge"]] = {}
        self._index()
        self._fixpoint()

    # -- construction -------------------------------------------------------

    def _index(self) -> None:
        for key in sorted(self.graph.nodes):
            node = self.graph.nodes[key]
            calls: dict[tuple[str, int], dict[str, list["FlowEdge"]]] = {}
            returns: list["FlowEdge"] = []
            for edge in node.summary.flows:
                if edge.sink == "return":
                    returns.append(edge)
                    continue
                if not edge.sink.startswith("arg:"):
                    continue
                _, _, rest = edge.sink.partition(":")
                callee, _, arg = rest.rpartition(":")
                if not callee:
                    continue
                site = calls.setdefault((callee, edge.line), {})
                site.setdefault(arg, []).append(edge)
            self._call_edges[key] = calls
            self._return_edges[key] = returns
            self.state[key] = _NodeState()

    # -- origin resolution --------------------------------------------------

    def _resolve(
        self, key: str, edge: "FlowEdge",
        seen: frozenset[tuple[str, int]],
    ) -> tuple[dict[str, tuple[int, tuple[str, ...]]], frozenset[str]]:
        """Absolute sources and parameter names an edge's origin carries."""
        origin, line = edge.src, edge.src_line
        if (origin, line) in seen:
            return {}, frozenset()
        seen = seen | {(origin, line)}
        hops = tuple(edge.hops)

        if origin.startswith(_PARAM):
            return {}, frozenset({origin[len(_PARAM):]})

        if origin.startswith(_ATTR):
            dotted = origin[len(_ATTR):]
            if matches_any(dotted, self.spec.sources):
                return {dotted: (line, _cap(hops))}, frozenset()
            return {}, frozenset()

        if not origin.startswith(_CALL):
            return {}, frozenset()
        dotted = origin[len(_CALL):].rpartition("@")[0]
        if matches_any(dotted, self.spec.sanitizers):
            return {}, frozenset()

        abs_sources: dict[str, tuple[int, tuple[str, ...]]] = {}
        params: set[str] = set()
        if matches_any(dotted, self.spec.sources):
            abs_sources[dotted] = (line, _cap(hops))
        for target in self.graph.bound_keys(dotted.rsplit(".", 1)[-1]):
            target_state = self.state[target]
            target_node = self.graph.nodes[target]
            prefix = f"{dotted}()@{line}"
            for src, (src_line, chain) in target_state.ret_abs.items():
                abs_sources.setdefault(
                    src, (src_line, _cap(chain + (prefix,) + hops)))
            if not target_state.ret_params:
                continue
            site = self._call_edges[key].get((dotted, line), {})
            for arg, arg_edges in site.items():
                pname = _param_for(target_node.summary, arg)
                if pname is None or pname not in target_state.ret_params:
                    continue
                for arg_edge in arg_edges:
                    inner_abs, inner_params = self._resolve(
                        key, arg_edge, seen)
                    for src, (src_line, chain) in inner_abs.items():
                        abs_sources.setdefault(
                            src, (src_line, _cap(chain + (prefix,) + hops)))
                    params |= inner_params
        return abs_sources, frozenset(params)

    # -- fixed point --------------------------------------------------------

    def _recompute(self, key: str) -> _NodeState:
        old = self.state[key]
        state = _NodeState(
            ret_abs=dict(old.ret_abs),
            ret_params=old.ret_params,
            sink_params=dict(old.sink_params),
        )
        ret_params = set(state.ret_params)
        for edge in self._return_edges[key]:
            abs_sources, params = self._resolve(key, edge, frozenset())
            for src, value in abs_sources.items():
                state.ret_abs.setdefault(src, value)
            ret_params |= params
        state.ret_params = frozenset(ret_params)

        for (callee, line), site in sorted(self._call_edges[key].items()):
            if matches_any(callee, self.spec.sanitizers):
                continue
            is_sink = matches_any(callee, self.spec.sinks)
            for arg in sorted(site):
                for edge in site[arg]:
                    _, params = self._resolve(key, edge, frozenset())
                    if is_sink:
                        for pname in params:
                            state.sink_params.setdefault(
                                pname, (callee, _cap(tuple(edge.hops))))
                        continue
                    for target in self.graph.bound_keys(
                            callee.rsplit(".", 1)[-1]):
                        target_state = self.state[target]
                        pname = _param_for(
                            self.graph.nodes[target].summary, arg)
                        if pname is None or pname not in \
                                target_state.sink_params:
                            continue
                        sink, via = target_state.sink_params[pname]
                        for caller_param in params:
                            state.sink_params.setdefault(
                                caller_param,
                                (sink, _cap(tuple(edge.hops)
                                            + (f"{callee}()@{line}",) + via)))
        return state

    def _fixpoint(self) -> None:
        worklist = sorted(self.state)
        pending = set(worklist)
        while worklist:
            key = worklist.pop()
            pending.discard(key)
            new_state = self._recompute(key)
            if new_state.shape() != self.state[key].shape():
                self.state[key] = new_state
                for caller in self.graph.callers(key):
                    if caller not in pending:
                        worklist.append(caller)
                        pending.add(caller)
            else:
                self.state[key] = new_state

    # -- results ------------------------------------------------------------

    def hits(self) -> list[TaintFlow]:
        """Every absolute source-to-sink flow, sorted and deduplicated."""
        found: dict[tuple[str, int, int, str, str], TaintFlow] = {}
        for key in sorted(self.graph.nodes):
            node = self.graph.nodes[key]
            for (callee, line), site in sorted(
                    self._call_edges[key].items()):
                if matches_any(callee, self.spec.sanitizers):
                    continue
                is_sink = matches_any(callee, self.spec.sinks)
                for arg in sorted(site):
                    for edge in site[arg]:
                        abs_sources, _ = self._resolve(key, edge, frozenset())
                        if not abs_sources:
                            continue
                        if is_sink:
                            self._record(found, node, edge, callee,
                                         abs_sources, ())
                            continue
                        for target in self.graph.bound_keys(
                                callee.rsplit(".", 1)[-1]):
                            pname = _param_for(
                                self.graph.nodes[target].summary, arg)
                            target_state = self.state[target]
                            if pname is None or pname not in \
                                    target_state.sink_params:
                                continue
                            sink, via = target_state.sink_params[pname]
                            self._record(
                                found, node, edge, sink, abs_sources,
                                (f"{callee}()@{edge.line}",) + via)
        return sorted(found.values())

    def _record(
        self,
        found: dict[tuple[str, int, int, str, str], TaintFlow],
        node: object,
        edge: "FlowEdge",
        sink: str,
        abs_sources: dict[str, tuple[int, tuple[str, ...]]],
        suffix: tuple[str, ...],
    ) -> None:
        rel = node.rel            # type: ignore[attr-defined]
        qualname = node.qualname  # type: ignore[attr-defined]
        for src in sorted(abs_sources):
            src_line, chain = abs_sources[src]
            mark = (rel, edge.line, edge.col, src, sink)
            found.setdefault(mark, TaintFlow(
                rel=rel, line=edge.line, col=edge.col, qualname=qualname,
                source=src, source_line=src_line, sink=sink,
                chain=_cap(chain + suffix),
            ))


def propagate(graph: "CallGraph", spec: TaintSpec) -> TaintAnalysis:
    """Run one parametrised interprocedural taint propagation."""
    return TaintAnalysis(graph, spec)
