"""Command-line front end: ``python -m repro.lint [paths]``.

Exit codes: ``0`` clean, ``1`` findings (or parse errors), ``2`` usage /
configuration errors — the convention CI and the committed
``LINT_baseline.json`` rely on.  ``--fix`` applies the mechanical
autofixes (CDE003/CDE005/CDE006) and exits 0 when everything it touched
is fixed; ``--fix --diff`` prints the unified diff without writing.
"""

from __future__ import annotations

import argparse
import inspect
import json
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from .cache import DEFAULT_CACHE_DIR
from .config import LintConfig, find_pyproject
from .engine import run_lint
from .findings import LintReport
from .fix import FIXABLE_RULES, apply_fixes, plan_fixes, render_diff
from .registry import all_rules
from .sarif import to_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

FORMATS = ("human", "json", "sarif")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "cdelint — determinism & measurement-integrity linter for the "
            "Counting-in-the-Dark reproduction (rules: docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default=None, dest="format",
        help="report format on stdout (default: human)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule IDs to run (default: all registered)",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT", type=Path,
        help="pyproject.toml to read [tool.cdelint] from "
             "(default: nearest to the first path)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml and use built-in defaults",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", type=Path, default=None,
        help=f"incremental-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help=f"apply mechanical autofixes ({', '.join(FIXABLE_RULES)}) "
             f"and exit",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="with --fix: print the unified diff instead of writing files",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print a rule's rationale and fix guidance, then exit "
             "(accepts CDE020, a bare 20, or a name like "
             "address-provenance)",
    )
    parser.add_argument(
        "--topology", action="store_true",
        help="print the proven component topology (cdetopo) instead of "
             "findings: roles, ingress/egress reachability, forwards, "
             "logs and cache ownership per component",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="report only findings in git-dirty files and the files "
             "whose functions transitively call into them",
    )
    parser.add_argument(
        "--warn-unused-suppressions", action="store_true",
        help="flag suppression comments that waived no finding (CDE014)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print a per-rule timing breakdown to stderr after the run "
             "(stdout report stays byte-identical)",
    )
    return parser


def _load_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        return LintConfig()
    pyproject: Optional[Path] = args.config
    if pyproject is None:
        pyproject = find_pyproject(Path(args.paths[0]).resolve())
    if pyproject is None:
        return LintConfig()
    return LintConfig.from_pyproject(pyproject)


def _run_fix(args: argparse.Namespace, config: LintConfig,
             select: Optional[list[str]]) -> int:
    fixes = plan_fixes(args.paths, config=config, select=select)
    changed = [fix for fix in fixes if fix.changed]
    if args.diff:
        sys.stdout.write(render_diff(changed))
        print(f"cdelint --fix: would rewrite {len(changed)} file(s)"
              if changed else "cdelint --fix: nothing to fix")
        return EXIT_CLEAN
    written = apply_fixes(changed)
    for fix in changed:
        for note in fix.notes:
            print(note)
    print(f"cdelint --fix: rewrote {written} file(s)"
          if written else "cdelint --fix: nothing to fix")
    return EXIT_CLEAN


def _resolve_rule(token: str) -> Optional[str]:
    """``CDE020``, a bare ``20`` or a ``rule-name`` slug -> registry id."""
    registry = all_rules()
    wanted = token.strip().upper()
    if wanted in registry:
        return wanted
    if wanted.isdigit():
        padded = f"CDE{int(wanted):03d}"
        if padded in registry:
            return padded
    slug = token.strip().lower().replace("_", "-")
    for rule_id, rule_cls in registry.items():
        if rule_cls.name.lower().replace("_", "-") == slug:
            return rule_id
    return None


def _explain(rule_id: str) -> int:
    """Print one rule's docstring (rationale, examples, fix guidance)."""
    registry = all_rules()
    wanted = _resolve_rule(rule_id)
    rule_cls = registry.get(wanted) if wanted is not None else None
    if wanted is None or rule_cls is None:
        known = ", ".join(registry)
        print(f"cdelint: error: unknown rule id {rule_id!r} (known: {known})",
              file=sys.stderr)
        return EXIT_USAGE
    print(f"{wanted}  {rule_cls.name}")
    print(f"  {rule_cls.summary}")
    doc = inspect.getdoc(rule_cls)
    if doc:
        print()
        for line in doc.splitlines():
            print(f"  {line}" if line else "")
    return EXIT_CLEAN


def _run_topology(args: argparse.Namespace, fmt: str) -> int:
    """``--topology``: print the proven component graph and exit.

    Reuses stage 1 of the engine (content-hashed summaries), so a warm
    cache serves the report without re-parsing a single file; the
    document is sorted throughout and therefore byte-deterministic.
    """
    from .module import ModuleParseError
    from .topo import build_topology, collect_summaries, render_topology_human

    try:
        config = _load_config(args)
        cache_dir: Optional[Path] = None
        if not args.no_cache:
            cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
        summaries = collect_summaries(args.paths, config,
                                      cache_dir=cache_dir)
    except (ModuleParseError, ValueError, OSError) as exc:
        print(f"cdelint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    doc = build_topology(summaries, config)
    if fmt == "json":
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_topology_human(doc))
    return EXIT_CLEAN


def _git_changed_rels() -> frozenset[str]:
    """Rel paths of git-dirty ``.py`` files (staged, unstaged, untracked).

    Paths come out of ``git status --porcelain`` relative to the repo
    root; they are re-relativised against the working directory so they
    match the rel paths the engine reports.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True, timeout=30,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain", "--no-renames"],
            capture_output=True, text=True, check=True, timeout=30,
        ).stdout
    except (OSError, subprocess.SubprocessError) as exc:
        raise ValueError(f"--changed requires a git checkout: {exc}") from exc
    rels: set[str] = set()
    cwd = Path.cwd().resolve()
    for line in status.splitlines():
        if len(line) < 4:
            continue
        candidate = line[3:].strip().strip('"')
        if not candidate.endswith(".py"):
            continue
        absolute = (Path(top) / candidate).resolve()
        try:
            rels.add(absolute.relative_to(cwd).as_posix())
        except ValueError:
            rels.add(absolute.as_posix())
    return frozenset(rels)


def _print_stats(report: LintReport) -> None:
    """Per-rule timing breakdown (``--stats``), slowest first, to stderr.

    Stderr so the stdout report — human, ``--json`` or ``--format
    sarif`` — stays byte-identical with and without the flag; CI's
    cold/warm identity check composes with ``--stats`` for free.
    """
    timings = report.rule_timings
    total = sum(timings.values())
    print("cdelint --stats: per-rule analysis time "
          f"({report.files_checked} file(s))", file=sys.stderr)
    ranked = sorted(timings.items(), key=lambda kv: (-kv[1], kv[0]))
    for rule_id, seconds in ranked:
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {rule_id:<8} {seconds * 1000.0:9.2f} ms  {share:5.1f}%",
              file=sys.stderr)
    print(f"  {'total':<8} {total * 1000.0:9.2f} ms", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.as_json and args.format not in (None, "json"):
        print("cdelint: error: --json conflicts with --format "
              f"{args.format}", file=sys.stderr)
        return EXIT_USAGE
    fmt = args.format or ("json" if args.as_json else "human")

    if args.list_rules:
        for rule_id, rule_cls in all_rules().items():
            print(f"{rule_id}  {rule_cls.name:<22} {rule_cls.summary}")
        return EXIT_CLEAN
    if args.explain:
        return _explain(args.explain)
    if args.topology:
        if fmt == "sarif":
            print("cdelint: error: --topology has no SARIF form "
                  "(use --json or the default table)", file=sys.stderr)
            return EXIT_USAGE
        return _run_topology(args, fmt)

    try:
        config = _load_config(args)
        select = args.select.split(",") if args.select else None
        if args.fix:
            return _run_fix(args, config, select)
        cache_dir: Optional[Path] = None
        if not args.no_cache:
            cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
        changed_only: Optional[frozenset[str]] = None
        if args.changed:
            changed_only = _git_changed_rels()
            if not changed_only:
                print("cdelint --changed: no dirty .py files, nothing to do")
                return EXIT_CLEAN
        report = run_lint(
            args.paths, config=config, select=select, cache_dir=cache_dir,
            warn_unused_suppressions=args.warn_unused_suppressions,
            changed_only=changed_only)
    except (ValueError, OSError) as exc:
        print(f"cdelint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if fmt == "json":
        json.dump(report.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif fmt == "sarif":
        json.dump(to_sarif(report), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        if report.changed_scope is not None:
            print(f"cdelint --changed: reporting on "
                  f"{len(report.changed_scope)} file(s) in the dirty "
                  f"subgraph")
        print(report.render_human())
    if args.stats:
        _print_stats(report)
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS
