"""Command-line front end: ``python -m repro.lint [paths]``.

Exit codes: ``0`` clean, ``1`` findings (or parse errors), ``2`` usage /
configuration errors — the convention CI and the committed
``LINT_baseline.json`` rely on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .config import LintConfig, find_pyproject
from .engine import run_lint
from .registry import all_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "cdelint — determinism & measurement-integrity linter for the "
            "Counting-in-the-Dark reproduction (rules: docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule IDs to run (default: all registered)",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT", type=Path,
        help="pyproject.toml to read [tool.cdelint] from "
             "(default: nearest to the first path)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml and use built-in defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _load_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        return LintConfig()
    pyproject: Optional[Path] = args.config
    if pyproject is None:
        pyproject = find_pyproject(Path(args.paths[0]).resolve())
    if pyproject is None:
        return LintConfig()
    return LintConfig.from_pyproject(pyproject)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in all_rules().items():
            print(f"{rule_id}  {rule_cls.name:<22} {rule_cls.summary}")
        return EXIT_CLEAN

    try:
        config = _load_config(args)
        select = args.select.split(",") if args.select else None
        report = run_lint(args.paths, config=config, select=select)
    except (ValueError, OSError) as exc:
        print(f"cdelint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.as_json:
        json.dump(report.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(report.render_human())
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS
