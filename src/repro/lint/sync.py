"""Replica-equivalence matching for cdesync (CDE015).

Given a *replica binding* — a fused fast-path function declared (via a
``# cdelint: replica-of=<dotted.path>`` marker or the ``[tool.cdelint]
replicas`` config) to mirror a structured original — this module
compiles both functions' stored effect traces (:mod:`repro.lint.trace`)
into epsilon-NFAs over a canonical token alphabet and decides **trace
inclusion**: every observable-effect sequence the replica can produce
must be producible by the original.  A sequence the original cannot
produce is *replica drift*, reported with a dual witness: the first
diverging replica effect (with its call-hop chain) and the effects the
original expects at that point.

Canonical alphabet
==================

``rng:<method>``
    A draw, by canonical method.  Resolved through the config RNG-
    callable table; ``randrange``/``randint`` calls and folded
    ``getrandbits`` retry loops all canonicalize to ``rng:randbelow``,
    and the inlined Box-Muller block to ``rng:gauss``, so a fused
    rejection-sampling idiom compares equal to the structured call.

``clock``
    A virtual-clock write (``_now`` assignment, however reached).

``mut:<attr>``
    A mutation of an observable state attribute (config
    ``trace_state_attrs``), receiver-blind and amount-blind: adjacent
    equal mutations collapse, so ``misses += 2`` equals two successive
    ``misses += 1`` bumps.  Mutations of non-listed attributes and of
    config ``trace_containers`` scratch slots are unobservable.

``sync:<original>``
    A call into a bound pair, from either side.  On the replica side a
    call to a replica *or* its original canonicalizes to the sync token
    (the fused fallback idiom ``if not _fused_x(...): real_x(...)``
    collapses, because adjacent sync tokens also absorb).  On the
    original side a call to a bound original offers both the sync token
    and its full expansion, so delegating and inlining replicas match
    the same original.

Calls outside the alphabet expand through the conservative name-bound
call graph with an always-present empty alternative (open-world calls
may be pure), cycle-guarded and depth-bounded: original-side callee
effects are optional context, replica-side effects are mandatory
obligations.  That asymmetry is the point — the replica cannot invent
or reorder observable effects the original does not perform in that
order, which is exactly the seeded byte-identity contract the fused
fast path claims.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .callgraph import CallGraph, FunctionSummary, ModuleSummary
from .config import LintConfig

#: Maximum call-expansion depth below a compared function.
MAX_DEPTH = 12
#: Soft cap on NFA transitions per compiled side; expansions degrade to
#: their empty alternative beyond it (deterministically).
STATE_BUDGET = 120_000
#: Cap on product states explored per pair before giving up (no finding).
VISIT_BUDGET = 300_000
#: Candidates considered per name-bound call expansion.
MAX_CANDIDATES = 8


@dataclass(frozen=True)
class TokenMeta:
    """Where a token edge came from, for witnesses."""

    rel: str
    line: int
    hops: tuple[str, ...]

    def describe(self) -> str:
        chain = "->".join(self.hops) if self.hops else "?"
        return f"{chain} at {self.rel}:{self.line}"


@dataclass(frozen=True)
class Binding:
    """One replica pair: ``replica_key`` claims to mirror ``original_key``."""

    replica_key: str
    original_key: str
    line: int
    checked: bool
    spec: str


@dataclass(frozen=True)
class BindingError:
    rel: str
    line: int
    qualname: str
    message: str


@dataclass
class Violation:
    """First point where the replica's trace leaves the original's."""

    kind: str                      # "token" or "accept"
    token: str = ""
    meta: Optional[TokenMeta] = None
    expected: tuple[tuple[str, TokenMeta], ...] = ()


@dataclass(frozen=True)
class SyncTables:
    """Config-derived canonicalization tables."""

    rng_map: dict[str, str] = field(default_factory=dict)
    containers: frozenset[str] = frozenset()
    state_attrs: frozenset[str] = frozenset()

    @classmethod
    def from_config(cls, config: LintConfig) -> "SyncTables":
        rng_map: dict[str, str] = {}
        for entry in config.trace_rng_callables:
            name, _, method = entry.partition("=")
            if name.strip() and method.strip():
                rng_map[name.strip()] = method.strip()
        return cls(rng_map=rng_map,
                   containers=frozenset(config.trace_containers),
                   state_attrs=frozenset(config.trace_state_attrs))


# ---------------------------------------------------------------------------
# binding collection
# ---------------------------------------------------------------------------

def resolve_dotted(summaries: dict[str, ModuleSummary],
                   dotted: str) -> Optional[str]:
    """``repro.net.network.Network._traverse`` -> ``<rel>::<qualname>``."""
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        suffix = "/".join(parts[:split]) + ".py"
        qualname = ".".join(parts[split:])
        for rel in sorted(summaries):
            if not ("/" + rel).endswith("/" + suffix):
                continue
            if any(f.qualname == qualname
                   for f in summaries[rel].functions):
                return f"{rel}::{qualname}"
    return None


def collect_bindings(
    summaries: dict[str, ModuleSummary], config: LintConfig,
) -> tuple[list[Binding], list[BindingError]]:
    """Marker- and config-declared replica pairs, resolved to node keys."""
    assumed = tuple(config.replicas_assume)
    bindings: list[Binding] = []
    errors: list[BindingError] = []
    declarations: list[tuple[str, int, str, str]] = []

    for rel in sorted(summaries):
        for func in summaries[rel].functions:
            if func.replica_of:
                declarations.append(
                    (f"{rel}::{func.qualname}", func.line, func.replica_of,
                     func.qualname))
    for entry in config.replicas:
        spec, _, dotted = entry.partition("=")
        spec, dotted = spec.strip(), dotted.strip()
        if not spec or not dotted:
            continue
        suffix, _, qualname = spec.partition("::")
        for rel in sorted(summaries):
            if not ("/" + rel).endswith("/" + suffix.lstrip("/")):
                continue
            for func in summaries[rel].functions:
                if func.qualname == qualname:
                    declarations.append(
                        (f"{rel}::{qualname}", func.line, dotted, qualname))

    seen: set[str] = set()
    for replica_key, line, dotted, qualname in declarations:
        if replica_key in seen:
            continue
        seen.add(replica_key)
        rel = replica_key.split("::", 1)[0]
        original_key = resolve_dotted(summaries, dotted)
        if original_key is None:
            errors.append(BindingError(
                rel=rel, line=line, qualname=qualname,
                message=(f"replica-of target {dotted!r} does not resolve "
                         f"to a project function")))
            continue
        checked = not any(
            ("/" + replica_key).endswith("/" + waived.lstrip("/"))
            for waived in assumed)
        bindings.append(Binding(replica_key=replica_key,
                                original_key=original_key, line=line,
                                checked=checked, spec=dotted))
    bindings.sort(key=lambda b: (b.replica_key, b.original_key))
    return bindings, errors


# ---------------------------------------------------------------------------
# NFA construction
# ---------------------------------------------------------------------------

Edge = tuple[Optional[str], int, Optional[TokenMeta]]


class Nfa:
    """Epsilon-NFA over canonical tokens; both exits accept."""

    def __init__(self) -> None:
        self.edges: list[list[Edge]] = []
        self.start = self.new_state()
        self.accepts: set[int] = set()

    def new_state(self) -> int:
        self.edges.append([])
        return len(self.edges) - 1

    def add(self, src: int, label: Optional[str], dst: int,
            meta: Optional[TokenMeta] = None) -> None:
        self.edges[src].append((label, dst, meta))


@dataclass
class _Ctx:
    key: str
    rel: str
    depth: int
    rtarget: int
    etarget: int
    loops: list[tuple[int, int]]          # (break target, continue target)
    hops: tuple[str, ...]
    stack: frozenset[str]


class SyncIndex:
    """Lookup tables shared by every pair check of one run."""

    def __init__(self, summaries: dict[str, ModuleSummary],
                 graph: CallGraph, tables: SyncTables,
                 bindings: Iterable[Binding]):
        self.summaries = summaries
        self.graph = graph
        self.tables = tables
        self._traces: dict[str, Optional[list]] = {}
        self._functions: dict[str, FunctionSummary] = {}
        for rel, summary in summaries.items():
            for func in summary.functions:
                self._functions[f"{rel}::{func.qualname}"] = func
        #: simple callee name -> sync token label (the original qualname)
        self.sync_by_name: dict[str, str] = {}
        #: simple names that are bound *originals* (get the dual arm)
        self.original_names: set[str] = set()
        for binding in bindings:
            label = binding.original_key.split("::", 1)[1]
            replica_name = binding.replica_key.split("::", 1)[1].split(".")[-1]
            original_name = label.split(".")[-1]
            self.sync_by_name[replica_name] = label
            self.sync_by_name[original_name] = label
            self.original_names.add(original_name)

    def function(self, key: str) -> Optional[FunctionSummary]:
        return self._functions.get(key)

    def trace(self, key: str) -> Optional[list]:
        if key not in self._traces:
            func = self._functions.get(key)
            raw = func.trace_json if func is not None else ""
            self._traces[key] = json.loads(raw) if raw else None
        return self._traces[key]


class _Compiler:
    """Compile one side of a pair into an :class:`Nfa`."""

    def __init__(self, index: SyncIndex, side: str):
        self.index = index
        self.side = side              # "replica" | "original"
        self.tables = index.tables
        self.nfa = Nfa()
        #: Original-side callee fragments, one per (key, etarget) — see
        #: :meth:`_fragment`.
        self._fragments: dict[tuple[str, int], tuple[int, int]] = {}
        #: Keys whose fragment body is currently being compiled, with
        #: the first fragment registered for each — recursive chains
        #: that keep minting fresh exception targets (a cycle through a
        #: ``try`` body) link back here instead of recursing forever.
        self._building: dict[str, tuple[int, int]] = {}

    # -- public entry -------------------------------------------------------

    def compile(self, key: str) -> Nfa:
        nfa = self.nfa
        raise_exit = nfa.new_state()
        end = nfa.new_state()
        nfa.accepts = {raise_exit, end}
        func = self.index.function(key)
        qualname = func.qualname if func is not None else key
        ctx = _Ctx(key=key, rel=key.split("::", 1)[0], depth=0,
                   rtarget=end, etarget=raise_exit, loops=[],
                   hops=(qualname,), stack=frozenset({key}))
        trace = self.index.trace(key)
        exit_state = (self.node(trace, nfa.start, ctx)
                      if trace is not None else nfa.start)
        nfa.add(exit_state, None, end)
        return nfa

    # -- tree walk ----------------------------------------------------------

    def node(self, tree: list, s: int, ctx: _Ctx) -> int:
        kind = tree[0]
        nfa = self.nfa
        if kind == "seq":
            for child in tree[1]:
                s = self.node(child, s, ctx)
            return s
        if kind == "alt":
            exit_state = nfa.new_state()
            for arm in tree[1]:
                arm_exit = self.node(arm, s, ctx)
                nfa.add(arm_exit, None, exit_state)
            return exit_state
        if kind == "loop":
            exit_state = nfa.new_state()
            ctx.loops.append((exit_state, s))
            body_exit = self.node(tree[1], s, ctx)
            ctx.loops.pop()
            nfa.add(body_exit, None, s)
            nfa.add(s, None, exit_state)
            return exit_state
        if kind == "while":
            # s -> test -> (exit | body -> back to s).
            entry = nfa.new_state()
            nfa.add(s, None, entry)
            test_exit = self.node(tree[1], entry, ctx)
            exit_state = nfa.new_state()
            nfa.add(test_exit, None, exit_state)
            ctx.loops.append((exit_state, entry))
            body_exit = self.node(tree[2], test_exit, ctx)
            ctx.loops.pop()
            nfa.add(body_exit, None, entry)
            return exit_state
        if kind == "try":
            exit_state = nfa.new_state()
            dispatch = nfa.new_state()
            # An unmatched exception type keeps propagating.
            nfa.add(dispatch, None, ctx.etarget)
            inner = _Ctx(key=ctx.key, rel=ctx.rel, depth=ctx.depth,
                         rtarget=ctx.rtarget, etarget=dispatch,
                         loops=ctx.loops, hops=ctx.hops, stack=ctx.stack)
            body_exit = self.node(tree[1], s, inner)
            nfa.add(body_exit, None, exit_state)
            for handler in tree[2]:
                handler_exit = self.node(handler, dispatch, ctx)
                nfa.add(handler_exit, None, exit_state)
            return exit_state
        if kind == "ret":
            nfa.add(s, None, ctx.rtarget)
            return nfa.new_state()
        if kind == "raise":
            nfa.add(s, None, ctx.etarget)
            return nfa.new_state()
        if kind == "brk":
            if ctx.loops:
                nfa.add(s, None, ctx.loops[-1][0])
            return nfa.new_state()
        if kind == "cont":
            if ctx.loops:
                nfa.add(s, None, ctx.loops[-1][1])
            return nfa.new_state()
        if kind == "call":
            return self.call(tree[1], tree[2], s, ctx)
        if kind == "mut":
            return self.mutation(tree[1], tree[2], s, ctx)
        if kind == "rb":
            return self.randbelow(tree[1], tree[2], s, ctx)
        if kind == "gauss":
            return self.token(s, "rng:gauss", tree[1], ctx)
        if kind == "layout":
            return s  # object construction is unobservable (CDE016's job)
        return s  # pragma: no cover - unknown node kinds are inert

    # -- leaves -------------------------------------------------------------

    def token(self, s: int, label: str, line: int, ctx: _Ctx) -> int:
        dst = self.nfa.new_state()
        self.nfa.add(s, label, dst,
                     TokenMeta(rel=ctx.rel, line=line, hops=ctx.hops))
        return dst

    def mutation(self, chain: list, line: int, s: int, ctx: _Ctx) -> int:
        # Container precedence: a write that goes through a configured
        # container slot (an index bucket, a memo, the entry table) is
        # scratch bookkeeping — the fused log replay appends through
        # pre-captured bucket aliases no static chain can track, so
        # container *contents* are runtime-verified, while the stat
        # counters that always accompany them stay mandatory here.
        if any(str(part) in self.tables.containers for part in chain):
            return s
        label = str(chain[-1]).lstrip("_")
        if label == "now":
            return self.token(s, "clock", line, ctx)
        if label in self.tables.state_attrs:
            return self.token(s, f"mut:{label}", line, ctx)
        return s

    def randbelow(self, chain: list, line: int, s: int, ctx: _Ctx) -> int:
        method = self.tables.rng_map.get(str(chain[-1]))
        if method is None:
            return s
        if method in ("getrandbits", "randbelow"):
            return self.token(s, "rng:randbelow", line, ctx)
        return self.token(s, f"rng:{method}", line, ctx)

    def call(self, chain: list, line: int, s: int, ctx: _Ctx) -> int:
        name = str(chain[-1])
        # 1. RNG draw through the callable table.
        method = self.tables.rng_map.get(name)
        if method is not None:
            label = "rng:randbelow" if method == "randbelow" else (
                f"rng:{method}")
            return self.token(s, label, line, ctx)
        # 2. Bound-pair calls canonicalize to sync tokens.
        sync_label = self.index.sync_by_name.get(name)
        if sync_label is not None:
            if self.side == "replica":
                dst = self.token(s, f"sync:{sync_label}", line, ctx)
                self.nfa.add(dst, None, ctx.etarget)  # callee may raise
                return dst
            exit_state = self.nfa.new_state()
            dst = self.token(s, f"sync:{sync_label}", line, ctx)
            self.nfa.add(dst, None, ctx.etarget)
            self.nfa.add(dst, None, exit_state)
            self.expand(name, line, s, ctx, exit_state, allow_empty=False)
            return exit_state
        # 3. Container reads/helpers are unobservable.
        if any(str(part) in self.tables.containers for part in chain[:-1]):
            return s
        # 4. Open-world expansion with an empty alternative.
        exit_state = self.nfa.new_state()
        self.nfa.add(s, None, exit_state)
        self.expand(name, line, s, ctx, exit_state, allow_empty=True)
        return exit_state

    def expand(self, name: str, line: int, s: int, ctx: _Ctx,
               exit_state: int, allow_empty: bool) -> None:
        if ctx.depth >= MAX_DEPTH:
            return
        if len(self.nfa.edges) > STATE_BUDGET:
            return
        candidates = [key for key in self.index.graph.bound_keys(name)
                      if key not in ctx.stack][:MAX_CANDIDATES]
        for key in candidates:
            trace = self.index.trace(key)
            if trace is None:
                continue
            if self.side == "original":
                fragment = self._fragment(key, ctx)
                if fragment is not None:
                    entry, fragment_exit = fragment
                    self.nfa.add(s, None, entry)
                    self.nfa.add(fragment_exit, None, exit_state)
                continue
            func = self.index.function(key)
            qualname = func.qualname if func is not None else key
            entry = self.nfa.new_state()
            self.nfa.add(s, None, entry)
            inner = _Ctx(key=key, rel=key.split("::", 1)[0],
                         depth=ctx.depth + 1, rtarget=exit_state,
                         etarget=ctx.etarget, loops=[],
                         hops=ctx.hops + (qualname,),
                         stack=ctx.stack | {key})
            body_exit = self.node(trace, entry, inner)
            self.nfa.add(body_exit, None, exit_state)

    def _fragment(self, key: str,
                  ctx: _Ctx) -> Optional[tuple[int, int]]:
        """One shared (entry, exit) sub-NFA per original-side callee.

        Every call site of ``key`` under the same exception target links
        the same fragment, so the compiled size is linear in the trace
        set instead of exponential in call depth.  Sharing merges paths
        across call sites (entering from one site can exit toward
        another's continuation) and turns recursion into loops — both
        strictly *widen* the original's language, which is the sound
        direction for an inclusion check: the replica side stays
        per-site exact, so widening the original can only make the
        checker more permissive, never invent a drift finding.
        """
        trace = self.index.trace(key)
        if trace is None:
            return None
        memo_key = (key, ctx.etarget)
        cached = self._fragments.get(memo_key)
        if cached is not None:
            return cached
        in_progress = self._building.get(key)
        if in_progress is not None:
            return in_progress
        nfa = self.nfa
        entry = nfa.new_state()
        fragment_exit = nfa.new_state()
        # Register before compiling the body so recursive calls link
        # back to this same fragment instead of recursing.
        self._fragments[memo_key] = (entry, fragment_exit)
        self._building[key] = (entry, fragment_exit)
        func = self.index.function(key)
        qualname = func.qualname if func is not None else key
        inner = _Ctx(key=key, rel=key.split("::", 1)[0], depth=0,
                     rtarget=fragment_exit, etarget=ctx.etarget, loops=[],
                     hops=ctx.hops + (qualname,), stack=frozenset())
        body_exit = self.node(trace, entry, inner)
        nfa.add(body_exit, None, fragment_exit)
        del self._building[key]
        return (entry, fragment_exit)


# ---------------------------------------------------------------------------
# inclusion check
# ---------------------------------------------------------------------------

def _collapsible(label: str) -> bool:
    return (label == "clock" or label.startswith("mut:")
            or label.startswith("sync:"))


class _Product:
    """On-the-fly check of collapse(L(replica)) within collapse(L(orig))."""

    def __init__(self, replica: Nfa, original: Nfa):
        self.replica = replica
        self.original = original
        self._closure_cache: dict[frozenset[int], frozenset[int]] = {}
        self._move_cache: dict[tuple[frozenset[int], str],
                               frozenset[int]] = {}

    def closure(self, states: frozenset[int]) -> frozenset[int]:
        cached = self._closure_cache.get(states)
        if cached is not None:
            return cached
        out = set(states)
        stack = list(states)
        edges = self.original.edges
        while stack:
            for label, dst, _meta in edges[stack.pop()]:
                if label is None and dst not in out:
                    out.add(dst)
                    stack.append(dst)
        result = frozenset(out)
        self._closure_cache[states] = result
        return result

    def move(self, states: frozenset[int], token: str) -> frozenset[int]:
        key = (states, token)
        cached = self._move_cache.get(key)
        if cached is not None:
            return cached
        edges = self.original.edges
        base = {dst for s in states for label, dst, _m in edges[s]
                if label == token}
        out = self.closure(frozenset(base)) if base else frozenset()
        if out and _collapsible(token):
            # Absorb the original's own adjacent duplicates.
            while True:
                extra = {dst for s in out for label, dst, _m in edges[s]
                         if label == token} - out
                if not extra:
                    break
                out = out | self.closure(frozenset(extra))
        self._move_cache[key] = out
        return out

    def expected(self, states: frozenset[int]) -> tuple[
            tuple[str, TokenMeta], ...]:
        found: dict[str, TokenMeta] = {}
        for s in sorted(states):
            for label, _dst, meta in self.original.edges[s]:
                if label is not None and meta is not None:
                    current = found.get(label)
                    if current is None or (meta.line, meta.rel) < (
                            current.line, current.rel):
                        found[label] = meta
        return tuple(sorted(found.items()))

    def check(self) -> Optional[Violation]:
        start = self.closure(frozenset({self.original.start}))
        initial = (self.replica.start, "", start)
        queue: list[tuple[int, str, frozenset[int]]] = [initial]
        seen: set[tuple[int, str, frozenset[int]]] = {initial}
        head = 0
        accepts = self.original.accepts
        while head < len(queue):
            if len(seen) > VISIT_BUDGET:
                return None  # out of budget: give up, never guess
            r, last, states = queue[head]
            head += 1
            if (r in self.replica.accepts
                    and not (states & accepts)):
                return Violation(kind="accept",
                                 expected=self.expected(states))
            for label, dst, meta in self.replica.edges[r]:
                if label is None:
                    nxt = (dst, last, states)
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
                    continue
                if _collapsible(label) and label == last:
                    # The replica's own adjacent duplicate: absorbed.
                    nxt = (dst, last, states)
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
                    continue
                moved = self.move(states, label)
                if not moved:
                    return Violation(kind="token", token=label, meta=meta,
                                     expected=self.expected(states))
                carry = label if _collapsible(label) else ""
                nxt = (dst, carry, moved)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return None


def check_pair(index: SyncIndex, binding: Binding) -> Optional[Violation]:
    """Compile both sides of ``binding`` and decide trace inclusion."""
    replica_nfa = _Compiler(index, "replica").compile(binding.replica_key)
    original_nfa = _Compiler(index, "original").compile(binding.original_key)
    return _Product(replica_nfa, original_nfa).check()


# ---------------------------------------------------------------------------
# run digest (for warm-cache replay of CDE015 findings)
# ---------------------------------------------------------------------------

def sync_digest(summaries: dict[str, ModuleSummary],
                config: LintConfig) -> str:
    """Digest of every input the CDE015 verdicts depend on."""
    hasher = hashlib.sha256()
    hasher.update(config.config_hash().encode())
    for rel in sorted(summaries):
        summary = summaries[rel]
        hasher.update(rel.encode())
        for func in summary.functions:
            if func.trace_json or func.replica_of:
                hasher.update(func.qualname.encode())
                hasher.update(str(func.line).encode())
                hasher.update(func.replica_of.encode())
                hasher.update(func.trace_json.encode())
        for name, fields in sorted(summary.dataclass_fields.items()):
            hasher.update(name.encode())
            hasher.update("|".join(fields).encode())
    return hasher.hexdigest()[:24]
