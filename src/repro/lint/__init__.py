"""cdelint — AST-based determinism & measurement-integrity linter.

The paper's counting techniques attribute every query observed at the
authoritative server to exactly one cache miss; that attribution only
holds while the reproduction stays deterministic (virtual clock, seeded
RNG streams, ordered result paths, pure shard workers).  cdelint encodes
those invariants as machine-checked rules:

========  ======================  ==========================================
Rule      Name                    Invariant
========  ======================  ==========================================
CDE001    wall-clock              time flows only from ``SimClock``
CDE002    seeded-randomness       draws flow only from seeded streams
CDE003    unordered-iteration     set iteration order never reaches rows
CDE004    shard-purity            shard output is a function of ShardTask
CDE005    mutable-default         no state shared through default args
CDE006    public-annotations      public APIs feed the strict mypy gate
CDE007    effect-contract         no CLOCK/RNG/IO/ENV reachable from roots
CDE008    layering                imports follow the architecture DAG
CDE009    rng-stream-hygiene      one stream label, one drawing call site
CDE010    timing-taint            raw latencies reach sinks only classified
CDE011    world-provenance        no world RNG/log state on merge paths
CDE012    capture-safety          shard workers capture no mutable state
CDE013    error-provenance        probe handlers keep failure history
CDE014    unused-suppression      waivers must waive something (opt-in)
========  ======================  ==========================================

CDE004 and CDE007–CDE009 are whole-program rules: they run on a
project-wide call graph with fixed-point effect signatures
(:mod:`repro.lint.effects`), cached incrementally under
``.cdelint_cache/``.  CDE010–CDE013 are dataflow rules: cdeflow
(:mod:`repro.lint.dataflow` / :mod:`repro.lint.taint`) computes
per-function def-use chains and lifts them interprocedurally through
the same summaries, so every finding carries a source→sink witness
chain.  Run ``python -m repro.lint src/`` (``--format
json|sarif`` for machine-readable reports, ``--fix`` for mechanical
autofixes); suppress a deliberate exception with
``# cdelint: disable=CDE00x`` on the flagged line.  Configuration lives
in ``[tool.cdelint]`` in pyproject.toml; rationale in
docs/STATIC_ANALYSIS.md, layering in docs/ARCHITECTURE.md.
"""

from __future__ import annotations

from .callgraph import CallGraph, ModuleSummary, summarize_module
from .config import LintConfig
from .dataflow import FlowEdge, FlowResult, analyze_function
from .effects import Effect, EffectAnalysis
from .engine import iter_python_files, run_lint
from .findings import JSON_SCHEMA_VERSION, Finding, LintReport
from .fix import FIXABLE_RULES, apply_fixes, plan_fixes, render_diff
from .registry import ProjectContext, Rule, all_rules, register
from .sarif import to_sarif
from .taint import TaintFlow, TaintSpec, propagate

__all__ = [
    "CallGraph",
    "Effect",
    "EffectAnalysis",
    "FIXABLE_RULES",
    "Finding",
    "FlowEdge",
    "FlowResult",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintReport",
    "ModuleSummary",
    "ProjectContext",
    "Rule",
    "TaintFlow",
    "TaintSpec",
    "all_rules",
    "analyze_function",
    "apply_fixes",
    "iter_python_files",
    "plan_fixes",
    "propagate",
    "register",
    "render_diff",
    "run_lint",
    "summarize_module",
    "to_sarif",
]
