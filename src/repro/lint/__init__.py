"""cdelint — AST-based determinism & measurement-integrity linter.

The paper's counting techniques attribute every query observed at the
authoritative server to exactly one cache miss; that attribution only
holds while the reproduction stays deterministic (virtual clock, seeded
RNG streams, ordered result paths, pure shard workers).  cdelint encodes
those invariants as machine-checked rules:

========  ======================  ==========================================
Rule      Name                    Invariant
========  ======================  ==========================================
CDE001    wall-clock              time flows only from ``SimClock``
CDE002    seeded-randomness       draws flow only from seeded streams
CDE003    unordered-iteration     set iteration order never reaches rows
CDE004    shard-purity            shard output is a function of ShardTask
CDE005    mutable-default         no state shared through default args
CDE006    public-annotations      public APIs feed the strict mypy gate
========  ======================  ==========================================

Run ``python -m repro.lint src/`` (``--json`` for the machine-readable
report); suppress a deliberate exception with
``# cdelint: disable=CDE00x`` on the flagged line.  Configuration lives
in ``[tool.cdelint]`` in pyproject.toml; rationale in
docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

from .config import LintConfig
from .engine import iter_python_files, run_lint
from .findings import JSON_SCHEMA_VERSION, Finding, LintReport
from .registry import ProjectContext, Rule, all_rules, register

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintReport",
    "ProjectContext",
    "Rule",
    "all_rules",
    "iter_python_files",
    "register",
    "run_lint",
]
