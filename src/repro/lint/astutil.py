"""Shared AST utilities for the rule implementations.

The helpers here answer the questions every rule keeps asking: "what
dotted name does this call resolve to, given the module's imports?",
"which enclosing function is this node in?", and "is this expression a
set?".  They are deliberately syntactic — cdelint trades soundness for
zero dependencies and zero configuration, and each rule documents the
approximation it makes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origins their imports bind.

    ``import time`` -> ``{"time": "time"}``; ``import numpy as np`` ->
    ``{"np": "numpy"}``; ``from datetime import datetime as dt`` ->
    ``{"dt": "datetime.datetime"}``.  Relative imports keep their module
    path without the leading dots (``from ..net import rng`` ->
    ``{"rng": "net.rng"}``), which is enough for suffix matching.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = alias.name if alias.asname else alias.name.split(".", 1)[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                origin = f"{base}.{alias.name}" if base else alias.name
                aliases[local] = origin
    return aliases


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def resolve_call_target(node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
    """Dotted call target with its leading import alias expanded."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def walk_with_symbols(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Walk the tree yielding ``(node, enclosing qualname)`` pairs."""

    def visit(node: ast.AST, symbol: str) -> Iterator[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            child_symbol = symbol
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_symbol = f"{symbol}.{child.name}" if symbol else child.name
            yield child, child_symbol
            yield from visit(child, child_symbol)

    yield from visit(tree, "")


def module_level_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """Nodes executed at import time (i.e. not inside any function body).

    Class bodies *are* executed at import time, so they are included;
    function and lambda bodies are not.
    """

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            yield child
            yield from visit(child)

    yield from visit(tree)


_SET_ANNOTATIONS = ("set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                    "MutableSet")
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)


def annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """Whether a type annotation names a set type (``set[str]`` etc.)."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    dotted = dotted_name(target)
    if dotted is None:
        return False
    return dotted.rsplit(".", 1)[-1] in _SET_ANNOTATIONS


def is_set_expression(node: ast.expr, set_names: frozenset[str] = frozenset(),
                      set_returning: frozenset[str] = frozenset()) -> bool:
    """Whether ``node`` evaluates to a set, syntactically.

    ``set_names`` carries local variable names known to hold sets;
    ``set_returning`` carries simple names of callables whose return
    annotation is a set type.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (is_set_expression(node.left, set_names, set_returning)
                or is_set_expression(node.right, set_names, set_returning))
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_METHODS and is_set_expression(
                    func.value, set_names, set_returning):
                return True
            if func.attr in set_returning:
                return True
        if isinstance(func, ast.Name) and func.id in set_returning:
            return True
    return False


def local_set_names(func: ast.AST,
                    set_returning: frozenset[str] = frozenset()) -> frozenset[str]:
    """Variable names bound to set values inside ``func``.

    One forward pass over assignments and annotations; a later rebind to
    a non-set value is *not* tracked (the name stays flagged), which errs
    on the side of reporting — the fix is a ``sorted(...)`` or an
    explicit suppression either way.
    """
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            if is_set_expression(node.value, frozenset(names), set_returning):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and annotation_is_set(
                    node.annotation):
                names.add(node.target.id)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and is_set_expression(
                    node.value, frozenset(names), set_returning):
                names.add(node.target.id)
    return frozenset(names)


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, bool]]:
    """Yield ``(funcdef, qualname, is_method)`` for every def in the module."""

    def visit(node: ast.AST, prefix: str, in_class: bool) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                yield child, qualname, in_class
                yield from visit(child, qualname, False)
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                yield from visit(child, qualname, True)
            else:
                yield from visit(child, prefix, in_class)

    yield from visit(tree, "", False)
