"""repro — reproduction of *Counting in the Dark: DNS Caches Discovery and
Enumeration in the Internet* (Klein, Shulman, Waidner; DSN 2017).

The package builds, inside a deterministic simulator, every system the
paper's measurement study depends on — the DNS protocol, multi-cache
resolution platforms, authoritative hierarchies, browsers and mail servers
— and on top of them the paper's contribution: the Caches Discovery and
Enumeration (CDE) toolkit.

Quick start::

    from repro.study import build_world

    world = build_world(seed=1)
    platform = world.add_platform(n_ingress=2, n_caches=4, n_egress=3)
    report = world.study(platform)
    print(report.cache_count)   # -> 4

Subpackages:

* :mod:`repro.dns` — names, records, messages, zones, wire format.
* :mod:`repro.net` — virtual time, addresses, latency/loss, routing.
* :mod:`repro.cache` — TTL-honouring caches, eviction, software profiles.
* :mod:`repro.server` — authoritative servers, query logs, root hierarchy.
* :mod:`repro.resolver` — load balancing, iterative resolution, stubs.
* :mod:`repro.client` — browsers, ad-network machinery, SMTP servers.
* :mod:`repro.core` — the CDE: enumeration, mapping, bypasses, timing,
  carpet bombing, analysis, TTL checking, resilience, fingerprinting.
* :mod:`repro.study` — populations, simulated Internet, figure/table
  regeneration.
"""

__version__ = "1.0.0"

from . import cache, client, core, dns, net, resolver, server

__all__ = ["cache", "client", "core", "dns", "net", "resolver", "server",
           "__version__"]
