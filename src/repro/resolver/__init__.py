"""Resolution-platform substrate: load balancing, iterative resolution, stubs."""

from .forwarder import ForwardingResolver
from .misbehaving import Misbehavior, MisbehavingResolver
from .multipool import MultiPoolConfig, MultiPoolPlatform, PoolSpec
from .iterative import (
    AnswerKind,
    IterativeResolver,
    ResolutionResult,
    StepResult,
    UpstreamQuery,
)
from .platform import PlatformConfig, PlatformStats, ResolutionPlatform
from .selection import (
    CacheSelector,
    EgressSelector,
    LeastLoadedSelector,
    PinnedEgressSelector,
    QnameHashSelector,
    QueryContext,
    RandomEgressSelector,
    RoundRobinEgressSelector,
    RoundRobinSelector,
    SELECTOR_FACTORIES,
    SourceIpHashSelector,
    StickyRandomSelector,
    UniformRandomSelector,
    make_selector,
)
from .stub import StubAnswer, StubResolver

__all__ = [
    "AnswerKind", "CacheSelector", "EgressSelector", "ForwardingResolver",
    "Misbehavior", "MisbehavingResolver", "MultiPoolConfig",
    "MultiPoolPlatform", "PoolSpec",
    "IterativeResolver", "LeastLoadedSelector", "PinnedEgressSelector",
    "PlatformConfig", "PlatformStats", "QnameHashSelector", "QueryContext",
    "RandomEgressSelector", "ResolutionPlatform", "ResolutionResult",
    "RoundRobinEgressSelector", "RoundRobinSelector", "SELECTOR_FACTORIES",
    "SourceIpHashSelector", "StepResult", "StickyRandomSelector",
    "StubAnswer", "StubResolver", "UniformRandomSelector", "UpstreamQuery",
    "make_selector",
]
