"""The iterative resolution engine.

This is the machinery behind a platform's *egress* function: starting from
the root hints (or the deepest cached delegation), walk referrals down the
namespace, chase CNAME chains, and populate the selected cache with every
RRset learned along the way — answers, NS sets, glue and negative answers.

Faithful infrastructure caching is essential to the paper's techniques: the
names-hierarchy bypass (§IV-B2b) counts caches by the *referral* queries
each cache must send to the parent zone exactly once, which only happens if
delegations (NS + glue) are cached and reused.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..dns.errors import (
    CnameLoopError,
    NetworkUnreachable,
    QueryTimeout,
    ReferralLoopError,
    ResolutionError,
)
from ..dns.message import DnsMessage
from ..dns.name import DnsName
from ..dns.record import CnameRdata, NsRdata, ResourceRecord, RRSet, group_rrsets
from ..dns.rrtype import RCode, RRType
from ..cache.cache import DnsCache
from ..cache.entry import EntryKind
from ..net.rng import fallback_rng

MAX_CNAME_DEPTH = 12
MAX_REFERRALS = 24
MAX_GLUELESS_DEPTH = 4

#: Callback used to reach an upstream server.  Takes (server_ip, query) and
#: returns the response together with the egress IP that was used — the
#: platform binds this to its egress-IP selection and the network.
SendUpstream = Callable[[str, DnsMessage], tuple[DnsMessage, str]]


class AnswerKind(enum.Enum):
    ANSWER = "answer"
    CNAME = "cname"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"


@dataclass
class UpstreamQuery:
    """Trace record of one egress transaction."""

    server_ip: str
    egress_ip: str
    qname: DnsName
    qtype: RRType


@dataclass
class StepResult:
    kind: AnswerKind
    rrset: Optional[RRSet] = None
    soa: Optional[ResourceRecord] = None
    from_cache: bool = False


@dataclass
class ResolutionResult:
    """Outcome of resolving one (qname, qtype)."""

    rcode: RCode
    chain: list[RRSet] = field(default_factory=list)  # CNAME links then answer
    soa: Optional[ResourceRecord] = None
    upstream: list[UpstreamQuery] = field(default_factory=list)

    @property
    def records(self) -> list[ResourceRecord]:
        return [record for rrset in self.chain for record in rrset]

    @property
    def answered_from_cache(self) -> bool:
        return not self.upstream


class IterativeResolver:
    """Resolves names by walking the authoritative hierarchy.

    One engine instance is shared by a platform; per-resolution state (which
    cache to use, how to send) is passed into :meth:`resolve` so the engine
    itself stays stateless and reusable across caches.
    """

    def __init__(self, root_hint_ips: list[str],
                 rng: Optional[random.Random] = None,
                 now: Optional[Callable[[], float]] = None):
        if not root_hint_ips:
            raise ValueError("need at least one root hint")
        self.root_hint_ips = list(root_hint_ips)
        self.rng = rng or fallback_rng("resolver.IterativeResolver")
        self.now = now or (lambda: 0.0)

    # -- public API ---------------------------------------------------------

    def resolve(self, qname: DnsName, qtype: RRType, cache: DnsCache,
                send: SendUpstream) -> ResolutionResult:
        """Resolve, using ``cache`` for reads and writes.

        Raises :class:`ResolutionError` when every path fails (SERVFAIL).
        """
        trace: list[UpstreamQuery] = []
        chain: list[RRSet] = []
        seen_names: set[DnsName] = set()
        current = qname
        for _ in range(MAX_CNAME_DEPTH):
            if current in seen_names:
                raise CnameLoopError(f"CNAME loop at {current}")
            seen_names.add(current)
            step = self._resolve_step(current, qtype, cache, send, trace)
            if step.kind == AnswerKind.ANSWER:
                assert step.rrset is not None
                chain.append(step.rrset)
                return ResolutionResult(RCode.NOERROR, chain, upstream=trace)
            if step.kind == AnswerKind.CNAME:
                assert step.rrset is not None
                chain.append(step.rrset)
                target = step.rrset.records[0].rdata
                assert isinstance(target, CnameRdata)
                if qtype == RRType.CNAME:
                    return ResolutionResult(RCode.NOERROR, chain, upstream=trace)
                current = target.target
                continue
            if step.kind == AnswerKind.NXDOMAIN:
                return ResolutionResult(RCode.NXDOMAIN, chain, soa=step.soa,
                                        upstream=trace)
            return ResolutionResult(RCode.NOERROR, chain, soa=step.soa,
                                    upstream=trace)  # NODATA
        raise CnameLoopError(f"CNAME chain longer than {MAX_CNAME_DEPTH} from {qname}")

    # -- one link of the chain ------------------------------------------------

    def _resolve_step(self, qname: DnsName, qtype: RRType, cache: DnsCache,
                      send: SendUpstream, trace: list[UpstreamQuery],
                      glueless_depth: int = 0) -> StepResult:
        cached = self._from_cache(qname, qtype, cache)
        if cached is not None:
            return cached
        return self._query_authorities(qname, qtype, cache, send, trace,
                                       glueless_depth)

    def _from_cache(self, qname: DnsName, qtype: RRType,
                    cache: DnsCache) -> Optional[StepResult]:
        now = self.now()
        entry = cache.get(qname, qtype, now)
        if entry is not None:
            if entry.kind == EntryKind.POSITIVE:
                return StepResult(AnswerKind.ANSWER, rrset=entry.aged_rrset(now),
                                  from_cache=True)
            if entry.kind == EntryKind.NXDOMAIN:
                return StepResult(AnswerKind.NXDOMAIN, soa=entry.soa, from_cache=True)
            return StepResult(AnswerKind.NODATA, soa=entry.soa, from_cache=True)
        if qtype != RRType.CNAME:
            alias = cache.get(qname, RRType.CNAME, now)
            if alias is not None and alias.kind == EntryKind.POSITIVE:
                return StepResult(AnswerKind.CNAME, rrset=alias.aged_rrset(now),
                                  from_cache=True)
        return None

    # -- walking the hierarchy ------------------------------------------------

    def _query_authorities(self, qname: DnsName, qtype: RRType, cache: DnsCache,
                           send: SendUpstream, trace: list[UpstreamQuery],
                           glueless_depth: int) -> StepResult:
        zone, server_ips = self._closest_known_authority(qname, cache, send,
                                                         trace, glueless_depth)
        visited: set[str] = set()
        for _ in range(MAX_REFERRALS):
            response = self._try_servers(qname, qtype, server_ips, visited,
                                         send, trace)
            if response is None:
                raise ResolutionError(
                    f"no authority for {qname} responded (zone {zone})"
                )
            step = self._ingest_response(qname, qtype, response, cache)
            if step is not None:
                return step
            # Referral: descend.
            new_zone = self._referral_zone(response)
            if new_zone is None or not new_zone.is_strict_subdomain_of(zone):
                raise ReferralLoopError(
                    f"non-descending referral for {qname}: {zone} -> {new_zone}"
                )
            zone = new_zone
            server_ips = self._servers_from_referral(response, cache, send,
                                                     trace, glueless_depth)
            visited = set()
            if not server_ips:
                raise ResolutionError(f"referral to {new_zone} has no reachable servers")
        raise ReferralLoopError(f"referral chain exceeded {MAX_REFERRALS} for {qname}")

    def _try_servers(self, qname: DnsName, qtype: RRType, server_ips: list[str],
                     visited: set[str], send: SendUpstream,
                     trace: list[UpstreamQuery]) -> Optional[DnsMessage]:
        candidates = [ip for ip in server_ips if ip not in visited]
        self.rng.shuffle(candidates)
        for server_ip in candidates:
            visited.add(server_ip)
            query = DnsMessage.make_query(
                qname, qtype,
                msg_id=self.rng.randrange(1 << 16),
                recursion_desired=False,
            )
            try:
                response, egress_ip = send(server_ip, query)
                if response.truncated:
                    response, egress_ip = send(server_ip, query.over_tcp())
            except (QueryTimeout, NetworkUnreachable):
                continue
            trace.append(UpstreamQuery(server_ip, egress_ip, qname, qtype))
            if response.rcode in (RCode.NOERROR, RCode.NXDOMAIN):
                return response
        return None

    def _ingest_response(self, qname: DnsName, qtype: RRType,
                         response: DnsMessage, cache: DnsCache
                         ) -> Optional[StepResult]:
        """Cache everything in the response; ``None`` means it is a referral."""
        now = self.now()
        if response.rcode == RCode.NXDOMAIN:
            soa = next((r for r in response.authority if r.rtype == RRType.SOA), None)
            cache.put_nxdomain(qname, now, soa=soa)
            return StepResult(AnswerKind.NXDOMAIN, soa=soa)

        if response.answers:
            answer_sets = group_rrsets(response.answers)
            for rrset in answer_sets:
                cache.put_rrset(rrset, now)
            direct = next(
                (rrset for rrset in answer_sets
                 if rrset.name == qname and
                 (rrset.rtype == qtype or qtype == RRType.ANY)), None)
            if direct is not None:
                return StepResult(AnswerKind.ANSWER, rrset=direct)
            alias = next(
                (rrset for rrset in answer_sets
                 if rrset.name == qname and rrset.rtype == RRType.CNAME), None)
            if alias is not None:
                return StepResult(AnswerKind.CNAME, rrset=alias)
            # Answer section without our name — treat as NODATA.
            return StepResult(AnswerKind.NODATA)

        if response.is_referral():
            for rrset in group_rrsets(response.authority):
                if rrset.rtype == RRType.NS:
                    cache.put_rrset(rrset, now)
            for rrset in group_rrsets(response.additional):
                if rrset.rtype in (RRType.A, RRType.AAAA):
                    cache.put_rrset(rrset, now)
            return None

        soa = next((r for r in response.authority if r.rtype == RRType.SOA), None)
        cache.put_nodata(qname, qtype, now, soa=soa)
        return StepResult(AnswerKind.NODATA, soa=soa)

    def _referral_zone(self, response: DnsMessage) -> Optional[DnsName]:
        ns = response.authority_of_type(RRType.NS)
        return ns[0].name if ns else None

    def _servers_from_referral(self, response: DnsMessage, cache: DnsCache,
                               send: SendUpstream, trace: list[UpstreamQuery],
                               glueless_depth: int) -> list[str]:
        ips: list[str] = []
        glue = {record.name: record for record in response.additional
                if record.rtype == RRType.A}
        for record in response.authority_of_type(RRType.NS):
            assert isinstance(record.rdata, NsRdata)
            ns_name = record.rdata.nsdname
            glue_record = glue.get(ns_name)
            if glue_record is not None:
                ips.append(glue_record.rdata.address)  # type: ignore[attr-defined]
            else:
                ips.extend(self._resolve_ns_address(ns_name, cache, send, trace,
                                                    glueless_depth))
        return ips

    def _resolve_ns_address(self, ns_name: DnsName, cache: DnsCache,
                            send: SendUpstream, trace: list[UpstreamQuery],
                            glueless_depth: int) -> list[str]:
        """Glueless delegation: resolve the NS host's A record ourselves."""
        if glueless_depth >= MAX_GLUELESS_DEPTH:
            return []
        try:
            step = self._resolve_step(ns_name, RRType.A, cache, send, trace,
                                      glueless_depth + 1)
        except ResolutionError:
            return []
        if step.kind == AnswerKind.ANSWER and step.rrset is not None:
            return [record.rdata.address for record in step.rrset  # type: ignore[attr-defined]
                    if record.rtype == RRType.A]
        return []

    def _closest_known_authority(self, qname: DnsName, cache: DnsCache,
                                 send: SendUpstream, trace: list[UpstreamQuery],
                                 glueless_depth: int
                                 ) -> tuple[DnsName, list[str]]:
        """Deepest zone with a cached NS set whose servers we can address."""
        now = self.now()
        for zone in qname.ancestors(include_self=True):
            entry = cache.get(zone, RRType.NS, now)
            if entry is None or entry.kind != EntryKind.POSITIVE:
                continue
            ips: list[str] = []
            assert entry.rrset is not None
            for record in entry.rrset:
                assert isinstance(record.rdata, NsRdata)
                address_entry = cache.get(record.rdata.nsdname, RRType.A, now)
                if address_entry is not None and \
                        address_entry.kind == EntryKind.POSITIVE:
                    assert address_entry.rrset is not None
                    ips.extend(r.rdata.address for r in address_entry.rrset)  # type: ignore[attr-defined]
            if ips:
                return zone, ips
        from ..dns.name import ROOT

        return ROOT, list(self.root_hint_ips)
