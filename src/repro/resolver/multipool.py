"""Multi-pool resolution platforms.

The paper's ingress→cache mapping technique (§IV-B1b) exists because large
operators do *not* put every ingress address in front of one cache pool:
anycast sites, regional clusters and tiered deployments partition the
ingress addresses into groups, each group fronting its own set of caches.
The honey-record clustering discovers that partition from the outside.

:class:`MultiPoolPlatform` models exactly this: a set of named pools, each
an independent :class:`~repro.resolver.platform.ResolutionPlatform` (its
own caches, selector and egress addresses), presented to the world as one
service.  Ground truth — which ingress IP belongs to which pool — is
exposed for experiment validation only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..net.network import LinkProfile, Network
from ..net.rng import fallback_rng
from .platform import PlatformConfig, ResolutionPlatform
from .selection import CacheSelector


@dataclass
class PoolSpec:
    """One cache pool and the ingress addresses it serves."""

    name: str
    ingress_ips: list[str]
    egress_ips: list[str]
    n_caches: int
    cache_selector: Optional[CacheSelector] = None


@dataclass
class MultiPoolConfig:
    name: str
    pools: list[PoolSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pools:
            raise ValueError("multi-pool platform needs at least one pool")
        seen: set[str] = set()
        for pool in self.pools:
            overlap = seen & set(pool.ingress_ips)
            if overlap:
                raise ValueError(f"ingress IPs assigned twice: {overlap}")
            seen.update(pool.ingress_ips)


# cdelint: component=anycast-ingress
class MultiPoolPlatform:
    """Several cache pools behind one logical service."""

    def __init__(self, config: MultiPoolConfig, network: Network,
                 root_hint_ips: list[str],
                 rng: Optional[random.Random] = None):
        self.config = config
        self.network = network
        self.rng = rng or fallback_rng("resolver.MultiPoolPlatform")
        self.pools: dict[str, ResolutionPlatform] = {}
        for pool in config.pools:
            pool_config = PlatformConfig(
                name=f"{config.name}/{pool.name}",
                ingress_ips=pool.ingress_ips,
                egress_ips=pool.egress_ips,
                n_caches=pool.n_caches,
                cache_selector=pool.cache_selector,
            )
            self.pools[pool.name] = ResolutionPlatform(
                pool_config, network, root_hint_ips,
                rng=random.Random(self.rng.randrange(1 << 30)),
            )

    def attach(self, profile: Optional[LinkProfile] = None) -> None:
        """Register every pool; each ingress IP routes to its own pool."""
        for platform in self.pools.values():
            platform.attach(profile)

    # -- ground truth (experiments only) ----------------------------------

    @property
    def ingress_ips(self) -> list[str]:
        return [ip for pool in self.config.pools for ip in pool.ingress_ips]

    @property
    def egress_ips(self) -> list[str]:
        return [ip for pool in self.config.pools for ip in pool.egress_ips]

    @property
    def n_pools(self) -> int:
        return len(self.pools)

    @property
    def total_caches(self) -> int:
        return sum(platform.n_caches for platform in self.pools.values())

    def pool_of(self, ingress_ip: str) -> Optional[str]:
        for pool in self.config.pools:
            if ingress_ip in pool.ingress_ips:
                return pool.name
        return None

    def true_partition(self) -> dict[str, frozenset[str]]:
        """Pool name → its ingress IPs (what clustering should recover)."""
        return {pool.name: frozenset(pool.ingress_ips)
                for pool in self.config.pools}
