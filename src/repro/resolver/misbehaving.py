"""Misbehaving resolvers.

The paper's dataset deliberately "excludes malicious networks and home
networks" (§III-A), citing studies that found most open resolvers to be
"(misconfigured) home routers and mismanaged (security oblivious) networks
or malicious networks operated by attackers" (§VI, refs [19], [20]).  To
exclude them, a scan must be able to *detect* them.

:class:`MisbehavingResolver` wraps a well-behaved platform with the classic
pathologies those studies observed:

* **NXDOMAIN hijacking** — rewriting name errors into ad-server addresses;
* **answer substitution** — redirecting specific names (DNS injection);
* **TTL rewriting** — pinning every answer's TTL to a fixed value.

:mod:`repro.core.integrity` holds the corresponding detection checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dns.message import DnsMessage
from ..dns.name import DnsName
from ..dns.record import ARdata, ResourceRecord
from ..dns.rrtype import RCode, RRType
from ..net.network import LinkProfile, Network


@dataclass
class Misbehavior:
    """Which pathologies the wrapper applies."""

    hijack_nxdomain_to: Optional[str] = None      # ad-server address
    substitute: dict[str, str] = field(default_factory=dict)  # name -> IP
    rewrite_ttl_to: Optional[int] = None

    @property
    def any_active(self) -> bool:
        return bool(self.hijack_nxdomain_to or self.substitute or
                    self.rewrite_ttl_to is not None)


# cdelint: component=forwarder(rewrites-source)
class MisbehavingResolver:
    """A resolver front that tampers with its upstream's answers."""

    def __init__(self, listen_ip: str, upstream_ip: str, network: Network,
                 misbehavior: Misbehavior):
        self.listen_ip = listen_ip
        self.upstream_ip = upstream_ip
        self.network = network
        self.misbehavior = misbehavior
        self.tampered_responses = 0

    def attach(self, profile: Optional[LinkProfile] = None) -> None:
        self.network.register(self.listen_ip, self, profile)

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: Network) -> Optional[DnsMessage]:
        if message.is_response or message.question is None:
            return None
        from ..dns.errors import QueryTimeout

        try:
            response = network.query(self.listen_ip, self.upstream_ip,
                                     message).response
        except QueryTimeout:
            return message.make_response(RCode.SERVFAIL)
        return self._tamper(message, response)

    # -- pathologies ------------------------------------------------------

    def _tamper(self, query: DnsMessage, response: DnsMessage) -> DnsMessage:
        tampered = False
        substitute_ip = self._substitution_for(query.qname)
        if substitute_ip is not None and query.qtype == RRType.A:
            response = query.make_response()
            response.recursion_available = True
            response.add_answer([self._forged_a(query.qname, substitute_ip)])
            tampered = True
        elif response.rcode == RCode.NXDOMAIN and \
                self.misbehavior.hijack_nxdomain_to is not None and \
                query.qtype == RRType.A:
            response = query.make_response()  # NOERROR
            response.recursion_available = True
            response.add_answer([self._forged_a(
                query.qname, self.misbehavior.hijack_nxdomain_to)])
            tampered = True
        if self.misbehavior.rewrite_ttl_to is not None and response.answers:
            # Deliberate §VI misbehaviour: this resolver exists to serve
            # the wrong TTL, which is exactly what CDE022 forbids honest
            # cache code to do.
            response.answers = [
                record.with_ttl(self.misbehavior.rewrite_ttl_to)  # cdelint: disable=CDE022
                for record in response.answers
            ]
            tampered = True
        if tampered:
            self.tampered_responses += 1
        return response

    def _substitution_for(self, qname: DnsName) -> Optional[str]:
        for target, address in self.misbehavior.substitute.items():
            if qname == DnsName.from_text(target):
                return address
        return None

    @staticmethod
    def _forged_a(owner: DnsName, address: str) -> ResourceRecord:
        return ResourceRecord(owner, RRType.A, 300, ARdata(address))
