"""Cache-selection strategies (the load balancer's brain).

Paper §IV-A: "Resolution platforms use different cache selection methods for
probing caches.  Within our study we identified two cache selection methods:
traffic dependent (which attempt to evenly distribute the queries' volume to
caches) and unpredictable. [...] We also identified more complex cache
selection strategies, e.g., those that [...] are also a function of a
requested domain in the query or of a source IP in a DNS request."

Each strategy maps one arriving query to the index of the cache that will be
probed.  ``is_unpredictable`` tags the category used in the paper's analysis
(the coupon-collector bound applies to unpredictable selection; round robin
needs only ``q = n`` probes).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..dns.name import DnsName
from ..dns.rrtype import RRType
from ..net.rng import fallback_rng


@dataclass(frozen=True)
class QueryContext:
    """What the load balancer can see of one arriving query."""

    qname: DnsName
    qtype: RRType
    src_ip: str
    sequence: int  # arrival index at the platform


class CacheSelector(Protocol):
    name: str
    is_unpredictable: bool

    def select(self, context: QueryContext, n_caches: int) -> int:
        """Index in ``range(n_caches)`` of the cache to probe."""


class RoundRobinSelector:
    """Traffic-dependent: the next cache is probed on each arrival."""

    name = "round-robin"
    is_unpredictable = False

    def __init__(self) -> None:
        self._next = 0

    def select(self, context: QueryContext, n_caches: int) -> int:
        index = self._next % n_caches
        self._next += 1
        return index


class UniformRandomSelector:
    """Unpredictable: a uniformly random cache is probed."""

    name = "uniform-random"
    is_unpredictable = True

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng or fallback_rng("resolver.UniformRandomSelector")

    def select(self, context: QueryContext, n_caches: int) -> int:
        return self._rng.randrange(n_caches)


def _stable_hash(*parts: str) -> int:
    digest = hashlib.sha256("/".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class QnameHashSelector:
    """Deterministic on the requested domain (paper's 'function of a
    requested domain in the query')."""

    name = "qname-hash"
    is_unpredictable = False

    def __init__(self, salt: str = ""):
        self._salt = salt

    def select(self, context: QueryContext, n_caches: int) -> int:
        return _stable_hash(self._salt, str(context.qname).lower()) % n_caches


class SourceIpHashSelector:
    """Deterministic on the client address (paper's 'function of a source IP
    in a DNS request')."""

    name = "source-ip-hash"
    is_unpredictable = False

    def __init__(self, salt: str = ""):
        self._salt = salt

    def select(self, context: QueryContext, n_caches: int) -> int:
        return _stable_hash(self._salt, context.src_ip) % n_caches


@dataclass
class LeastLoadedSelector:
    """Traffic-dependent: send to the cache that has served the fewest
    queries so far (ties broken by index)."""

    name: str = field(default="least-loaded", init=False)
    is_unpredictable: bool = field(default=False, init=False)
    _load: dict[int, int] = field(default_factory=dict)

    def select(self, context: QueryContext, n_caches: int) -> int:
        index = min(range(n_caches), key=lambda i: (self._load.get(i, 0), i))
        self._load[index] = self._load.get(index, 0) + 1
        return index


class StickyRandomSelector:
    """Unpredictable with affinity: random choice, but a fraction of queries
    repeats the previous cache.  Models load balancers with flow affinity."""

    name = "sticky-random"
    is_unpredictable = True

    def __init__(self, stickiness: float = 0.3, rng: Optional[random.Random] = None):
        if not 0.0 <= stickiness < 1.0:
            raise ValueError("stickiness must be in [0, 1)")
        self._stickiness = stickiness
        self._rng = rng or fallback_rng("resolver.StickyRandomSelector")
        self._last: Optional[int] = None

    def select(self, context: QueryContext, n_caches: int) -> int:
        if self._last is not None and self._last < n_caches and \
                self._rng.random() < self._stickiness:
            return self._last
        self._last = self._rng.randrange(n_caches)
        return self._last


SELECTOR_FACTORIES = {
    "round-robin": lambda rng: RoundRobinSelector(),
    "uniform-random": lambda rng: UniformRandomSelector(rng),
    "qname-hash": lambda rng: QnameHashSelector(),
    "source-ip-hash": lambda rng: SourceIpHashSelector(),
    "least-loaded": lambda rng: LeastLoadedSelector(),
    "sticky-random": lambda rng: StickyRandomSelector(rng=rng),
}


def make_selector(name: str, rng: Optional[random.Random] = None) -> CacheSelector:
    try:
        factory = SELECTOR_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown cache selector {name!r}") from None
    return factory(rng or fallback_rng("resolver.make_selector"))


class EgressSelector(Protocol):
    """Chooses the egress IP for one upstream query."""

    def select(self, upstream_ip: str, n_egress: int) -> int: ...


class RandomEgressSelector:
    """Per-upstream-query random egress address — reproduces the paper's
    observation that 'multiple different egress IP addresses participated in
    a resolution of a given name'."""

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng or fallback_rng("resolver.RandomEgressSelector")

    def select(self, upstream_ip: str, n_egress: int) -> int:
        return self._rng.randrange(n_egress)


class RoundRobinEgressSelector:
    def __init__(self) -> None:
        self._next = 0

    def select(self, upstream_ip: str, n_egress: int) -> int:
        index = self._next % n_egress
        self._next += 1
        return index


class PinnedEgressSelector:
    """Always the same egress IP (the single-address platform of Fig. 1's
    'very simple version')."""

    def select(self, upstream_ip: str, n_egress: int) -> int:
        return 0


class CacheAffineEgressSelector:
    """Each cache owns a disjoint slice of the egress pool.

    Real deployments often colocate a cache with its worker resolvers, so
    the egress addresses a cache uses identify it from the outside.  The
    platform calls :meth:`select_for_cache` when the selector exposes it;
    egress index ``j`` belongs to cache ``j % n_caches``.
    """

    per_cache = True

    def __init__(self, n_caches: int, rng: Optional[random.Random] = None):
        if n_caches < 1:
            raise ValueError("need at least one cache")
        self.n_caches = n_caches
        self._rng = rng or fallback_rng("resolver.CacheAffineEgressSelector")

    def owned_indices(self, cache_index: int, n_egress: int) -> list[int]:
        owned = [j for j in range(n_egress)
                 if j % self.n_caches == cache_index % self.n_caches]
        # Small egress pools: fall back to sharing rather than starving.
        return owned or list(range(n_egress))

    def select_for_cache(self, cache_index: int, upstream_ip: str,
                         n_egress: int) -> int:
        return self._rng.choice(self.owned_indices(cache_index, n_egress))

    def select(self, upstream_ip: str, n_egress: int) -> int:
        # Cache-oblivious fallback (used if a caller lacks cache identity).
        return self._rng.randrange(n_egress)
