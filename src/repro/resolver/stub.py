"""Stub resolvers with local caches.

When the paper probes platforms *indirectly* (via email servers or web
browsers) "all the queries are triggered by the (stub) DNS software" and
"local caches pose a challenge": each hostname reaches the ingress resolver
at most once until its TTL expires, and query timing cannot be controlled
(§IV-B).  :class:`StubResolver` reproduces exactly that obstacle — it is the
OS-level resolver with its own cache that sits between an application (the
browser or the SMTP daemon) and the platform's ingress address.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..cache.cache import DnsCache
from ..cache.entry import EntryKind
from ..dns.errors import AttemptRecord, ProbeFailure, QueryTimeout
from ..dns.message import DnsMessage
from ..dns.name import DnsName
from ..dns.record import group_rrsets, ResourceRecord
from ..dns.rrtype import RCode, RRType
from ..net.network import Network
from ..net.rng import fallback_rng

if TYPE_CHECKING:
    from ..core.resilient import DegradationTally, RetryPolicy


@dataclass
class StubAnswer:
    rcode: RCode
    records: list[ResourceRecord]
    rtt: float
    from_local_cache: bool

    @property
    def addresses(self) -> list[str]:
        return [record.rdata.address for record in self.records  # type: ignore[attr-defined]
                if record.rtype in (RRType.A, RRType.AAAA)]


# cdelint: component=client(rewrites-source, owns-cache)
class StubResolver:
    """An OS stub resolver bound to one host IP, using a recursive platform.

    ``ingress_ips`` lists the platform addresses from ``resolv.conf``; the
    stub rotates through them on timeouts, like real stubs do.
    """

    def __init__(self, host_ip: str, ingress_ips: list[str], network: Network,
                 local_cache: Optional[DnsCache] = None,
                 rng: Optional[random.Random] = None,
                 retry_policy: Optional["RetryPolicy"] = None,
                 retry_rng: Optional[random.Random] = None,
                 tally: Optional["DegradationTally"] = None):
        if not ingress_ips:
            raise ValueError("stub needs at least one recursive resolver address")
        self.host_ip = host_ip
        self.ingress_ips = list(ingress_ips)
        self.network = network
        self.rng = rng or fallback_rng("resolver.StubResolver")
        # An *active* retry policy repeats the resolv.conf rotation with
        # backoff between rounds (how real stubs behave under `options
        # attempts:n`); None keeps the seed's single rotation.
        self.retry_policy = (retry_policy
                             if retry_policy is not None and retry_policy.active
                             else None)
        self.retry_rng = retry_rng or fallback_rng("resolver.StubResolver.retry")
        self.tally = tally
        # OS caches are small; Windows caps positive entries at 1 day.
        self.local_cache = local_cache or DnsCache(
            cache_id=f"stub@{host_ip}", capacity=4096, max_ttl=86_400,
        )

    def query(self, qname: DnsName, qtype: RRType = RRType.A) -> StubAnswer:
        """Resolve through the local cache, then the platform."""
        start = self.network.clock.now
        now = start
        entry = self.local_cache.get(qname, qtype, now)
        if entry is not None:
            if entry.kind == EntryKind.POSITIVE:
                rrset = entry.aged_rrset(now)
                assert rrset is not None
                return StubAnswer(RCode.NOERROR, list(rrset), 0.0, True)
            rcode = RCode.NXDOMAIN if entry.kind == EntryKind.NXDOMAIN else RCode.NOERROR
            return StubAnswer(rcode, [], 0.0, True)

        message = DnsMessage.make_query(
            qname, qtype, msg_id=self.rng.randrange(1 << 16),
        )
        response = self._transact(message)
        self._cache_response(qname, qtype, response)
        return StubAnswer(
            rcode=response.rcode,
            records=list(response.answers),
            rtt=self.network.clock.now - start,
            from_local_cache=False,
        )

    def _transact(self, message: DnsMessage) -> DnsMessage:
        policy = self.retry_policy
        rounds = policy.max_attempts if policy is not None else 1
        records: list[AttemptRecord] = []
        last_error: Optional[Exception] = None
        attempt = 0
        for round_index in range(rounds):
            if round_index:
                delay = policy.delay_with_jitter(round_index, self.retry_rng) \
                    if policy is not None else 0.0
                if delay:
                    self.network.clock.advance(delay)
                if self.tally is not None:
                    self.tally.retries += 1
            for ingress_ip in self.ingress_ips:
                attempt += 1
                if policy is not None and self.tally is not None:
                    self.tally.attempts += 1
                started = self.network.clock.now
                try:
                    response = self.network.query(self.host_ip, ingress_ip,
                                                  message).response
                    if response.truncated and not message.via_tcp:
                        response = self.network.query(
                            self.host_ip, ingress_ip, message.over_tcp()).response
                    return response
                except QueryTimeout as error:
                    last_error = error
                    records.append(AttemptRecord(attempt, started, "timeout"))
        if policy is not None and self.tally is not None:
            self.tally.gave_up += 1
        raise ProbeFailure(
            f"all resolvers timed out for {message.qname}",
            attempts=tuple(records),
        ) from last_error

    def _cache_response(self, qname: DnsName, qtype: RRType,
                        response: DnsMessage) -> None:
        now = self.network.clock.now
        if response.rcode == RCode.NXDOMAIN:
            self.local_cache.put_nxdomain(qname, now)
            return
        if response.rcode != RCode.NOERROR:
            return
        if response.answers:
            for rrset in group_rrsets(response.answers):
                self.local_cache.put_rrset(rrset, now)
        else:
            self.local_cache.put_nodata(qname, qtype, now)

    def flush_cache(self) -> None:
        self.local_cache.flush()
