"""Forwarding resolvers.

The paper's related-work discussion notes that "ingress resolvers are also
often configured to use upstream caches, such as Google Public DNS, in which
cases the client will only see the forwarder whose sole functionality is to
relay queries, while the complex caching logic is performed by the upstream
cache".  :class:`ForwardingResolver` models exactly this: an addressable
front that optionally keeps a small cache of its own and relays misses to an
upstream platform's ingress address.

From the CDE's perspective a forwarder *with* a cache is one more cache in
the chain; a pure relay is invisible — both cases appear in the wild and the
tests cover what the enumeration techniques report for each.
"""

from __future__ import annotations

import random
from typing import Optional

from ..cache.cache import DnsCache
from ..cache.entry import EntryKind
from ..dns.errors import QueryTimeout
from ..dns.message import DnsMessage
from ..dns.name import DnsName
from ..dns.record import group_rrsets
from ..dns.rrtype import RCode, RRType
from ..net.network import LinkProfile, Network
from ..net.rng import fallback_rng


# cdelint: component=forwarder(rewrites-source, owns-cache)
class ForwardingResolver:
    """Relays client queries to an upstream recursive platform."""

    def __init__(self, name: str, listen_ip: str, upstream_ips: list[str],
                 network: Network, cache: Optional[DnsCache] = None,
                 rng: Optional[random.Random] = None):
        if not upstream_ips:
            raise ValueError("forwarder needs at least one upstream address")
        self.name = name
        self.listen_ip = listen_ip
        self.upstream_ips = list(upstream_ips)
        self.network = network
        self.cache = cache  # None == pure relay, no caching logic at all
        self.rng = rng or fallback_rng("resolver.ForwardingResolver")

    def attach(self, profile: Optional[LinkProfile] = None) -> None:
        self.network.register(self.listen_ip, self, profile)

    # -- Endpoint protocol ---------------------------------------------------

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: Network) -> Optional[DnsMessage]:
        if message.is_response or message.question is None:
            return None
        now = network.clock.now
        if self.cache is not None:
            cached = self._answer_from_cache(message, now)
            if cached is not None:
                return cached
        upstream_ip = self.upstream_ips[self.rng.randrange(len(self.upstream_ips))]
        try:
            transaction = network.query(self.listen_ip, upstream_ip, message)
        except QueryTimeout:
            return message.make_response(RCode.SERVFAIL)
        response = transaction.response
        if self.cache is not None:
            self._store(message.qname, message.qtype, response)
        return response

    # -- caching ----------------------------------------------------------------

    def _answer_from_cache(self, message: DnsMessage,
                           now: float) -> Optional[DnsMessage]:
        assert self.cache is not None
        entry = self.cache.get(message.qname, message.qtype, now)
        if entry is None:
            return None
        if entry.kind == EntryKind.NXDOMAIN:
            return message.make_response(RCode.NXDOMAIN)
        if entry.kind == EntryKind.NODATA:
            return message.make_response(RCode.NOERROR)
        response = message.make_response()
        response.recursion_available = True
        rrset = entry.aged_rrset(now)
        assert rrset is not None
        response.add_answer(rrset)
        return response

    def _store(self, qname: DnsName, qtype: RRType, response: DnsMessage) -> None:
        assert self.cache is not None
        now = self.network.clock.now
        if response.rcode == RCode.NXDOMAIN:
            self.cache.put_nxdomain(qname, now)
        elif response.rcode == RCode.NOERROR and response.answers:
            for rrset in group_rrsets(response.answers):
                self.cache.put_rrset(rrset, now)
        elif response.rcode == RCode.NOERROR:
            self.cache.put_nodata(qname, qtype, now)


# cdelint: component=transparent-forwarder(spoofs-source)
class TransparentForwarder:
    """A relay that forwards queries upstream *as the client*.

    "Transparent Forwarders: An Unnoticed Component of the Open DNS
    Infrastructure" measures ~26% of open DNS speakers as exactly this:
    a box that neither caches nor answers, but re-emits the query toward
    a real resolver with the *client's* source address preserved, so the
    resolver's response (and its access-control decision) applies to the
    client, not to the forwarder.  From the CDE's perspective the
    forwarder is invisible — the platform sees the original client, and
    a closed resolver that serves the client's prefix will happily
    answer a query the forwarder itself could never make.

    No cache, no TTL logic, no rewriting: one spoof-preserving send.
    """

    def __init__(self, name: str, listen_ip: str, upstream_ip: str,
                 network: Network):
        self.name = name
        self.listen_ip = listen_ip
        self.upstream_ip = upstream_ip
        self.network = network
        self.forwarded = 0

    def attach(self, profile: Optional[LinkProfile] = None) -> None:
        self.network.register(self.listen_ip, self, profile)

    # -- Endpoint protocol ---------------------------------------------------

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: Network) -> Optional[DnsMessage]:
        if message.is_response or message.question is None:
            return None
        self.forwarded += 1
        try:
            # The client's own source address goes upstream unchanged —
            # the spoof-preserve this component's contract declares.
            transaction = network.query(src_ip, self.upstream_ip, message)
        except QueryTimeout:
            return message.make_response(RCode.SERVFAIL)
        return transaction.response
