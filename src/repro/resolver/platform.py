"""DNS resolution platforms (paper Figure 1).

A :class:`ResolutionPlatform` bundles:

* a set of **ingress IP addresses** that accept queries from clients,
* a **load balancer** (a :class:`~repro.resolver.selection.CacheSelector`)
  that picks exactly one of the platform's **n caches** per arriving query,
* a set of **egress IP addresses** used to contact authoritative
  nameservers on cache misses, chosen per-upstream-query by an
  :class:`~repro.resolver.selection.EgressSelector`.

The degenerate single-IP/single-cache platform of the paper's "very simple
version" is just ``PlatformConfig(n_ingress=1, n_caches=1, n_egress=1)``
with ingress and egress sharing the address.

Ground truth (cache count, IP sets, selector) is exposed for experiment
validation but never consulted by the measurement code in
:mod:`repro.core` — that code sees only DNS messages and nameserver logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..cache.cache import DnsCache
from ..cache.entry import CacheEntry, EntryKind
from ..cache.software import BIND9_LIKE, CacheSoftwareProfile
from ..dns.edns import maybe_truncate
from ..dns.errors import ResolutionError
from ..dns.message import DnsMessage
from ..dns.name import DnsName
from ..dns.record import CnameRdata, RRSet
from ..dns.rrtype import RCode, RRType
from ..net.network import LinkProfile, Network
from ..net.rng import fallback_rng
from .iterative import IterativeResolver, ResolutionResult
from .selection import (
    CacheSelector,
    EgressSelector,
    QueryContext,
    RandomEgressSelector,
    UniformRandomSelector,
)

MAX_ANSWER_CHAIN = 12


@dataclass
class PlatformConfig:
    """Declarative description of one platform, for generators and tests."""

    name: str
    ingress_ips: list[str]
    egress_ips: list[str]
    n_caches: int
    cache_selector: Optional[CacheSelector] = None
    egress_selector: Optional[EgressSelector] = None
    software_profiles: Optional[list[CacheSoftwareProfile]] = None
    min_ttl: Optional[int] = None
    max_ttl: Optional[int] = None
    country: str = "default"
    operator: str = "unknown"
    #: When set (a prefix like ``"172.16.0.0/12"``), only clients inside it
    #: are served — a *closed* resolver; ``None`` means an open resolver.
    open_to: Optional[str] = None
    #: Frontend deduplication window in seconds: identical questions
    #: arriving within this window of a previous one are answered from the
    #: frontend's short-lived response table *without* probing any cache
    #: (how dnsdist-style frontends collapse query storms).  Zero disables.
    #: Rapid-fire identical probes collapse under this — the census must
    #: pace its probes slower than the window (see the pacing ablation).
    frontend_dedup_window: float = 0.0
    #: Prefetch horizon in seconds: a cache hit whose remaining TTL is at
    #: or below this triggers an upstream refresh (BIND's ``prefetch`` /
    #: Unbound's ``prefetch: yes``).  The client still gets the cached
    #: answer; the refresh shows up at authoritative servers as an extra
    #: query — a census bias the tests document.  Zero disables.
    prefetch_horizon: float = 0.0
    #: Advertised EDNS(0) UDP payload size; ``None`` = no EDNS support.
    edns_payload_size: Optional[int] = 4096

    def __post_init__(self) -> None:
        if not self.ingress_ips:
            raise ValueError("platform needs at least one ingress IP")
        if not self.egress_ips:
            raise ValueError("platform needs at least one egress IP")
        if self.n_caches < 1:
            raise ValueError("platform needs at least one cache")


@dataclass
class PlatformStats:
    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    upstream_queries: int = 0
    failures: int = 0
    frontend_collapsed: int = 0
    prefetches: int = 0


# cdelint: component=recursive(rewrites-source, owns-cache, shared-cache)
class ResolutionPlatform:
    """A multi-cache recursive resolution service."""

    def __init__(self, config: PlatformConfig, network: Network,
                 root_hint_ips: list[str],
                 rng: Optional[random.Random] = None):
        self.config = config
        self.network = network
        self.rng = rng or fallback_rng("resolver.ResolutionPlatform")
        self.cache_selector: CacheSelector = (
            config.cache_selector or UniformRandomSelector(self.rng)
        )
        self.egress_selector: EgressSelector = (
            config.egress_selector or RandomEgressSelector(self.rng)
        )
        self.caches = self._build_caches(config)
        self.engine = IterativeResolver(
            root_hint_ips, rng=self.rng, now=lambda: network.clock.now
        )
        self.stats = PlatformStats()
        self._sequence = 0
        #: caches listed here are "down" — resilience experiments (§II-B).
        self._offline_caches: set[int] = set()
        #: frontend dedup table: (qname, qtype) -> (expires_at, response).
        self._frontend_table: dict[tuple[DnsName, RRType],
                                   tuple[float, DnsMessage]] = {}

    def _build_caches(self, config: PlatformConfig) -> list[DnsCache]:
        caches = []
        for index in range(config.n_caches):
            profile = BIND9_LIKE
            if config.software_profiles:
                profile = config.software_profiles[index % len(config.software_profiles)]
            cache = profile.build_cache(
                cache_id=f"{config.name}/cache-{index}",
                rng=random.Random(self.rng.randrange(1 << 30)),
            )
            if config.min_ttl is not None:
                cache.min_ttl = config.min_ttl
            if config.max_ttl is not None:
                cache.max_ttl = max(config.max_ttl, cache.min_ttl)
            caches.append(cache)
        return caches

    # -- registration ---------------------------------------------------------

    def attach(self, profile: Optional[LinkProfile] = None) -> None:
        """Register all ingress and egress IPs on the network."""
        ingress = self.config.ingress_ips
        self.network.register_many(list(ingress), self, profile)
        egress = [ip for ip in self.config.egress_ips if ip not in ingress]
        self.network.register_many(egress, _EgressStub(), profile)

    # -- ground truth (experiments only) ------------------------------------------

    @property
    def n_caches(self) -> int:
        return self.config.n_caches

    @property
    def n_online_caches(self) -> int:
        return self.config.n_caches - len(self._offline_caches)

    @property
    def ingress_ips(self) -> list[str]:
        return list(self.config.ingress_ips)

    @property
    def egress_ips(self) -> list[str]:
        return list(self.config.egress_ips)

    def take_cache_offline(self, index: int) -> None:
        if not 0 <= index < len(self.caches):
            raise IndexError(f"no cache {index}")
        self._offline_caches.add(index)

    def bring_cache_online(self, index: int) -> None:
        self._offline_caches.discard(index)

    # -- the Endpoint protocol ----------------------------------------------------

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: Network) -> Optional[DnsMessage]:
        if message.is_response or message.question is None:
            return None
        if self.config.open_to is not None:
            from ..net.address import Prefix

            if not Prefix.from_text(self.config.open_to).contains(src_ip):
                return message.make_response(RCode.REFUSED)
        if not message.recursion_desired:
            # We are a resolver, not an authority.
            response = message.make_response(RCode.REFUSED)
            response.recursion_available = True
            return response
        return self.resolve_for_client(message, src_ip)

    # -- query pipeline -------------------------------------------------------------

    def resolve_for_client(self, query: DnsMessage, src_ip: str) -> DnsMessage:
        """Full ingress→cache→(egress) pipeline for one client query."""
        self.stats.queries += 1
        if self.config.frontend_dedup_window > 0:
            collapsed = self._frontend_lookup(query)
            if collapsed is not None:
                return collapsed
        self._sequence += 1
        context = QueryContext(
            qname=query.qname, qtype=query.qtype, src_ip=src_ip,
            sequence=self._sequence,
        )
        cache = self._pick_cache(context)
        if cache is None:
            self.stats.failures += 1
            return query.make_response(RCode.SERVFAIL)
        # Intra-platform hop: negligible but nonzero.
        self.network.clock.advance(0.0002)
        try:
            chain, rcode = self._answer_from(cache, query.qname, query.qtype)
        except ResolutionError:
            self.stats.failures += 1
            response = query.make_response(RCode.SERVFAIL)
            response.recursion_available = True
            return response
        response = query.make_response(rcode)
        response.recursion_available = True
        response.edns_payload_size = (
            self.config.edns_payload_size
            if query.edns_payload_size is not None else None)
        for rrset in chain:
            response.add_answer(rrset)
        if self.config.frontend_dedup_window > 0:
            self._frontend_store(query, response)
        return maybe_truncate(query, response, self.config.edns_payload_size)

    def _frontend_lookup(self, query: DnsMessage) -> Optional[DnsMessage]:
        """Answer from the frontend's collapse table, when fresh."""
        key = (query.qname, query.qtype)
        entry = self._frontend_table.get(key)
        if entry is None:
            return None
        expires_at, recorded = entry
        if self.network.clock.now >= expires_at:
            del self._frontend_table[key]
            return None
        self.stats.frontend_collapsed += 1
        response = query.make_response(recorded.rcode)
        response.recursion_available = True
        response.answers = list(recorded.answers)
        return response

    def _frontend_store(self, query: DnsMessage, response: DnsMessage) -> None:
        self._frontend_table[(query.qname, query.qtype)] = (
            self.network.clock.now + self.config.frontend_dedup_window,
            response,
        )

    def _pick_cache(self, context: QueryContext) -> Optional[DnsCache]:
        """Load-balance to one online cache; exactly one cache is probed."""
        online = [index for index in range(len(self.caches))
                  if index not in self._offline_caches]
        if not online:
            return None
        index = self.cache_selector.select(context, len(self.caches))
        if index in self._offline_caches:
            # Fail over deterministically to the next online cache.
            index = online[index % len(online)]
        return self.caches[index]

    def _answer_from(self, cache: DnsCache,
                     qname: DnsName, qtype: RRType
                     ) -> tuple[list[RRSet], RCode]:
        """Answer (qname, qtype) using ``cache``, going upstream on misses.

        Follows CNAME links through the cache so a partially cached chain
        only triggers upstream traffic for the missing links.
        """
        now = self.network.clock.now
        chain: list[RRSet] = []
        current = qname
        for _ in range(MAX_ANSWER_CHAIN):
            entry = cache.get(current, qtype, now)
            if entry is not None:
                if entry.kind == EntryKind.NXDOMAIN:
                    self.stats.cache_hits += 1
                    return chain, RCode.NXDOMAIN
                if entry.kind == EntryKind.NODATA:
                    self.stats.cache_hits += 1
                    return chain, RCode.NOERROR
                self.stats.cache_hits += 1
                rrset = entry.aged_rrset(now)
                assert rrset is not None
                chain.append(rrset)
                self._maybe_prefetch(cache, current, qtype, entry)
                return chain, RCode.NOERROR
            if qtype != RRType.CNAME:
                alias = cache.get(current, RRType.CNAME, now)
                if alias is not None and alias.kind == EntryKind.POSITIVE:
                    self.stats.cache_hits += 1
                    rrset = alias.aged_rrset(now)
                    assert rrset is not None
                    chain.append(rrset)
                    target = rrset.records[0].rdata
                    assert isinstance(target, CnameRdata)
                    current = target.target
                    continue
            # Miss: resolve the remaining chain upstream through this cache.
            self.stats.cache_misses += 1
            result = self._resolve_upstream(cache, current, qtype)
            chain.extend(self._serve_from_cache(cache, result.chain))
            return chain, result.rcode
        return chain, RCode.SERVFAIL

    def _maybe_prefetch(self, cache: DnsCache, qname: DnsName,
                        qtype: RRType, entry: "CacheEntry") -> None:
        """Refresh a nearly expired entry after serving it (BIND-style).

        The client sees the cached answer; the refresh is an extra
        authoritative-side query that cache-counting studies must not
        mistake for a new cache.
        """
        horizon = self.config.prefetch_horizon
        if horizon <= 0:
            return
        now = self.network.clock.now
        if entry.remaining_ttl(now) > horizon:
            return
        self.stats.prefetches += 1
        cache.remove(qname, qtype)
        try:
            self._resolve_upstream(cache, qname, qtype)
        except ResolutionError:
            pass  # prefetch is best-effort; the old answer already went out

    def _serve_from_cache(self, cache: DnsCache,
                          resolved_chain: list[RRSet]) -> list[RRSet]:
        """Re-read freshly resolved RRsets through the cache.

        Real resolvers always answer from cache contents, so the response
        TTLs reflect the cache's min/max clamping and aging — the externally
        observable behaviour that cache fingerprinting (§II-C) measures.
        RRsets the cache did not retain (capacity pressure) pass through
        unchanged.
        """
        now = self.network.clock.now
        served: list[RRSet] = []
        for rrset in resolved_chain:
            entry = cache.peek(rrset.name, rrset.rtype, now)
            if entry is not None and entry.kind == EntryKind.POSITIVE and \
                    entry.rrset is not None:
                aged = entry.aged_rrset(now)
                assert aged is not None
                served.append(aged)
            else:
                served.append(rrset)
        return served

    def _resolve_upstream(self, cache: DnsCache, qname: DnsName,
                          qtype: RRType) -> ResolutionResult:
        cache_index = next(
            (i for i, c in enumerate(self.caches) if c is cache), 0)

        def send(server_ip: str, message: DnsMessage) -> tuple[DnsMessage, str]:
            select_for_cache = getattr(self.egress_selector,
                                       "select_for_cache", None)
            if select_for_cache is not None:
                egress_index = select_for_cache(
                    cache_index, server_ip, len(self.config.egress_ips))
            else:
                egress_index = self.egress_selector.select(
                    server_ip, len(self.config.egress_ips))
            egress_ip = self.config.egress_ips[egress_index]
            transaction = self.network.query(egress_ip, server_ip, message)
            self.stats.upstream_queries += 1
            return transaction.response, egress_ip

        return self.engine.resolve(qname, qtype, cache, send)

    def __repr__(self) -> str:
        return (f"ResolutionPlatform({self.config.name!r}, "
                f"ingress={len(self.config.ingress_ips)}, "
                f"caches={self.config.n_caches}, "
                f"egress={len(self.config.egress_ips)})")


# cdelint: component=nat-pool
class _EgressStub:
    """Placeholder endpoint registered at egress-only addresses.

    Egress addresses originate queries; they never serve any, so anything
    arriving at one is dropped silently (as a real NAT'd resolver farm would).
    """

    def handle_message(self, message: DnsMessage, src_ip: str,
                       network: Network) -> Optional[DnsMessage]:
        return None
