"""Cache enumeration (paper §IV-B1a and §V-B).

The observable: every *distinct cache* that is probed with a miss produces
exactly one query at the CDE nameserver; repeat probes of an already-seeded
cache are absorbed.  "The number of queries ω ≤ q arriving at our nameserver
is the number of caches used by the resolution platform."

Three enumerators are provided:

* :func:`enumerate_direct` — the plain technique: q queries for one fresh
  name, ω arrivals counted.  Exact when q covers all caches (coupon
  collector, Theorem 5.1); the result carries an occupancy-corrected
  estimate for when it might not.
* :func:`enumerate_two_phase` — the init/validate protocol the paper used
  for its Internet measurements: N distinct seeds planted in the init
  phase, re-requested in the validate phase; validate arrivals yield both a
  statistical cache-count estimate and the per-seed success count the paper
  analyses as ``N·(1 − e^{−N/n})²``.
* :func:`enumerate_adaptive` — a planner loop that grows q geometrically
  until the arrival count stabilises, for targets with unknown n.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dns.name import DnsName
from ..dns.rrtype import RRType
from .analysis import (
    CacheCountEstimate,
    estimate_from_occupancy,
    estimate_from_two_phase,
    queries_for_confidence,
)
from .infrastructure import CdeInfrastructure
from .prober import DirectProber
from .resilient import RetryBudget


@dataclass
class DirectEnumerationResult:
    """Outcome of the q-identical-queries technique."""

    probe_name: DnsName
    queries_sent: int
    delivered: int
    arrivals: int                       # ω: queries seen at our nameserver
    estimate: CacheCountEstimate

    @property
    def cache_count(self) -> int:
        return self.estimate.rounded


@dataclass
class TwoPhaseEnumerationResult:
    """Outcome of the init/validate protocol."""

    seeds: int
    init_arrivals: int
    validate_arrivals: int
    validated_seeds: int                # seeds answered from cache
    estimate: CacheCountEstimate
    seed_names: list[DnsName] = field(default_factory=list)

    @property
    def cache_count(self) -> int:
        return self.estimate.rounded


def enumerate_direct(cde: CdeInfrastructure, prober: DirectProber,
                     ingress_ip: str, q: int,
                     qtype: RRType = RRType.A,
                     probe_name: Optional[DnsName] = None,
                     pace: float = 0.0) -> DirectEnumerationResult:
    """Send q identical queries; ω arrivals at the nameserver = caches.

    ``pace`` inserts an idle gap (seconds of virtual time) between probes.
    Platforms with a frontend deduplication window collapse rapid-fire
    identical questions into one cache probe; pacing beyond the window
    restores the census (see the pacing ablation bench).
    """
    if q < 1:
        raise ValueError("need at least one query")
    if pace < 0:
        raise ValueError("pace must be non-negative")
    name = probe_name or cde.unique_name("enum")
    since = prober.network.clock.now
    delivered = 0
    for index in range(q):
        if index and pace:
            prober.network.clock.advance(pace)
        if prober.probe(ingress_ip, name, qtype).delivered:
            delivered += 1
    arrivals = cde.count_queries_for(name, since=since, qtype=qtype)
    estimate = CacheCountEstimate(
        estimate=estimate_from_occupancy(q, arrivals) if arrivals else 0.0,
        lower_bound=arrivals,
        queries_sent=q,
        arrivals=arrivals,
    )
    return DirectEnumerationResult(
        probe_name=name, queries_sent=q, delivered=delivered,
        arrivals=arrivals, estimate=estimate,
    )


def enumerate_two_phase(cde: CdeInfrastructure, prober: DirectProber,
                        ingress_ip: str, seeds: int,
                        qtype: RRType = RRType.A
                        ) -> TwoPhaseEnumerationResult:
    """The paper's init/validate protocol (§V-B).

    Init: N fresh seed names pushed through the ingress IP in rapid
    succession, statistically seeding every cache.  Validate: the same
    names re-requested; a validate arrival at the nameserver reveals the
    probe hit a cache lacking the seed.  The hit fraction estimates 1/n.
    """
    if seeds < 1:
        raise ValueError("need at least one seed")
    seed_names = cde.unique_names(seeds, prefix="seed")

    init_since = prober.network.clock.now
    for seed_name in seed_names:
        prober.probe(ingress_ip, seed_name, qtype)
    init_arrivals = sum(
        min(1, cde.count_queries_for(seed_name, since=init_since, qtype=qtype))
        for seed_name in seed_names
    )

    validate_since = prober.network.clock.now
    for seed_name in seed_names:
        prober.probe(ingress_ip, seed_name, qtype)
    validate_arrivals = sum(
        min(1, cde.count_queries_for(seed_name, since=validate_since, qtype=qtype))
        for seed_name in seed_names
    )
    validated = seeds - validate_arrivals

    estimate_value = estimate_from_two_phase(seeds, validate_arrivals)
    estimate = CacheCountEstimate(
        estimate=estimate_value,
        lower_bound=_distinct_seed_lower_bound(init_arrivals, validate_arrivals,
                                               seeds),
        queries_sent=2 * seeds,
        arrivals=init_arrivals + validate_arrivals,
    )
    return TwoPhaseEnumerationResult(
        seeds=seeds,
        init_arrivals=init_arrivals,
        validate_arrivals=validate_arrivals,
        validated_seeds=validated,
        estimate=estimate,
        seed_names=seed_names,
    )


def _distinct_seed_lower_bound(init_arrivals: int, validate_arrivals: int,
                               seeds: int) -> int:
    """At least one cache exists if anything arrived; a validate arrival
    for a seeded name proves at least two caches."""
    if init_arrivals == 0:
        return 0
    return 2 if validate_arrivals > 0 else 1


def enumerate_adaptive(cde: CdeInfrastructure, prober: DirectProber,
                       ingress_ip: str,
                       initial_q: int = 8,
                       confidence: float = 0.99,
                       max_q: int = 4096,
                       qtype: RRType = RRType.A,
                       retry_budget: Optional[RetryBudget] = None
                       ) -> DirectEnumerationResult:
    """Direct enumeration without a prior on n.

    Starts with ``initial_q`` probes of one fresh name and keeps probing
    the *same* name until the total query count reaches the
    coupon-collector budget for the current arrival count (so the final q
    satisfies the §V-B bound for the measured n), or ``max_q`` is hit.

    When the prober runs an active retry policy, retries are charged to
    ``retry_budget``; with none supplied, one is derived from the same
    coupon-collector bound that drives the stopping rule (so retrying can
    spend at most ``budget_fraction`` of the planned query count).
    """
    if initial_q < 1:
        raise ValueError("initial_q must be positive")
    name = cde.unique_name("enum")
    since = prober.network.clock.now
    sent = 0
    delivered = 0

    def send(count: int) -> None:
        nonlocal sent, delivered
        for _ in range(count):
            if prober.probe(ingress_ip, name, qtype).delivered:
                delivered += 1
            sent += 1

    saved_budget = prober.retry_budget
    try:
        if prober.policy is not None and retry_budget is None:
            retry_budget = RetryBudget.for_confidence(
                2, confidence, prober.policy)
        prober.retry_budget = retry_budget

        send(initial_q)
        while sent < max_q:
            arrivals = cde.count_queries_for(name, since=since, qtype=qtype)
            # Budget against one MORE cache than observed: stopping is only
            # sound once enough probes have gone out that an (arrivals+1)-th
            # cache would almost surely have been hit.
            needed = queries_for_confidence(arrivals + 1, confidence)
            if sent >= needed:
                break
            if retry_budget is not None:
                # Grow the retry allowance with the measured plan.
                grown = RetryBudget.for_confidence(
                    arrivals + 1, confidence, prober.policy)
                if grown.total > retry_budget.total:
                    retry_budget.total = grown.total
            send(min(needed - sent, max_q - sent))
    finally:
        prober.retry_budget = saved_budget

    arrivals = cde.count_queries_for(name, since=since, qtype=qtype)
    estimate = CacheCountEstimate(
        estimate=estimate_from_occupancy(sent, arrivals) if arrivals else 0.0,
        lower_bound=arrivals,
        queries_sent=sent,
        arrivals=arrivals,
    )
    return DirectEnumerationResult(
        probe_name=name, queries_sent=sent, delivered=delivered,
        arrivals=arrivals, estimate=estimate,
    )
