"""TTL-consistency vs. multiple-caches differentiation (paper §II-C.1).

"Current studies interpret multiple requests as inconsistency with TTL.
However, it can also be that the DNS resolution platform is using multiple
caches. [...] Our tools allow researchers and network operators to
differentiate between multiple caches and caches with inconsistent TTL."

The differentiator: first enumerate the caches (n̂); then plant a record of
known TTL and probe inside and after its lifetime.  Fresh nameserver
arrivals *within* the TTL beyond the initial n̂ per-cache fetches indicate a
TTL violation (early eviction / TTL truncation); *missing* arrivals after
expiry indicate TTL extension (a min-TTL clamp).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..dns.name import DnsName
from ..dns.rrtype import RRType
from .analysis import queries_for_confidence
from .infrastructure import CdeInfrastructure
from .prober import DirectProber


class TtlVerdict(enum.Enum):
    CONSISTENT = "ttl-consistent"
    EARLY_EXPIRY = "early-expiry"        # re-fetched before TTL ran out
    EXTENDED_TTL = "extended-ttl"        # still cached after TTL ran out
    INCONCLUSIVE = "inconclusive"


@dataclass
class TtlCheckReport:
    probe_name: DnsName
    record_ttl: int
    measured_caches: int
    arrivals_within_ttl: int      # beyond the initial per-cache fills
    arrivals_after_expiry: int
    verdict: TtlVerdict

    @property
    def multi_cache_explained(self) -> bool:
        """Whether repeat fetches are fully explained by the cache count —
        the naive study's 'TTL inconsistency' that is actually topology."""
        return self.measured_caches > 1 and self.verdict == TtlVerdict.CONSISTENT


def check_ttl_consistency(cde: CdeInfrastructure, prober: DirectProber,
                          ingress_ip: str,
                          record_ttl: int = 300,
                          n_hint: int = 8,
                          confidence: float = 0.99,
                          qtype: RRType = RRType.A) -> TtlCheckReport:
    """Run the differentiator against one ingress IP."""
    if record_ttl < 4:
        raise ValueError("record TTL too small to probe inside")
    probe_name = cde.unique_name("ttl")
    cde.add_a_record(probe_name, ttl=record_ttl)
    clock = prober.network.clock

    # Phase 1: fill every cache and measure n̂.
    budget = queries_for_confidence(n_hint, confidence)
    fill_since = clock.now
    for _ in range(budget):
        prober.probe(ingress_ip, probe_name, qtype)
    measured_caches = cde.count_queries_for(probe_name, since=fill_since,
                                            qtype=qtype)

    # Phase 2: probe at mid-TTL — a consistent platform answers everything
    # from the caches that were just filled.
    fill_elapsed = clock.now - fill_since
    remaining = record_ttl - fill_elapsed
    if remaining <= 2:
        return TtlCheckReport(probe_name, record_ttl, measured_caches, 0, 0,
                              TtlVerdict.INCONCLUSIVE)
    clock.advance(remaining / 2)
    mid_since = clock.now
    for _ in range(budget):
        prober.probe(ingress_ip, probe_name, qtype)
    arrivals_within = cde.count_queries_for(probe_name, since=mid_since,
                                            qtype=qtype)

    # Phase 3: probe after expiry — a consistent platform re-fetches
    # (once per cache probed).
    clock.advance(record_ttl)  # comfortably past expiry
    late_since = clock.now
    late_probes = max(3, measured_caches)
    for _ in range(late_probes):
        prober.probe(ingress_ip, probe_name, qtype)
    arrivals_after = cde.count_queries_for(probe_name, since=late_since,
                                           qtype=qtype)

    if arrivals_within > 0:
        verdict = TtlVerdict.EARLY_EXPIRY
    elif arrivals_after == 0:
        verdict = TtlVerdict.EXTENDED_TTL
    else:
        verdict = TtlVerdict.CONSISTENT
    return TtlCheckReport(
        probe_name=probe_name,
        record_ttl=record_ttl,
        measured_caches=measured_caches,
        arrivals_within_ttl=arrivals_within,
        arrivals_after_expiry=arrivals_after,
        verdict=verdict,
    )


def naive_ttl_study_would_misreport(report: TtlCheckReport) -> Optional[str]:
    """What a cache-oblivious TTL study would have concluded.

    Returns the erroneous conclusion, or ``None`` when the naive study
    happens to be right.  This is the paper's §II-C.1 example made
    executable.
    """
    if report.multi_cache_explained:
        return (f"naive study: 'platform violates TTL' — actually "
                f"{report.measured_caches} caches, TTL respected")
    return None
