"""Carpet bombing: probe replication against packet loss (paper §V).

"During our Internet measurements we incurred packet loss in some networks
[...] to cope with packet loss we use a statistical approach we dub *carpet
bombing* [...] instead of a single query we use K queries; such that the
parameter K is a function of a packet loss in the measured network."

This module implements: loss-rate estimation from probe echoes, the
``K(loss, confidence)`` sizing rule, and :class:`CarpetProber`, a drop-in
:class:`~repro.core.prober.DirectProber` wrapper that replicates every
logical probe K times with retransmission disabled (the replicas *are* the
retransmission, but each one independently load-balances onto a cache, so
they also speed up coverage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..dns.name import DnsName
from ..dns.rrtype import RRType
from ..net.network import Network
from .infrastructure import CdeInfrastructure
from .prober import DirectProber, ProbeResult

if TYPE_CHECKING:
    from .resilient import RetryBudget, RetryPolicy


@dataclass
class LossEstimate:
    probes: int
    lost: int

    @property
    def rate(self) -> float:
        return self.lost / self.probes if self.probes else 0.0


def estimate_loss(prober: DirectProber, ingress_ip: str,
                  probe_name: DnsName, probes: int = 50) -> LossEstimate:
    """Estimate end-to-end loss by probing a (cacheable) name with
    retransmission disabled and counting unanswered probes.

    Note the measured rate is the round-trip loss, ``1 − (1 − p)²`` for
    per-traversal loss ``p``; carpet sizing uses the round-trip number,
    which is the one that matters for probe survival.
    """
    if probes < 1:
        raise ValueError("need at least one probe")
    lost = 0
    for _ in range(probes):
        if not prober.probe(ingress_ip, probe_name, retries=0).delivered:
            lost += 1
    return LossEstimate(probes=probes, lost=lost)


def carpet_k(loss_rate: float, confidence: float = 0.99,
             k_cap: int = 64) -> int:
    """Replicas per logical probe so at least one survives w.p. confidence.

    Solves ``loss^K ≤ 1 − confidence``; K = 1 when the path is clean.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss rate must be in [0, 1)")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if loss_rate == 0.0:
        return 1
    k = int(math.ceil(math.log(1.0 - confidence) / math.log(loss_rate)))
    return max(1, min(k, k_cap))


class CarpetProber:
    """Replicates each logical probe K times.

    Exposes the same ``probe``/``probe_many`` surface as
    :class:`DirectProber` so the enumeration and mapping code can use either
    interchangeably.  A logical probe is *delivered* when any replica is
    answered; the reported RTT is the fastest replica's.
    """

    def __init__(self, prober: DirectProber, k: int):
        if k < 1:
            raise ValueError("K must be at least 1")
        self.prober = prober
        self.k = k

    @classmethod
    def tuned(cls, prober: DirectProber, cde: CdeInfrastructure,
              ingress_ip: str, confidence: float = 0.99,
              calibration_probes: int = 50) -> "CarpetProber":
        """Measure the path loss, then size K accordingly."""
        calibration_name = cde.unique_name("loss")
        loss = estimate_loss(prober, ingress_ip, calibration_name,
                             probes=calibration_probes)
        return cls(prober, carpet_k(loss.rate, confidence))

    @property
    def network(self) -> Network:
        return self.prober.network

    @property
    def queries_sent(self) -> int:
        return self.prober.queries_sent

    # Resilience surface, delegated to the wrapped prober so carpet probing
    # composes with an active retry policy and its budget accounting.
    @property
    def policy(self) -> Optional["RetryPolicy"]:
        return self.prober.policy

    @property
    def retry_budget(self) -> Optional["RetryBudget"]:
        return self.prober.retry_budget

    @retry_budget.setter
    def retry_budget(self, budget: Optional["RetryBudget"]) -> None:
        self.prober.retry_budget = budget

    def probe(self, ingress_ip: str, qname: DnsName,
              qtype: RRType = RRType.A,
              retries: Optional[int] = None) -> ProbeResult:
        best: Optional[ProbeResult] = None
        for _ in range(self.k):
            result = self.prober.probe(ingress_ip, qname, qtype, retries=0)
            if result.delivered and (best is None or best.rtt is None or
                                     (result.rtt or 0) < best.rtt):
                best = result
        if best is not None:
            return best
        return ProbeResult(qname, qtype, delivered=False)

    def probe_many(self, ingress_ip: str, qname: DnsName, count: int,
                   qtype: RRType = RRType.A,
                   retries: Optional[int] = None) -> list[ProbeResult]:
        return [self.probe(ingress_ip, qname, qtype) for _ in range(count)]
