"""Probers: how the CDE injects queries into a target platform.

Paper §IV: "We use a prober to initiate our study by triggering DNS queries
either directly via the ingress IP address of the DNS resolution platform,
or indirectly, via email server or web browser."

* :class:`DirectProber` — full control: it owns an IP, talks straight to an
  ingress address, controls timing and repetition, and sees response RTTs
  (which the timing side channel needs).
* :class:`SmtpProber` / :class:`BrowserProber` — indirect access through an
  application whose local caches sit in the path; a given hostname can be
  pushed through at most once, and the probe names must be chosen with a
  bypass technique (:mod:`repro.core.bypass`).

Both indirect probers implement the common :class:`IndirectProber`
protocol: ``trigger(names)`` pushes each name toward the platform once and
returns how many probes were actually emitted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Protocol

from ..client.browser import Browser
from ..client.smtp import SmtpServer
from ..dns.errors import QueryTimeout
from ..dns.message import DnsMessage
from ..dns.name import DnsName
from ..dns.rrtype import RCode, RRType
from ..net.network import Network, Transaction
from ..net.rng import fallback_rng
from .resilient import (
    AttemptRecord,
    DegradationTally,
    ProbeFailure,
    RetryBudget,
    RetryPolicy,
)


@dataclass
class ProbeResult:
    """One direct probe's outcome."""

    qname: DnsName
    qtype: RRType
    delivered: bool
    rtt: Optional[float] = None
    transaction: Optional[Transaction] = None
    #: Probe-level attempts made by an active retry policy (1 otherwise).
    attempts: int = 1
    #: True when an active policy exhausted its attempts with no answer.
    gave_up: bool = False


class DirectProber:
    """A measurement host with direct access to ingress IPs.

    With no ``policy`` (or an inactive one) the prober behaves exactly like
    the seed toolkit: a single probe-level attempt whose retransmissions are
    the network layer's.  An *active* :class:`RetryPolicy` takes over
    retrying: each attempt runs with ``policy.per_attempt_timeout`` and
    ``policy.network_retries``, failed attempts back off on the virtual
    clock with seeded jitter from ``retry_rng``, and every retry is charged
    to ``retry_budget`` (when installed) so resilience can never blow the
    §V-B query plan.
    """

    def __init__(self, prober_ip: str, network: Network,
                 rng: Optional[random.Random] = None,
                 timeout: float = Network.DEFAULT_TIMEOUT,
                 retries: int = Network.DEFAULT_RETRIES,
                 policy: Optional[RetryPolicy] = None,
                 retry_rng: Optional[random.Random] = None,
                 tally: Optional[DegradationTally] = None):
        self.prober_ip = prober_ip
        self.network = network
        self.rng = rng or fallback_rng("core.DirectProber")
        self.timeout = timeout
        self.retries = retries
        self.queries_sent = 0
        self.policy = policy if policy is not None and policy.active else None
        self.retry_rng = retry_rng or fallback_rng("core.DirectProber.retry")
        self.tally = tally
        #: Installed by the measurement layer around an enumeration
        #: (:func:`~repro.core.enumeration.enumerate_adaptive`).
        self.retry_budget: Optional[RetryBudget] = None

    def query(self, ingress_ip: str, qname: DnsName,
              qtype: RRType = RRType.A,
              retries: Optional[int] = None) -> Transaction:
        """One query/response transaction; raises on total loss.

        Truncated (TC) responses are retried over TCP, like any real
        client.  Under an active retry policy, total loss raises
        :class:`ProbeFailure` carrying the attempt history; otherwise the
        network's plain :class:`QueryTimeout` propagates, as it always did.
        """
        if self.policy is not None:
            return self._query_resilient(ingress_ip, qname, qtype)
        self.queries_sent += 1
        message = DnsMessage.make_query(
            qname, qtype, msg_id=self.rng.randrange(1 << 16),
        )
        return self._exchange(ingress_ip, message,
                              timeout=self.timeout,
                              retries=self.retries if retries is None else retries)

    def _exchange(self, ingress_ip: str, message: DnsMessage,
                  timeout: float, retries: int) -> Transaction:
        """One wire exchange with the standard TC→TCP follow-up."""
        transaction = self.network.query(
            self.prober_ip, ingress_ip, message,
            timeout=timeout, retries=retries,
        )
        if transaction.response.truncated and not message.via_tcp:
            transaction = self.network.query(
                self.prober_ip, ingress_ip, message.over_tcp(),
                timeout=timeout, retries=retries,
            )
        return transaction

    def _query_resilient(self, ingress_ip: str, qname: DnsName,
                         qtype: RRType) -> Transaction:
        """Policy-owned retry loop: backoff, budget and attempt history."""
        policy = self.policy
        assert policy is not None
        message = DnsMessage.make_query(
            qname, qtype, msg_id=self.rng.randrange(1 << 16),
        )
        records: list[AttemptRecord] = []
        last_errored: Optional[Transaction] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                if (self.retry_budget is not None
                        and not self.retry_budget.take()):
                    break
                delay = policy.delay_with_jitter(attempt - 1, self.retry_rng)
                if delay:
                    self.network.clock.advance(delay)
                if self.tally is not None:
                    self.tally.retries += 1
            if self.tally is not None:
                self.tally.attempts += 1
            self.queries_sent += 1
            started = self.network.clock.now
            try:
                transaction = self._exchange(
                    ingress_ip, message,
                    timeout=policy.per_attempt_timeout,
                    retries=policy.network_retries,
                )
            except QueryTimeout:
                records.append(AttemptRecord(attempt, started, "timeout"))
                continue
            rcode = transaction.response.rcode
            if (policy.retry_on_servfail
                    and rcode in (RCode.SERVFAIL, RCode.REFUSED)):
                records.append(AttemptRecord(
                    attempt, started, rcode.name.lower(),
                    rtt=transaction.rtt))
                last_errored = transaction
                continue
            records.append(AttemptRecord(attempt, started, "ok",
                                         rtt=transaction.rtt))
            return transaction
        if last_errored is not None:
            # Every attempt was answered, just with an error rcode — surface
            # the (possibly middlebox-forged) answer rather than pretending
            # the network stayed silent.
            return last_errored
        if self.tally is not None:
            self.tally.gave_up += 1
        raise ProbeFailure(
            f"probe of {ingress_ip} for {qname} gave up after "
            f"{len(records)} attempts",
            attempts=tuple(records),
        )

    def probe(self, ingress_ip: str, qname: DnsName,
              qtype: RRType = RRType.A,
              retries: Optional[int] = None) -> ProbeResult:
        """Like :meth:`query` but loss-tolerant: reports delivery status."""
        try:
            transaction = self.query(ingress_ip, qname, qtype, retries=retries)
        except ProbeFailure as failure:
            return ProbeResult(qname, qtype, delivered=False,
                               attempts=max(failure.attempt_count, 1),
                               gave_up=True)
        except QueryTimeout:
            return ProbeResult(qname, qtype, delivered=False)
        return ProbeResult(qname, qtype, delivered=True,
                           rtt=transaction.rtt, transaction=transaction)

    def probe_many(self, ingress_ip: str, qname: DnsName, count: int,
                   qtype: RRType = RRType.A,
                   retries: Optional[int] = None) -> list[ProbeResult]:
        """``count`` probes for the *same* name — the direct technique's
        core move (§IV-B1)."""
        return [self.probe(ingress_ip, qname, qtype, retries=retries)
                for _ in range(count)]


class IndirectProber(Protocol):
    """Pushes probe names toward a platform through an application."""

    def trigger(self, names: list[DnsName]) -> int:
        """Cause one lookup per name; returns probes actually emitted."""


class SmtpProber:
    """Indirect prober riding an enterprise's bounce handling (§III-B).

    Each probe name becomes the *sender domain* of a message to a
    non-existent mailbox: every sender-authentication check and the DSN
    routing lookup the server performs then carries the probe name into the
    enterprise's resolution platform.
    """

    def __init__(self, smtp_server: SmtpServer,
                 sender_localpart: str = "prober",
                 rcpt_localpart: str = "no-such-mailbox"):
        self.smtp_server = smtp_server
        self.sender_localpart = sender_localpart
        self.rcpt_localpart = rcpt_localpart
        self.messages_sent = 0

    def trigger(self, names: list[DnsName]) -> int:
        emitted = 0
        for probe_name in names:
            attempt = self.smtp_server.receive_message(
                mail_from=f"{self.sender_localpart}@{probe_name}",
                rcpt_to=f"{self.rcpt_localpart}@{self.smtp_server.domain}",
            )
            self.messages_sent += 1
            if attempt.lookups:
                emitted += 1
        return emitted

    @property
    def lookups_per_probe(self) -> int:
        """How many DNS lookups this server performs per message."""
        policy = self.smtp_server.policy
        count = sum([
            policy.checks_spf_txt, policy.checks_spf_legacy,
            policy.checks_adsp, policy.checks_dkim, policy.checks_dmarc,
        ])
        if policy.resolves_bounce_mx:
            count += 2  # MX then A
        return count


class BrowserProber:
    """Indirect prober riding a web client attracted via the ad network
    (§III-C).  Each probe name is fetched once as a URL."""

    def __init__(self, browser: Browser, url_path: str = "/t.gif"):
        self.browser = browser
        self.url_path = url_path
        self.urls_fetched: list[str] = []

    def trigger(self, names: list[DnsName]) -> int:
        emitted = 0
        for probe_name in names:
            url = f"http://{probe_name}{self.url_path}"
            self.urls_fetched.append(url)
            result = self.browser.fetch(url)
            if not result.from_browser_cache:
                emitted += 1
        return emitted
