"""Local-cache bypass techniques for indirect probing (paper §IV-B2).

When the prober reaches the platform only through an application (email
server, web browser), the OS/browser caches in the path mean *each hostname
can be queried only once*.  Both techniques below convert "q distinct names
triggered once each" back into the countable signal "one nameserver arrival
per cache":

* **CNAME chain** (§IV-B2a): the q probe names are distinct aliases of one
  shared target.  Local caches see q different hostnames (never a repeat),
  while inside the platform every alias resolution needs the *target*
  record — which each cache fetches exactly once.  Requires the CDE
  nameserver to answer CNAMEs minimally (no target address attached).
* **Names hierarchy** (§IV-B2b): the q probe names live in a delegated
  subzone.  Each cache must learn the delegation from the parent zone
  exactly once, so the parent nameserver's log counts caches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns.name import DnsName
from ..dns.rrtype import RRType
from .analysis import CacheCountEstimate, estimate_from_occupancy
from .infrastructure import CdeInfrastructure, CnameChain, NamesHierarchy
from .prober import DirectProber, IndirectProber


@dataclass
class BypassEnumerationResult:
    technique: str
    probe_names: list[DnsName]
    triggered: int
    arrivals: int
    estimate: CacheCountEstimate

    @property
    def cache_count(self) -> int:
        return self.estimate.rounded


class CnameChainBypass:
    """Enumerate caches through an indirect prober using a CNAME chain."""

    technique = "cname-chain"

    def __init__(self, cde: CdeInfrastructure):
        self.cde = cde

    def setup(self, q: int) -> CnameChain:
        return self.cde.setup_cname_chain(q)

    def run(self, prober: IndirectProber, q: int,
            count_qtype: RRType | None = RRType.A) -> BypassEnumerationResult:
        """Trigger the q aliases and count target-record arrivals.

        The aliases themselves always miss (they are fresh names), so alias
        arrivals equal the number of triggered probes; the *target*
        arrivals count caches: a cache that resolved any alias holds the
        target record and never asks for it again.

        ``count_qtype=None`` counts per observed qtype and keeps the
        maximum — useful for SMTP probers, whose servers fan one probe name
        out into several query types (TXT, MX, A...), each type forming an
        independent per-cache census.
        """
        chain = self.setup(q)
        since = self.cde.network.clock.now
        triggered = prober.trigger(chain.aliases)
        if count_qtype is None:
            by_qtype: dict[RRType, int] = {}
            for entry in self.cde.server.query_log.entries(
                    qname=chain.target, since=since):
                by_qtype[entry.qtype] = by_qtype.get(entry.qtype, 0) + 1
            arrivals = max(by_qtype.values(), default=0)
        else:
            arrivals = self.cde.count_queries_for(chain.target, since=since,
                                                  qtype=count_qtype)
        estimate = CacheCountEstimate(
            estimate=(estimate_from_occupancy(max(triggered, 1), arrivals)
                      if arrivals else 0.0),
            lower_bound=arrivals,
            queries_sent=triggered,
            arrivals=arrivals,
        )
        return BypassEnumerationResult(
            technique=self.technique, probe_names=chain.aliases,
            triggered=triggered, arrivals=arrivals, estimate=estimate,
        )


class NamesHierarchyBypass:
    """Enumerate caches through an indirect prober using a delegated
    subzone."""

    technique = "names-hierarchy"

    def __init__(self, cde: CdeInfrastructure):
        self.cde = cde

    def setup(self, q: int) -> NamesHierarchy:
        return self.cde.setup_names_hierarchy(q)

    def run(self, prober: IndirectProber, q: int) -> BypassEnumerationResult:
        """Trigger the q subzone leaves; parent-zone arrivals count caches.

        "The number of queries arriving at the nameserver of cache.example
        indicate the number of caches used by a given IP address at a
        measured resolution infrastructure."
        """
        hierarchy = self.setup(q)
        since = self.cde.network.clock.now
        triggered = prober.trigger(hierarchy.names)
        # Queries logged at the *parent* nameserver for names inside the
        # delegated subzone are the per-cache referral fetches.
        arrivals = self.cde.count_queries_under(hierarchy.origin, since=since)
        estimate = CacheCountEstimate(
            estimate=(estimate_from_occupancy(max(triggered, 1), arrivals)
                      if arrivals else 0.0),
            lower_bound=arrivals,
            queries_sent=triggered,
            arrivals=arrivals,
        )
        return BypassEnumerationResult(
            technique=self.technique, probe_names=hierarchy.names,
            triggered=triggered, arrivals=arrivals, estimate=estimate,
        )


def enumerate_indirect_cname(cde: CdeInfrastructure, prober: IndirectProber,
                             q: int,
                             count_qtype: RRType | None = RRType.A
                             ) -> BypassEnumerationResult:
    """Convenience wrapper over :class:`CnameChainBypass`."""
    return CnameChainBypass(cde).run(prober, q, count_qtype)


def enumerate_indirect_hierarchy(cde: CdeInfrastructure,
                                 prober: IndirectProber,
                                 q: int) -> BypassEnumerationResult:
    """Convenience wrapper over :class:`NamesHierarchyBypass`."""
    return NamesHierarchyBypass(cde).run(prober, q)


def enumerate_direct_via_cname(cde: CdeInfrastructure, prober: DirectProber,
                               ingress_ip: str, q: int,
                               count_qtype: RRType = RRType.A
                               ) -> BypassEnumerationResult:
    """The CNAME-chain technique driven by a *direct* prober.

    Useful for validating the bypass against the plain direct method on the
    same platform (the ablation bench does exactly this).
    """

    class _DirectAdapter:
        def trigger(self, names: list[DnsName]) -> int:
            emitted = 0
            for probe_name in names:
                if prober.probe(ingress_ip, probe_name, count_qtype).delivered:
                    emitted += 1
                else:
                    emitted += 1  # the probe was sent even if the answer died
            return emitted

    return CnameChainBypass(cde).run(_DirectAdapter(), q, count_qtype)
