"""Cache-selection strategy inference (the paper's future work, §IV-A).

"We also identified more complex cache selection strategies, e.g., those
that look not only at the volume of the arriving DNS queries but are also
a function of a requested domain in the query or of a source IP in a DNS
request.  A comprehensive study of cache selection algorithms is outside
the scope of this study and we propose it as one of the interesting
followup topics for future work."

This module is that follow-up, for the strategy *classes* the paper names.
All evidence comes from arrival counting at the CDE nameserver:

1. **Same-name census** ω₁: q probes of one fresh name from one source.
   Deterministic per-name/per-source strategies pin a single cache
   (ω₁ = 1); rotating and random strategies expose the pool (ω₁ = n).
2. **Multi-source census** ω₂: the same fresh name probed once from k
   different source addresses.  Source-keyed strategies fan out
   (ω₂ > 1); name-keyed strategies stay pinned (ω₂ = 1).
3. **Determinism trials**: with the pool size n = ω₁ known, probe a fresh
   name exactly n times, repeatedly.  A rotation covers all n caches in
   every trial; uniform random covers them with probability n!/nⁿ only
   (9.4% at n = 4), so a few trials separate the two.

A name-keyed strategy over n caches and a genuine single-cache platform
are *observationally equivalent* to one probe source and one name — both
pin everything to one cache — so the classifier reports
``PINNED_PER_NAME_OR_SINGLE_CACHE`` rather than guessing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from ..dns.rrtype import RRType
from ..net.network import Network, SinkEndpoint
from .analysis import queries_for_confidence
from .infrastructure import CdeInfrastructure
from .prober import DirectProber


class SelectorClass(enum.Enum):
    ROTATING = "rotating"                     # round robin / least-loaded
    UNPREDICTABLE = "unpredictable"           # (sticky-)random
    SOURCE_KEYED = "source-keyed"             # hash over the client address
    PINNED_PER_NAME_OR_SINGLE_CACHE = "per-name-or-single-cache"


@dataclass
class SelectorInference:
    inferred: SelectorClass
    same_name_census: int              # omega_1
    multi_source_census: int           # omega_2
    determinism_trials: list[int] = field(default_factory=list)
    queries_spent: int = 0

    @property
    def is_unpredictable(self) -> bool:
        return self.inferred == SelectorClass.UNPREDICTABLE


def _extra_sources(network: Network, count: int,
                   base: str = "192.0.2.") -> list[str]:
    """Provision additional prober source addresses on the network."""
    sources = []
    for offset in range(count):
        ip = f"{base}{100 + offset}"
        if not network.is_registered(ip):
            network.register(ip, SinkEndpoint())
        sources.append(ip)
    return sources


def infer_selector(cde: CdeInfrastructure, prober: DirectProber,
                   ingress_ip: str,
                   n_hint: int = 8,
                   confidence: float = 0.99,
                   source_count: int = 8,
                   determinism_trials: int = 5,
                   qtype: RRType = RRType.A) -> SelectorInference:
    """Classify the load balancer behind ``ingress_ip``."""
    network = prober.network
    queries_before = prober.queries_sent
    budget = queries_for_confidence(n_hint, confidence)

    # Evidence 1: same-name census from one source.
    probe_name = cde.unique_name("sel-same")
    since = network.clock.now
    for _ in range(budget):
        prober.probe(ingress_ip, probe_name, qtype)
    omega_1 = cde.count_queries_for(probe_name, since=since, qtype=qtype)

    # Evidence 2: one fresh name probed from many source addresses.
    multi_name = cde.unique_name("sel-multi")
    since = network.clock.now
    sources = _extra_sources(network, source_count)
    rounds = max(1, budget // source_count)
    multi_source_queries = 0
    for _ in range(rounds):
        for source_ip in sources:
            source_prober = DirectProber(source_ip, network, rng=prober.rng)
            source_prober.probe(ingress_ip, multi_name, qtype)
            multi_source_queries += 1
    omega_2 = cde.count_queries_for(multi_name, since=since, qtype=qtype)

    trials: list[int] = []
    if omega_1 <= 1:
        inferred = (SelectorClass.SOURCE_KEYED if omega_2 > 1
                    else SelectorClass.PINNED_PER_NAME_OR_SINGLE_CACHE)
    else:
        # Evidence 3: can exactly n probes ever miss a cache?
        n = omega_1
        for _ in range(determinism_trials):
            trial_name = cde.unique_name("sel-det")
            since = network.clock.now
            for _ in range(n):
                prober.probe(ingress_ip, trial_name, qtype)
            trials.append(cde.count_queries_for(trial_name, since=since,
                                                qtype=qtype))
        always_full = all(count == n for count in trials)
        # P(random covers n caches in n probes every time) = (n!/n^n)^T.
        false_positive = (math.factorial(n) / n ** n) ** determinism_trials
        inferred = (SelectorClass.ROTATING
                    if always_full and false_positive < 0.05
                    else SelectorClass.UNPREDICTABLE)

    return SelectorInference(
        inferred=inferred,
        same_name_census=omega_1,
        multi_source_census=omega_2,
        determinism_trials=trials,
        queries_spent=(prober.queries_sent - queries_before
                       + multi_source_queries),
    )
