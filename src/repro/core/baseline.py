"""The IP-level baseline view of a resolution platform.

Prior work (paper §VI: open-resolver scans, egress software fingerprinting)
measures *devices with IP addresses*: it discovers ingress addresses by
scanning and egress addresses from nameserver logs, and treats each address
as a resolver.  The paper's conceptual contribution is that this view
"omits the hidden caches" — the cache count is not derivable from any
IP-level observable, and IP counts can both under- and over-state it.

This module implements that baseline faithfully so the benches can compare
it against the CDE census on identical platforms:

* :func:`ip_level_census` — the classical device count (responsive ingress
  addresses + observed egress addresses);
* :func:`egress_software_fingerprint` — Shue/Kalafut-style per-egress-IP
  behaviour fingerprinting from query patterns (here: EDNS use and the
  queried-name structure), which identifies *egress software*, "not
  representative of a DNS resolution platform" (§VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dns.errors import QueryTimeout
from ..dns.rrtype import RRType
from .infrastructure import CdeInfrastructure
from .prober import DirectProber


@dataclass
class IpLevelCensus:
    """What an address-scanning study sees of one platform."""

    responsive_ingress: set[str] = field(default_factory=set)
    observed_egress: set[str] = field(default_factory=set)

    @property
    def device_count(self) -> int:
        """Distinct addresses — the baseline's 'resolver count'."""
        return len(self.responsive_ingress | self.observed_egress)


def ip_level_census(cde: CdeInfrastructure, prober: DirectProber,
                    ingress_ips: list[str],
                    probes_per_ip: int = 4) -> IpLevelCensus:
    """The classical scan: which addresses respond, which addresses query.

    No repetition analysis, no honey records — exactly the information an
    IPv4-scan study (§VI's open-resolver scans) collects.
    """
    census = IpLevelCensus()
    for ingress_ip in ingress_ips:
        responded = False
        since = prober.network.clock.now
        for _ in range(probes_per_ip):
            try:
                transaction = prober.query(ingress_ip,
                                           cde.unique_name("ipscan"))
            except QueryTimeout:  # cdelint: disable=CDE013
                # The classical IP-level scan is deliberately loss-blind:
                # it models §VI's open-resolver census, which only records
                # whether an address ever responded.  Dropping the timeout
                # here IS the baseline's (flawed) methodology.
                continue
            if transaction.response is not None:
                responded = True
        if responded:
            census.responsive_ingress.add(ingress_ip)
        census.observed_egress |= cde.egress_sources(since=since)
    return census


@dataclass
class EgressFingerprint:
    egress_ip: str
    uses_edns: bool
    queries_seen: int


def egress_software_fingerprint(cde: CdeInfrastructure, prober: DirectProber,
                                ingress_ip: str,
                                probes: int = 16) -> list[EgressFingerprint]:
    """Per-egress-IP behavioural fingerprint from arriving queries.

    Observes, per egress source address, externally visible query
    behaviour.  The technique sees *the egress software*; two caches behind
    one egress address, or one cache spread over many egress addresses, are
    invisible to it — the limitation the CDE removes.
    """
    since = prober.network.clock.now
    names = cde.unique_names(probes, prefix="egfp")
    for probe_name in names:
        prober.probe(ingress_ip, probe_name)
    wanted = set(names)
    per_source: dict[str, list] = {}
    for entry in cde.server.query_log.entries(
            since=since, predicate=lambda e: e.qname in wanted):
        per_source.setdefault(entry.src_ip, []).append(entry)
    fingerprints = []
    for egress_ip, entries in sorted(per_source.items()):
        fingerprints.append(EgressFingerprint(
            egress_ip=egress_ip,
            uses_edns=any(e.qtype == RRType.OPT for e in entries),
            queries_seen=len(entries),
        ))
    return fingerprints
