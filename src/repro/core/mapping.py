"""IP ↔ cache mapping (paper §IV-B1b).

Two directions:

* **Ingress → cache clusters.**  "We apply the caches enumeration technique
  using any ingress IP address I¹, and plant a 'honey' record in all the
  caches mapped to that IP address.  Then, for each ingress IP Iⁱ we send
  queries for the seeded 'honey' record.  If queries are responded without
  accessing our server, we add Iⁱ to the same cluster of caches as I¹."
* **Caches → egress IPs.**  "By repeating the experiment with a set of
  queries to an ingress IP address, and checking which egress IP addresses
  they arrive from at our nameservers, all the egress addresses can be
  covered."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dns.name import DnsName
from ..dns.rrtype import RRType
from .analysis import queries_for_confidence
from .infrastructure import CdeInfrastructure
from .prober import DirectProber


@dataclass
class CacheCluster:
    """A set of ingress IPs sharing one cache pool."""

    cluster_id: int
    honey_name: DnsName          # the most recently planted honey record
    member_ips: list[str] = field(default_factory=list)

    @property
    def representative(self) -> str:
        return self.member_ips[0]


@dataclass
class IngressMappingResult:
    clusters: list[CacheCluster]
    queries_sent: int

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, ingress_ip: str) -> Optional[CacheCluster]:
        for cluster in self.clusters:
            if ingress_ip in cluster.member_ips:
                return cluster
        return None


@dataclass
class EgressDiscoveryResult:
    egress_ips: set[str]
    queries_sent: int
    arrivals: int

    @property
    def n_egress(self) -> int:
        return len(self.egress_ips)


def _plant_honey(cde: CdeInfrastructure, prober: DirectProber,
                 ingress_ip: str, honey_name: DnsName, n_hint: int,
                 confidence: float, qtype: RRType) -> int:
    """Push the honey record into (w.h.p.) every cache behind the IP."""
    budget = queries_for_confidence(max(n_hint, 1), confidence)
    for _ in range(budget):
        prober.probe(ingress_ip, honey_name, qtype)
    return budget


def map_ingress_to_clusters(cde: CdeInfrastructure, prober: DirectProber,
                            ingress_ips: list[str],
                            n_hint: int = 4,
                            membership_probes: int = 3,
                            confidence: float = 0.99,
                            qtype: RRType = RRType.A) -> IngressMappingResult:
    """Cluster ingress IPs by the cache pool they front.

    ``n_hint`` is a prior on caches per pool (sets the honey-seeding
    budget); ``membership_probes`` queries test each candidate membership —
    an IP joins a cluster only when *none* of its probes for the cluster's
    honey record reach our nameserver.

    Each membership test plants a **fresh** honey record through the
    cluster's representative IP immediately before probing the candidate.
    Re-using one honey record would poison later tests: a *failed*
    membership probe deposits the record into the candidate's own caches,
    and any subsequent candidate sharing those caches would then appear to
    match the cluster.  (The paper describes the single-record variant; the
    refresh is required for back-to-back clustering runs.)
    """
    if not ingress_ips:
        raise ValueError("need at least one ingress IP")
    clusters: list[CacheCluster] = []
    queries_sent = 0

    for ingress_ip in ingress_ips:
        joined = None
        for cluster in clusters:
            honey_name = cde.unique_name("honey")
            queries_sent += _plant_honey(cde, prober, cluster.representative,
                                         honey_name, n_hint, confidence,
                                         qtype)
            cluster.honey_name = honey_name
            since = prober.network.clock.now
            for _ in range(membership_probes):
                prober.probe(ingress_ip, honey_name, qtype)
            queries_sent += membership_probes
            arrivals = cde.count_queries_for(honey_name, since=since,
                                             qtype=qtype)
            if arrivals == 0:
                joined = cluster
                break
        if joined is not None:
            joined.member_ips.append(ingress_ip)
            continue
        honey_name = cde.unique_name("honey")
        queries_sent += _plant_honey(cde, prober, ingress_ip, honey_name,
                                     n_hint, confidence, qtype)
        clusters.append(CacheCluster(
            cluster_id=len(clusters) + 1,
            honey_name=honey_name,
            member_ips=[ingress_ip],
        ))
    return IngressMappingResult(clusters=clusters, queries_sent=queries_sent)


def discover_egress_ips(cde: CdeInfrastructure, prober: DirectProber,
                        ingress_ip: str, probes: int = 32,
                        qtype: RRType = RRType.A) -> EgressDiscoveryResult:
    """Census the egress addresses behind an ingress IP.

    Each probe uses a fresh name, guaranteeing a cache miss and hence an
    upstream query whose source address lands in our log.
    """
    if probes < 1:
        raise ValueError("need at least one probe")
    since = prober.network.clock.now
    names = cde.unique_names(probes, prefix="egress")
    for probe_name in names:
        prober.probe(ingress_ip, probe_name, qtype)
    entries = cde.server.query_log.entries_for_any(names, since=since)
    sources = {entry.src_ip for entry in entries}
    return EgressDiscoveryResult(
        egress_ips=sources, queries_sent=probes, arrivals=len(entries),
    )


@dataclass
class EgressClusterResult:
    """Egress IPs grouped by the cache that uses them."""

    clusters: list[frozenset[str]]
    probes_sent: int

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, egress_ip: str) -> Optional[frozenset[str]]:
        for cluster in self.clusters:
            if egress_ip in cluster:
                return cluster
        return None


def map_egress_to_caches(cde: CdeInfrastructure, prober: DirectProber,
                         ingress_ip: str, probes: int = 24,
                         links: int = 4) -> EgressClusterResult:
    """Group egress IPs by co-occurrence within single resolutions.

    One resolution of a fresh multi-link CNAME chain is performed by
    exactly one cache, which sends one upstream query per link — so all
    source addresses observed for one chain belong to the *same* cache.
    Union-finding co-occurring sources over many probes partitions the
    egress pool by cache (paper §IV-B1b: "The mapping from the set of
    caches to the egress IP addresses...").

    Platforms whose caches share the whole egress pool collapse into a
    single cluster; cache-affine deployments split into one cluster per
    cache — itself an independent cache census.
    """
    if probes < 1:
        raise ValueError("need at least one probe")
    if links < 2:
        raise ValueError("need at least two links for co-occurrence")
    parent: dict[str, str] = {}

    def find(ip: str) -> str:
        parent.setdefault(ip, ip)
        while parent[ip] != ip:
            parent[ip] = parent[parent[ip]]
            ip = parent[ip]
        return ip

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    log = cde.server.query_log
    for _ in range(probes):
        chain = cde.setup_fresh_chain(links)
        since = prober.network.clock.now
        prober.probe(ingress_ip, chain[0])
        sources = sorted({
            entry.src_ip
            for entry in log.entries_for_any(chain, since=since)
        })
        for source in sources:
            union(sources[0], source)

    roots: dict[str, set[str]] = {}
    for ip in parent:
        roots.setdefault(find(ip), set()).add(ip)
    clusters = [frozenset(group) for group in roots.values()]
    clusters.sort(key=lambda group: sorted(group)[0])
    return EgressClusterResult(clusters=clusters, probes_sent=probes)


def egress_census_complete(result: EgressDiscoveryResult,
                           margin: int = 8) -> bool:
    """Heuristic: the census likely covered all egress IPs when the number
    of distinct sources plateaued well below the probe count."""
    return result.n_egress + margin <= result.queries_sent
